//! Umbrella crate re-exporting the full Tydi-lang toolchain.
pub use tydi_analyze as analyze;
pub use tydi_fletcher as fletcher;
pub use tydi_ir as ir;
pub use tydi_lang as lang;
pub use tydi_rtl as rtl;
pub use tydi_sim as sim;
pub use tydi_spec as spec;
pub use tydi_stdlib as stdlib;
pub use tydi_tpch as tpch;
pub use tydi_vhdl as vhdl;
