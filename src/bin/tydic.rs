//! `tydic` — the Tydi-lang command-line compiler.
//!
//! ```text
//! tydic check   <file.td>...                 parse + elaborate + DRC
//! tydic compile <file.td>... [options]       emit Tydi-IR or VHDL
//!
//! options:
//!   --emit ir|vhdl      output format (default: ir)
//!   --no-sugar          disable duplicator/voider insertion
//!   --no-std            do not implicitly include the standard library
//!   -o <dir>            write output files instead of stdout
//! ```

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use tydi_lang::{compile, CompileOptions};
use tydi_stdlib::{full_registry, stdlib_source, STDLIB_FILE_NAME};
use tydi_vhdl::{generate_project, VhdlOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("usage: tydic <check|compile> <file.td>... [--emit ir|vhdl] [--no-sugar] [--no-std] [-o dir]");
        return ExitCode::from(2);
    };

    let mut emit = "ir".to_string();
    let mut out_dir: Option<PathBuf> = None;
    let mut include_std = true;
    let mut sugaring = true;
    let mut files: Vec<String> = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--emit" => {
                emit = iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("--emit needs a value (ir|vhdl)");
                    std::process::exit(2);
                })
            }
            "-o" => {
                out_dir = Some(PathBuf::from(iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("-o needs a directory");
                    std::process::exit(2);
                })))
            }
            "--no-std" => include_std = false,
            "--no-sugar" => sugaring = false,
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("no input files");
        return ExitCode::from(2);
    }

    // Load sources (the standard library is implicit unless --no-std).
    let mut sources: Vec<(String, String)> = Vec::new();
    if include_std {
        sources.push((STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()));
    }
    for file in &files {
        match fs::read_to_string(file) {
            Ok(text) => sources.push((file.clone(), text)),
            Err(e) => {
                eprintln!("cannot read `{file}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let refs: Vec<(&str, &str)> = sources.iter().map(|(n, t)| (n.as_str(), t.as_str())).collect();
    let options = CompileOptions {
        project_name: "tydic_out".to_string(),
        enable_sugaring: sugaring,
        run_drc: true,
    };

    let output = match compile(&refs, &options) {
        Ok(output) => output,
        Err(failure) => {
            eprint!("{}", failure.render());
            return ExitCode::FAILURE;
        }
    };
    for d in &output.diagnostics {
        eprint!("{}", d.render(&output.files));
    }
    let stats = output.project.stats();
    eprintln!(
        "ok: {} streamlet(s), {} implementation(s), {} connection(s) in {:?}",
        stats.streamlets,
        stats.implementations,
        stats.connections,
        output.timings.total()
    );

    if command == "check" {
        return ExitCode::SUCCESS;
    }

    match emit.as_str() {
        "ir" => {
            let text = tydi_ir::text::emit_project(&output.project);
            match out_dir {
                Some(dir) => {
                    if let Err(e) = fs::create_dir_all(&dir)
                        .and_then(|()| fs::write(dir.join("project.tir"), &text))
                    {
                        eprintln!("write failed: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {}", dir.join("project.tir").display());
                }
                None => {
                    // Ignore broken pipes (e.g. piping into `head`).
                    let _ = write!(std::io::stdout(), "{text}");
                }
            }
        }
        "vhdl" => {
            let registry = full_registry();
            tydi_fletcher::register_fletcher_rtl(&registry);
            let generated =
                match generate_project(&output.project, &registry, &VhdlOptions::default()) {
                    Ok(files) => files,
                    Err(e) => {
                        eprintln!("VHDL generation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            match out_dir {
                Some(dir) => {
                    if let Err(e) = fs::create_dir_all(&dir) {
                        eprintln!("cannot create `{}`: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                    for file in &generated {
                        if let Err(e) = fs::write(dir.join(&file.name), &file.contents) {
                            eprintln!("write failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    eprintln!("wrote {} file(s) to {}", generated.len(), dir.display());
                }
                None => {
                    let mut stdout = std::io::stdout();
                    for file in &generated {
                        let _ = write!(stdout, "{}", file.contents);
                    }
                }
            }
        }
        other => {
            eprintln!("unknown --emit format `{other}` (expected ir|vhdl)");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
