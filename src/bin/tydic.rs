//! `tydic` — the Tydi-lang command-line compiler.
//!
//! ```text
//! tydic check   <file.td>... [--watch]       parse + elaborate + DRC
//! tydic compile <file.td>... [options]       emit Tydi-IR, VHDL or Verilog
//! tydic build   <file.td>... [options]       compile with --emit vhdl default
//! tydic sim     <file.td>... --top <impl>    batch-simulate scenarios
//! tydic analyze <file.td>... [--top <impl>]  static throughput/hazard analysis
//! tydic serve   [--lsp]                      warm compiler daemon / LSP server
//! tydic --help | --version
//!
//! options:
//!   --emit ir|vhdl|verilog  output format (default: ir; build: vhdl)
//!   --no-sugar          disable duplicator/voider insertion
//!   --no-std            do not implicitly include the standard library
//!   --timings           print per-stage self times, the wall total,
//!                       and per-stage cache reuse counts
//!   --timings-json <f>  write the full metrics snapshot as JSON
//!   --trace <file>      write a Chrome trace-event file of the run
//!   --trace-fine        add fine-grained spans to --trace
//!   --no-cache          disable the on-disk artifact cache
//!   --cache-dir <dir>   artifact cache location (default: .tydic-cache)
//!   -o, --out-dir <dir> write output files instead of stdout
//!   --daemon            route check/compile/build/analyze through the
//!                       warm `tydic serve` daemon (spawned on demand;
//!                       falls back in-process if unreachable)
//!
//! check options:
//!   --watch             stay resident: poll the input files' mtimes
//!                       and recompile the dirty cone on change
//!   --poll-ms <n>       watch poll interval (default: 200)
//!   --watch-runs <n>    exit after n compiles (testing hook)
//!
//! sim options:
//!   --top <impl>        top-level implementation to simulate (required)
//!   --scenarios <n>     number of stimulus scenarios (default: 4)
//!   --packets <n>       packets per boundary input (default: 64)
//!   --max-cycles <n>    cycle budget per scenario (default: 100000)
//!   --idle <n>          quiescence threshold in idle cycles
//!   --polling           use the poll-everything cycle loop
//!   --inject <spec>     inject faults (stall/jitter/freeze/drop clauses)
//!   --inject-sweep <seeds>  rerun the fault plan per seed (comma list)
//!
//! analyze options:
//!   --top <impl>        implementation to analyze (default: the
//!                       uninstantiated top-level candidate)
//!   --format text|json  report format (default: text)
//!   --deny <severity>   exit nonzero if a hazard at or above
//!                       info|warning|error is found
//!   --clock-mhz <f>     scale throughput bounds to Hz
//!
//! serve options:
//!   --lsp               speak the Language Server Protocol on stdio
//!                       instead of serving the job socket
//!   --socket <path>     unix socket path (default: <cache-dir>/serve.sock)
//!   --max-requests <n>  exit after n compile jobs (testing hook)
//!   --job-timeout <ms>  per-job wall-clock limit (structured `timeout`)
//!   --max-jobs <n>      admission gate: answer `busy` above n jobs
//!   --idle-timeout <ms> exit (persisting the cache) after idling this long
//!
//! `tydic serve status` prints the running daemon's health.
//! ```

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use tydi_lang::{compile_with_cache, ArtifactCache, CompileOptions, CompileOutput, Stage};
use tydi_stdlib::{full_registry, stdlib_source, STDLIB_FILE_NAME};
use tydi_vhdl::{generate_project_for_with, Backend, VhdlOptions};

/// The output format of `tydic compile` (`--emit`). The accepted
/// spellings, the usage string, and the dispatch all live here so
/// they cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EmitFormat {
    /// Tydi-IR text (one `project.tir` file).
    Ir,
    /// VHDL via the netlist backend.
    Vhdl,
    /// SystemVerilog via the netlist backend.
    Verilog,
}

impl EmitFormat {
    /// The list shown in usage and error messages.
    const ACCEPTED: &'static str = "ir|vhdl|verilog";

    fn parse(text: &str) -> Option<EmitFormat> {
        match text {
            "ir" => Some(EmitFormat::Ir),
            "vhdl" => Some(EmitFormat::Vhdl),
            "verilog" | "sv" | "systemverilog" => Some(EmitFormat::Verilog),
            _ => None,
        }
    }

    /// The RTL backend, for the two netlist-based formats.
    fn backend(&self) -> Option<Backend> {
        match self {
            EmitFormat::Ir => None,
            EmitFormat::Vhdl => Some(Backend::Vhdl),
            EmitFormat::Verilog => Some(Backend::SystemVerilog),
        }
    }
}

const USAGE: &str = "\
usage: tydic <check|compile|build|sim|analyze|serve> <file.td>... [options]

commands:
  check      parse + elaborate + design-rule check only
  compile    check, then emit Tydi-IR, VHDL or SystemVerilog
  build      compile, defaulting to --emit vhdl
  sim        check, then batch-simulate stimulus scenarios
  analyze    check, then statically bound per-stream throughput and
             latency and flag structural hazards (no simulation)
  serve      stay resident as a warm compiler daemon on a unix socket
             under the cache directory (or, with --lsp, speak the
             Language Server Protocol on stdio)

options:
  --emit ir|vhdl|verilog
                    output format (default: ir; `build` defaults vhdl)
  --no-sugar        disable duplicator/voider insertion
  --no-std          do not implicitly include the standard library
  --timings         print per-stage self times, the wall-clock total,
                    and per-stage cache reuse counts
  --timings-json <file>
                    write the run's full metrics snapshot (timings,
                    cache, type-store, parallelism, sim, analyze) as
                    one flat JSON object
  --trace <file>    record a Chrome trace-event file (load it in
                    chrome://tracing or https://ui.perfetto.dev)
  --trace-fine      include fine-grained spans (per-expansion,
                    per-component firing) in the trace
  --no-cache        disable the on-disk artifact cache
  --cache-dir <dir> artifact cache location (default: .tydic-cache);
                    wipe it by deleting the directory
  -o, --out-dir <dir>
                    write output files into <dir> instead of stdout
                    (stdout prefixes each file with a `file:` banner)
  --daemon          route the job through the warm `tydic serve`
                    daemon for this cache directory, spawning it on
                    demand; falls back to an in-process compile when
                    the daemon cannot be reached
  -h, --help        print this help
  -V, --version     print the version

check options:
  --watch           stay resident: poll the input files' mtimes and
                    recompile only the dirty cone on change
  --poll-ms <n>     watch poll interval in milliseconds (default: 200)
  --watch-runs <n>  exit after n compiles (testing hook)

sim options:
  --top <impl>      top-level implementation to simulate (required)
  --scenarios <n>   number of stimulus scenarios (default: 4)
  --packets <n>     packets per boundary input (default: 64)
  --max-cycles <n>  cycle budget per scenario (default: 100000)
  --idle <n>        quiescence threshold in idle cycles (default: 64)
  --polling         use the poll-everything cycle loop instead of the
                    event-driven scheduler (for comparison)
  --inject <spec>   inject faults; <spec> is `;`-separated clauses:
                    stall(ch,from,n|*), jitter(ch,seed,max),
                    freeze(comp,at), drop(ch,n)
  --inject-sweep <seeds>
                    rerun every scenario once per comma-separated
                    seed, reseeding the fault plan's jitter each time

analyze options:
  --top <impl>      implementation to analyze (default: the design's
                    uninstantiated top-level candidate)
  --format text|json
                    report format (default: text)
  --deny <severity> exit nonzero when a hazard at or above the given
                    severity (info|warning|error) is present
  --clock-mhz <f>   clock frequency; also reports bounds in Hz

serve options:
  --lsp             speak the Language Server Protocol on stdio (for
                    editors) instead of serving the job socket
  --socket <path>   unix socket path (default: <cache-dir>/serve.sock)
  --max-requests <n>
                    exit after n compile jobs (testing hook)
  --job-timeout <ms>
                    per-job wall-clock limit; a job over it answers a
                    structured `timeout` and the daemon keeps serving
  --max-jobs <n>    admission gate: with n compile jobs in flight new
                    ones answer `busy` (clients retry with backoff)
  --idle-timeout <ms>
                    exit after this long without a request, persisting
                    the warm cache on the way out

  `tydic serve status` prints the running daemon's health (uptime,
  jobs served/active/timed-out/panicked, cache entries, idle
  deadline) without spawning one.";

/// A usage or I/O error; rendered to stderr with the given exit code.
struct CliError {
    message: String,
    code: u8,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn failure(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }

    /// A nonzero exit whose output has already been written (daemon
    /// responses carry the job's stdout/stderr verbatim).
    fn already_reported(code: u8) -> Self {
        CliError {
            message: String::new(),
            code,
        }
    }
}

/// Parsed command line.
struct Options {
    command: String,
    emit: EmitFormat,
    out_dir: Option<PathBuf>,
    include_std: bool,
    sugaring: bool,
    timings: bool,
    files: Vec<String>,
    /// `sim`: top-level implementation name.
    top: Option<String>,
    /// `sim`: number of stimulus scenarios.
    scenarios: usize,
    /// `sim`: packets per boundary input.
    packets: u64,
    /// `sim`: per-scenario cycle budget.
    max_cycles: u64,
    /// `sim`: quiescence threshold override.
    idle_threshold: Option<u64>,
    /// `sim`: use the polling cycle loop.
    polling: bool,
    /// `sim`: fault-injection plan (parsed `--inject` spec).
    inject: Option<tydi_sim::FaultPlan>,
    /// `sim`: rerun each scenario once per sweep seed.
    inject_sweep: Option<Vec<u64>>,
    /// Disable the on-disk artifact cache.
    no_cache: bool,
    /// Artifact cache directory override.
    cache_dir: Option<PathBuf>,
    /// `check`: stay resident and recompile on file changes.
    watch: bool,
    /// `check --watch`: poll interval in milliseconds.
    poll_ms: u64,
    /// `check --watch`: exit after this many compiles (testing hook).
    watch_runs: Option<usize>,
    /// `analyze`: emit the machine-readable JSON report.
    json: bool,
    /// `analyze`: fail when a hazard at/above this severity exists.
    deny: Option<tydi_analyze::Severity>,
    /// `analyze`: clock frequency in MHz for Hz-scaled bounds.
    clock_mhz: Option<f64>,
    /// Chrome trace-event output file.
    trace: Option<PathBuf>,
    /// Include fine-grained spans in the trace.
    trace_fine: bool,
    /// Metrics-snapshot JSON output file.
    timings_json: Option<PathBuf>,
    /// Route check/compile/build/analyze through the warm daemon.
    daemon: bool,
    /// `serve`: speak LSP on stdio instead of the job socket.
    lsp: bool,
    /// `serve`/`--daemon`: socket path override.
    socket: Option<PathBuf>,
    /// `serve`: exit after this many compile jobs (testing hook).
    max_requests: Option<u64>,
    /// `serve`: per-job wall-clock limit in milliseconds.
    job_timeout_ms: Option<u64>,
    /// `serve`: admission-gate capacity.
    max_jobs: Option<u64>,
    /// `serve`: idle auto-shutdown threshold in milliseconds.
    idle_timeout_ms: Option<u64>,
}

fn parse_count<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, CliError> {
    value
        .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))?
        .parse::<T>()
        .map_err(|_| CliError::usage(format!("{flag} needs a number")))
}

fn parse_args(args: &[String]) -> Result<Option<Options>, CliError> {
    // `--help`/`--version` win regardless of position. Ignore broken
    // pipes (e.g. `tydic --help | head`).
    if args.iter().any(|a| a == "--help" || a == "-h") {
        let _ = writeln!(std::io::stdout(), "{USAGE}");
        return Ok(None);
    }
    if args.iter().any(|a| a == "--version" || a == "-V") {
        let _ = writeln!(std::io::stdout(), "tydic {}", env!("CARGO_PKG_VERSION"));
        return Ok(None);
    }
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::usage(USAGE));
    };
    let known = ["check", "compile", "build", "sim", "analyze", "serve"];
    if !known.contains(&command.as_str()) {
        return Err(CliError::usage(format!(
            "unknown command `{command}` (expected `check`, `compile`, `build`, `sim`, \
             `analyze` or `serve`)\n{USAGE}"
        )));
    }

    let mut options = Options {
        command: command.clone(),
        // `build` is `compile` for users who want RTL out of the box.
        emit: if command == "build" {
            EmitFormat::Vhdl
        } else {
            EmitFormat::Ir
        },
        out_dir: None,
        include_std: true,
        sugaring: true,
        timings: false,
        files: Vec::new(),
        top: None,
        scenarios: 4,
        packets: 64,
        max_cycles: 100_000,
        idle_threshold: None,
        polling: false,
        inject: None,
        inject_sweep: None,
        no_cache: false,
        cache_dir: None,
        watch: false,
        poll_ms: 200,
        watch_runs: None,
        json: false,
        deny: None,
        clock_mhz: None,
        trace: None,
        trace_fine: false,
        timings_json: None,
        daemon: false,
        lsp: false,
        socket: None,
        max_requests: None,
        job_timeout_ms: None,
        max_jobs: None,
        idle_timeout_ms: None,
    };
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--emit" => {
                let value = iter.next().ok_or_else(|| {
                    CliError::usage(format!("--emit needs a value ({})", EmitFormat::ACCEPTED))
                })?;
                options.emit = EmitFormat::parse(value).ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown --emit format `{value}` (expected {})",
                        EmitFormat::ACCEPTED
                    ))
                })?;
            }
            flag @ ("-o" | "--out-dir") => {
                let dir = iter
                    .next()
                    .cloned()
                    .ok_or_else(|| CliError::usage(format!("{flag} needs a directory")))?;
                options.out_dir = Some(PathBuf::from(dir));
            }
            "--no-std" => options.include_std = false,
            "--no-sugar" => options.sugaring = false,
            "--timings" => options.timings = true,
            "--timings-json" => {
                let file = iter
                    .next()
                    .cloned()
                    .ok_or_else(|| CliError::usage("--timings-json needs a file"))?;
                options.timings_json = Some(PathBuf::from(file));
            }
            "--trace" => {
                let file = iter
                    .next()
                    .cloned()
                    .ok_or_else(|| CliError::usage("--trace needs a file"))?;
                options.trace = Some(PathBuf::from(file));
            }
            "--trace-fine" => options.trace_fine = true,
            "--no-cache" => options.no_cache = true,
            "--cache-dir" => {
                let dir = iter
                    .next()
                    .cloned()
                    .ok_or_else(|| CliError::usage("--cache-dir needs a directory"))?;
                options.cache_dir = Some(PathBuf::from(dir));
            }
            "--watch" => options.watch = true,
            "--poll-ms" => options.poll_ms = parse_count("--poll-ms", iter.next().cloned())?,
            "--watch-runs" => {
                options.watch_runs = Some(parse_count("--watch-runs", iter.next().cloned())?)
            }
            "--top" => {
                options.top = Some(
                    iter.next()
                        .cloned()
                        .ok_or_else(|| CliError::usage("--top needs an implementation name"))?,
                );
            }
            "--scenarios" => options.scenarios = parse_count("--scenarios", iter.next().cloned())?,
            "--packets" => options.packets = parse_count("--packets", iter.next().cloned())?,
            "--max-cycles" => {
                options.max_cycles = parse_count("--max-cycles", iter.next().cloned())?
            }
            "--idle" => options.idle_threshold = Some(parse_count("--idle", iter.next().cloned())?),
            "--polling" => options.polling = true,
            "--inject" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--inject needs a fault spec"))?;
                options.inject = Some(
                    tydi_sim::FaultPlan::parse(spec)
                        .map_err(|e| CliError::usage(format!("--inject: {e}")))?,
                );
            }
            "--inject-sweep" => {
                let seeds = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--inject-sweep needs comma-separated seeds"))?;
                let parsed: Result<Vec<u64>, _> =
                    seeds.split(',').map(|s| s.trim().parse::<u64>()).collect();
                options.inject_sweep = Some(parsed.map_err(|_| {
                    CliError::usage(format!(
                        "--inject-sweep needs comma-separated seeds, got `{seeds}`"
                    ))
                })?);
            }
            "--format" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--format needs a value (text|json)"))?;
                options.json = match value.as_str() {
                    "json" => true,
                    "text" => false,
                    other => {
                        return Err(CliError::usage(format!(
                            "unknown --format `{other}` (expected text|json)"
                        )))
                    }
                };
            }
            "--deny" => {
                let value = iter.next().ok_or_else(|| {
                    CliError::usage("--deny needs a severity (info|warning|error)")
                })?;
                options.deny = Some(tydi_analyze::Severity::parse(value).ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown --deny severity `{value}` (expected info|warning|error)"
                    ))
                })?);
            }
            "--clock-mhz" => {
                options.clock_mhz = Some(parse_count("--clock-mhz", iter.next().cloned())?)
            }
            "--daemon" => options.daemon = true,
            "--lsp" => options.lsp = true,
            "--socket" => {
                let path = iter
                    .next()
                    .cloned()
                    .ok_or_else(|| CliError::usage("--socket needs a path"))?;
                options.socket = Some(PathBuf::from(path));
            }
            "--max-requests" => {
                options.max_requests = Some(parse_count("--max-requests", iter.next().cloned())?)
            }
            "--job-timeout" => {
                options.job_timeout_ms = Some(parse_count("--job-timeout", iter.next().cloned())?)
            }
            "--max-jobs" => {
                options.max_jobs = Some(parse_count("--max-jobs", iter.next().cloned())?)
            }
            "--idle-timeout" => {
                options.idle_timeout_ms = Some(parse_count("--idle-timeout", iter.next().cloned())?)
            }
            other if other.starts_with('-') => {
                return Err(CliError::usage(format!("unknown option `{other}`")));
            }
            file => options.files.push(file.to_string()),
        }
    }
    if options.files.is_empty() && options.command != "serve" {
        return Err(CliError::usage("no input files"));
    }
    if options.command == "sim" && options.top.is_none() {
        return Err(CliError::usage(
            "sim needs --top <impl> (the implementation to simulate)",
        ));
    }
    if options.inject_sweep.is_some() && options.inject.is_none() {
        return Err(CliError::usage("--inject-sweep needs --inject <spec>"));
    }
    if options.inject.is_some() && options.command != "sim" {
        return Err(CliError::usage("--inject is only supported with `sim`"));
    }
    if options.watch && options.command != "check" {
        return Err(CliError::usage("--watch is only supported with `check`"));
    }
    if options.trace_fine && options.trace.is_none() {
        return Err(CliError::usage("--trace-fine needs --trace <file>"));
    }
    if options.lsp && options.command != "serve" {
        return Err(CliError::usage("--lsp is only supported with `serve`"));
    }
    if options.daemon && matches!(options.command.as_str(), "sim" | "serve") {
        return Err(CliError::usage(format!(
            "--daemon is not supported with `{}`",
            options.command
        )));
    }
    Ok(Some(options))
}

/// Reads the input files (the standard library is implicit unless
/// `--no-std`).
fn load_sources(options: &Options) -> Result<Vec<(String, String)>, CliError> {
    let mut sources: Vec<(String, String)> = Vec::new();
    if options.include_std {
        sources.push((STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()));
    }
    for file in &options.files {
        let text = fs::read_to_string(file)
            .map_err(|e| CliError::usage(format!("cannot read `{file}`: {e}")))?;
        sources.push((file.clone(), text));
    }
    Ok(sources)
}

fn cache_dir(options: &Options) -> PathBuf {
    options
        .cache_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from(tydi_lang::CACHE_DIR_NAME))
}

/// Compiles through the artifact cache, printing diagnostics and the
/// summary/timings lines.
fn compile_once(options: &Options, cache: &mut ArtifactCache) -> Result<CompileOutput, CliError> {
    let sources = load_sources(options)?;
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    let compile_options = CompileOptions {
        project_name: "tydic_out".to_string(),
        enable_sugaring: options.sugaring,
        run_drc: true,
    };
    let output = compile_with_cache(&refs, &compile_options, cache)
        .map_err(|failure| CliError::failure(failure.render()))?;
    tydi_lang::publish_compile_metrics(&output);
    for d in &output.diagnostics {
        eprint!("{}", d.render(&output.files));
    }
    let stats = output.project.stats();
    eprintln!(
        "ok: {} streamlet(s), {} implementation(s), {} connection(s) in {:?}",
        stats.streamlets, stats.implementations, stats.connections, output.timings.wall
    );
    // `analyze` records its own stage first, then prints the timings
    // itself so the analyze column is populated.
    if options.timings && options.command != "analyze" {
        print_timings(&output);
    }
    Ok(output)
}

/// The `--timings` report: per-stage *self* times, then the self-time
/// sum and the wall-clock window as separate totals (summing stage
/// times double-counts when stage work overlaps on the thread pool),
/// then per-stage cache reuse counts.
fn print_timings(output: &CompileOutput) {
    let t = output.timings;
    eprintln!(
        "stages: parse {:?}, elaborate {:?}, sugar {:?}, drc {:?}, analyze {:?} (self times)",
        t.parse, t.elaborate, t.sugar, t.drc, t.analyze
    );
    eprintln!("totals: self {:?}, wall {:?}", t.total(), t.wall);
    let mut reused = [0usize; 4];
    let mut recomputed = [0usize; 4];
    for record in &output.stage_records {
        let slot = match record.stage {
            Stage::Parse => 0,
            Stage::Elaborate => 1,
            Stage::Sugar => 2,
            Stage::Drc => 3,
            // Analysis runs after the compile and is never served from
            // the artifact cache; it has no reuse column.
            Stage::Analyze => continue,
        };
        reused[slot] += record.reused;
        recomputed[slot] += record.recomputed;
    }
    eprintln!(
        "cache: parse {} reused / {} recomputed, elaborate {}/{}, sugar {}/{}, drc {}/{}",
        reused[0],
        recomputed[0],
        reused[1],
        recomputed[1],
        reused[2],
        recomputed[2],
        reused[3],
        recomputed[3],
    );
    // Type-store and parallel-elaboration statistics, read back from
    // the metrics registry ([`tydi_lang::publish_compile_metrics`]
    // runs right after every compile) so the printed report and
    // `--timings-json` can never disagree.
    let snap = tydi_obs::metrics::snapshot();
    eprintln!(
        "types: {} distinct node(s) interned, {} dedup hit(s) ({:.0}% hit rate); \
         expansions: {} reused / {} computed",
        snap.counter("types.distinct").unwrap_or(0),
        snap.counter("types.intern_hits").unwrap_or(0),
        snap.gauge("types.intern_hit_rate_pct").unwrap_or(0.0),
        snap.counter("types.expansions_reused").unwrap_or(0),
        snap.counter("types.expansions_computed").unwrap_or(0),
    );
    let levels = snap.text("par.level_packages").unwrap_or("");
    eprintln!(
        "par: {} thread(s), packages per level [{}], {} shard contention event(s)",
        snap.counter("par.threads").unwrap_or(0),
        if levels.is_empty() { "-" } else { levels },
        snap.counter("types.shard_contention").unwrap_or(0),
    );
}

/// Loads the persistent cache (an empty, never-saved one under
/// `--no-cache`).
fn load_cache(options: &Options) -> ArtifactCache {
    if options.no_cache {
        ArtifactCache::new()
    } else {
        ArtifactCache::load(&cache_dir(options))
    }
}

/// Persists the cache when enabled and changed; persistence failures
/// are warnings (compilation already succeeded or failed on its own
/// terms). A successful save clears the cache's dirty flag, so a
/// watch iteration that was served entirely from the cache skips the
/// manifest rewrite and garbage-collection sweep.
fn persist_cache(options: &Options, cache: &mut ArtifactCache) {
    if options.no_cache || !cache.is_dirty() {
        return;
    }
    let dir = cache_dir(options);
    if let Err(e) = cache.save(&dir) {
        eprintln!("warning: cannot persist cache to `{}`: {e}", dir.display());
    }
}

/// `tydic check --watch`: compile, then poll the input files and
/// recompile through the persistent artifact cache whenever something
/// changes. Compile failures are reported and watching continues.
///
/// With `--daemon` the watcher is a thin client: every recompile is a
/// job on the warm daemon (shared with every other `--daemon` client
/// of this cache), and only the change detection runs here. A daemon
/// that becomes unreachable mid-watch degrades to in-process compiles
/// for that iteration.
fn run_watch(options: &Options) -> Result<(), CliError> {
    let mut cache = load_cache(options);
    eprintln!(
        "watching {} file(s); recompiling on change (ctrl-c to stop)",
        options.files.len()
    );
    let mut stamps = WatchStamps::capture(&options.files);
    let mut runs = 0usize;
    loop {
        runs += 1;
        let mut compiled_remotely = false;
        if options.daemon {
            match run_daemon_job(options) {
                Ok(_code) => compiled_remotely = true, // output already replayed
                Err(e) => {
                    eprintln!("warning: daemon unavailable ({e}); compiling in-process")
                }
            }
        }
        if !compiled_remotely {
            match compile_once(options, &mut cache) {
                Ok(_) => {}
                Err(e) => eprintln!("{}", e.message.trim_end_matches('\n')),
            }
            persist_cache(options, &mut cache);
        }
        if options.watch_runs.is_some_and(|limit| runs >= limit) {
            return Ok(());
        }
        loop {
            std::thread::sleep(std::time::Duration::from_millis(options.poll_ms.max(10)));
            if stamps.refresh(&options.files) {
                eprintln!("change detected, recompiling...");
                break;
            }
        }
    }
}

/// Change detection for `--watch`: size + mtime per watched file as
/// the cheap first check, with a content-fingerprint fallback for the
/// metadata blind spot — an edit that preserves the file's length
/// within the filesystem's mtime granularity (e.g. two quick saves in
/// the same second) leaves size and mtime untouched but must still
/// trigger a recompile.
struct WatchStamps {
    /// Size + mtime per file (`None` for unreadable files, so a
    /// deleted file also registers as a change).
    meta: Vec<Option<(u64, std::time::SystemTime)>>,
    /// Content fingerprint per file (the same hash the artifact cache
    /// keys parses by).
    content: Vec<Option<tydi_lang::Fingerprint>>,
}

impl WatchStamps {
    fn capture(files: &[String]) -> WatchStamps {
        WatchStamps {
            meta: Self::metadata(files),
            content: Self::fingerprints(files),
        }
    }

    /// Re-stamps the files; returns true when anything changed. The
    /// metadata pass is a stat per file; contents are only read (and
    /// fingerprinted) when the metadata claims nothing moved.
    fn refresh(&mut self, files: &[String]) -> bool {
        let meta = Self::metadata(files);
        if meta != self.meta {
            self.meta = meta;
            self.content = Self::fingerprints(files);
            return true;
        }
        let content = Self::fingerprints(files);
        if content != self.content {
            self.content = content;
            return true;
        }
        false
    }

    fn metadata(files: &[String]) -> Vec<Option<(u64, std::time::SystemTime)>> {
        files
            .iter()
            .map(|file| {
                fs::metadata(file)
                    .ok()
                    .and_then(|m| m.modified().ok().map(|t| (m.len(), t)))
            })
            .collect()
    }

    fn fingerprints(files: &[String]) -> Vec<Option<tydi_lang::Fingerprint>> {
        files
            .iter()
            .map(|file| {
                fs::read_to_string(file)
                    .ok()
                    .map(|text| tydi_lang::fingerprint::source_fingerprint(file, &text))
            })
            .collect()
    }
}

/// `tydic serve`: stay resident as the warm compiler daemon (or, with
/// `--lsp`, as a Language Server on stdio).
#[cfg(unix)]
fn run_serve(options: &Options) -> Result<(), CliError> {
    let dir = absolute_path(&cache_dir(options));
    if options.lsp {
        let cache_dir = (!options.no_cache).then_some(dir.as_path());
        return tydi_serve::lsp::run_stdio(cache_dir)
            .map_err(|e| CliError::failure(format!("lsp server failed: {e}")));
    }
    match options.files.first().map(String::as_str) {
        Some("status") => return run_serve_status(options, &dir),
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown serve subcommand `{other}` (expected `status`, or no subcommand \
                 to run the daemon)"
            )))
        }
        None => {}
    }
    let mut serve_options = tydi_serve::server::ServeOptions::new(dir);
    serve_options.socket = options.socket.clone().map(|p| absolute_path(&p));
    serve_options.max_requests = options.max_requests;
    serve_options.job_timeout = options.job_timeout_ms.map(std::time::Duration::from_millis);
    serve_options.max_jobs = options.max_jobs;
    serve_options.idle_timeout = options
        .idle_timeout_ms
        .map(std::time::Duration::from_millis);
    tydi_serve::server::serve(&serve_options)
        .map_err(|e| CliError::failure(format!("serve failed: {e}")))
}

/// `tydic serve status`: query the running daemon's health over its
/// socket (never spawning one) and render it for humans. The field
/// values come off the daemon's tydi-obs registry via the `status`
/// job.
#[cfg(unix)]
fn run_serve_status(options: &Options, dir: &std::path::Path) -> Result<(), CliError> {
    let socket = options
        .socket
        .clone()
        .map(|p| absolute_path(&p))
        .unwrap_or_else(|| tydi_serve::socket_path(dir));
    let mut client = tydi_serve::client::Client::connect(&socket)
        .map_err(|e| CliError::failure(format!("no daemon on {}: {e}", socket.display())))?;
    let mut request = tydi_serve::protocol::JobRequest::new(tydi_serve::protocol::JobKind::Status);
    request.id = std::process::id() as u64;
    let response = client
        .request(&request)
        .map_err(|e| CliError::failure(format!("status request failed: {e}")))?;
    let status = response
        .status
        .ok_or_else(|| CliError::failure("daemon answered without a status payload"))?;
    let mut stdout = std::io::stdout();
    let _ = writeln!(
        stdout,
        "daemon pid {} up {:.1}s on {}",
        status.pid,
        status.uptime_ms / 1e3,
        socket.display()
    );
    let _ = writeln!(
        stdout,
        "jobs: {} served, {} active, {} timed out, {} panicked",
        status.requests, status.jobs_active, status.jobs_timed_out, status.jobs_panicked
    );
    let _ = writeln!(
        stdout,
        "cache: {} parse + {} elab entries",
        status.parse_entries, status.elab_entries
    );
    match status.idle_deadline_ms {
        Some(ms) => {
            let _ = writeln!(stdout, "idle shutdown in {:.1}s", ms / 1e3);
        }
        None => {
            let _ = writeln!(stdout, "idle shutdown: disabled");
        }
    }
    Ok(())
}

#[cfg(not(unix))]
fn run_serve(options: &Options) -> Result<(), CliError> {
    if options.lsp {
        return tydi_serve::lsp::run_stdio(None)
            .map_err(|e| CliError::failure(format!("lsp server failed: {e}")));
    }
    Err(CliError::failure(
        "tydic serve needs unix domain sockets (only --lsp is available on this platform)",
    ))
}

/// `--daemon`: sends this invocation as one job to the daemon owning
/// the cache directory (spawning it on demand), replays the job's
/// stdout/stderr verbatim, and returns its exit code. Any I/O error
/// here makes the caller fall back to an in-process compile.
#[cfg(unix)]
fn run_daemon_job(options: &Options) -> Result<u8, std::io::Error> {
    let kind = match options.command.as_str() {
        "check" => tydi_serve::protocol::JobKind::Check,
        "compile" | "build" => tydi_serve::protocol::JobKind::Build,
        "analyze" => tydi_serve::protocol::JobKind::Analyze,
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!("`{other}` cannot run on the daemon"),
            ))
        }
    };
    let mut request = tydi_serve::protocol::JobRequest::new(kind);
    request.id = std::process::id() as u64;
    // The daemon's working directory is wherever it was first
    // spawned; every path in the job must be absolute.
    request.files = options
        .files
        .iter()
        .map(|f| absolute_path(std::path::Path::new(f)).display().to_string())
        .collect();
    request.include_std = options.include_std;
    request.sugaring = options.sugaring;
    request.emit = match options.emit {
        EmitFormat::Ir => "ir".to_string(),
        EmitFormat::Vhdl => "vhdl".to_string(),
        EmitFormat::Verilog => "verilog".to_string(),
    };
    request.out_dir = options
        .out_dir
        .as_ref()
        .map(|dir| absolute_path(dir).display().to_string());
    request.top = options.top.clone();
    request.deny = options.deny.map(|severity| severity.name().to_string());
    request.json = options.json;
    request.clock_mhz = options.clock_mhz;

    let dir = absolute_path(&cache_dir(options));
    let exe = std::env::current_exe()?;
    let mut client = tydi_serve::client::connect_or_spawn(&dir, options.socket.as_deref(), &exe)?;
    // A saturated daemon answers `busy`; retry with capped backoff
    // before surfacing the failure.
    let response = client.request_with_retry(&request)?;
    // Replay the job's output exactly where an in-process run would
    // have put it (stdout write failures are broken pipes, ignored
    // like everywhere else in this binary).
    let _ = write!(std::io::stdout(), "{}", response.stdout);
    eprint!("{}", response.stderr);
    let _ = std::io::stdout().flush();
    Ok(response.exit_code.clamp(0, 255) as u8)
}

#[cfg(not(unix))]
fn run_daemon_job(_options: &Options) -> Result<u8, std::io::Error> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "the daemon needs unix domain sockets",
    ))
}

/// Absolutizes a path against the current directory (without
/// resolving symlinks — the path may not exist yet).
fn absolute_path(path: &std::path::Path) -> PathBuf {
    if path.is_absolute() {
        path.to_path_buf()
    } else {
        std::env::current_dir()
            .map(|cwd| cwd.join(path))
            .unwrap_or_else(|_| path.to_path_buf())
    }
}

fn run(options: &Options) -> Result<(), CliError> {
    if options.command == "serve" {
        return run_serve(options);
    }
    if options.watch {
        return run_watch(options);
    }
    if options.daemon {
        match run_daemon_job(options) {
            Ok(0) => return Ok(()),
            Ok(code) => return Err(CliError::already_reported(code)),
            // The fallback path: the daemon could not be reached (or
            // spawned); compile in-process exactly as without
            // `--daemon`, so the flag never makes a build fail.
            Err(e) => eprintln!("warning: daemon unavailable ({e}); compiling in-process"),
        }
    }
    let mut cache = load_cache(options);
    let mut output = compile_once(options, &mut cache)?;
    persist_cache(options, &mut cache);

    if options.command == "check" {
        return Ok(());
    }
    if options.command == "sim" {
        return run_sim(options, &output.project);
    }
    if options.command == "analyze" {
        return run_analyze(options, &mut output);
    }

    match options.emit.backend() {
        None => {
            let text = tydi_ir::text::emit_project(&output.project);
            match &options.out_dir {
                Some(dir) => {
                    let path = dir.join("project.tir");
                    fs::create_dir_all(dir)
                        .and_then(|()| fs::write(&path, &text))
                        .map_err(|e| CliError::failure(format!("write failed: {e}")))?;
                    eprintln!("wrote {}", path.display());
                }
                None => {
                    // Ignore broken pipes (e.g. piping into `head`).
                    let _ = write!(std::io::stdout(), "{text}");
                }
            }
        }
        Some(backend) => {
            let registry = full_registry();
            tydi_fletcher::register_fletcher_rtl(&registry);
            let generated = generate_project_for_with(
                &output.project,
                &output.index,
                &registry,
                &VhdlOptions::default(),
                backend,
            )
            .map_err(|e| CliError::failure(format!("{backend} generation failed: {e}")))?;
            match &options.out_dir {
                Some(dir) => {
                    fs::create_dir_all(dir).map_err(|e| {
                        CliError::failure(format!("cannot create `{}`: {e}", dir.display()))
                    })?;
                    for file in &generated {
                        fs::write(dir.join(&file.name), &file.contents)
                            .map_err(|e| CliError::failure(format!("write failed: {e}")))?;
                    }
                    eprintln!("wrote {} file(s) to {}", generated.len(), dir.display());
                }
                None => {
                    // Banner each file so concatenated stdout stays
                    // splittable (e.g. `tydic compile ... | csplit`).
                    let text = tydi_vhdl::files_to_string(&generated, backend);
                    let _ = write!(std::io::stdout(), "{text}");
                }
            }
        }
    }
    Ok(())
}

/// `tydic analyze`: static throughput/latency bounds and structural
/// hazards over the elaborated design, without running the simulator.
fn run_analyze(options: &Options, output: &mut CompileOutput) -> Result<(), CliError> {
    let candidates = output.project.top_level_candidates();
    let top = match options.top.as_deref() {
        Some(top) => top.to_string(),
        None => candidates
            .first()
            .map(|s| s.to_string())
            .ok_or_else(|| CliError::failure("no top-level implementation candidate found"))?,
    };
    let analyze_options = tydi_analyze::AnalyzeOptions {
        clock: options.clock_mhz.map(|mhz| {
            tydi_spec::clock::PhysicalClock::new(
                tydi_spec::ClockDomain::default_domain(),
                mhz * 1e6,
            )
        }),
        ..tydi_analyze::AnalyzeOptions::default()
    };
    let started = std::time::Instant::now();
    let report = tydi_analyze::analyze(&output.project, &output.index, &top, &analyze_options)
        .map_err(|e| CliError::failure(e.to_string()))?;
    output.record_stage(Stage::Analyze, started.elapsed(), report.hazards.len());
    // Republish so the analyze stage's time and hazard count reach the
    // registry (and thus `--timings` and `--timings-json`).
    tydi_lang::publish_compile_metrics(output);
    tydi_obs::metrics::counter_set("analyze.hazards", report.hazards.len() as u64);
    if options.timings {
        print_timings(output);
    }
    if options.json {
        let _ = write!(std::io::stdout(), "{}", report.to_json());
    } else {
        let _ = write!(std::io::stdout(), "{report}");
    }
    if let Some(deny) = options.deny {
        let denied: Vec<&tydi_analyze::Hazard> = report.hazards_at_least(deny).collect();
        if !denied.is_empty() {
            // Each denied hazard renders through the compiler's
            // diagnostic renderer, pointing at the declaration of the
            // implementation at the hazard site when the elaborator
            // recorded its span (cache-restored compiles carry no
            // spans and fall back to the span-less form).
            for hazard in &denied {
                let span = hazard
                    .impl_name
                    .as_deref()
                    .and_then(|name| output.elab_info.impl_span(name));
                let diagnostic = tydi_lang::Diagnostic::error(
                    "analyze",
                    format!("{}: {}", hazard.kind.name(), hazard.message),
                    span,
                );
                eprint!("{}", diagnostic.render(&output.files));
            }
            return Err(CliError::failure(format!(
                "analyze: {} hazard(s) at or above `{}` in `{top}`",
                denied.len(),
                deny.name()
            )));
        }
    }
    Ok(())
}

/// `tydic sim`: shard deterministic stimulus scenarios over the design
/// and print the aggregated batch report.
///
/// Scenario `k` feeds every boundary input with `--packets` values
/// offset by `k * 1000` and throttles every output to accept only
/// every `1 + k % 4` cycles, so the batch covers free-running and
/// increasingly backpressured schedules in one invocation.
fn run_sim(options: &Options, project: &tydi_ir::Project) -> Result<(), CliError> {
    use tydi_sim::{Packet, Scenario, SchedulerKind, SimBatch, Simulator};

    let top = options.top.as_deref().expect("checked by parse_args");
    let mut behaviors = tydi_sim::BehaviorRegistry::with_std();
    tydi_fletcher::register_fletcher_behaviors(&mut behaviors, Default::default());
    // One probe simulator just to discover the boundary ports.
    let probe_sim = Simulator::new(project, top, &behaviors)
        .map_err(|e| CliError::failure(format!("cannot build simulator: {e}")))?;
    let input_ports = probe_sim.input_ports();
    let output_ports = probe_sim.output_ports();
    drop(probe_sim);

    let make_scenario = |k: usize, name: String| {
        let mut scenario = Scenario::new(name).with_max_cycles(options.max_cycles);
        if let Some(idle) = options.idle_threshold {
            scenario = scenario.with_idle_threshold(idle);
        }
        for port in &input_ports {
            let base = k as i64 * 1000;
            scenario = scenario.with_feed(
                port,
                (0..options.packets as i64).map(|v| Packet::data(base + v)),
            );
        }
        for port in &output_ports {
            scenario = scenario.with_backpressure(port, 1 + k as u64 % 4);
        }
        scenario
    };
    let count = options.scenarios.max(1);
    let scenarios: Vec<Scenario> = match (&options.inject, &options.inject_sweep) {
        (None, _) => (0..count)
            .map(|k| make_scenario(k, format!("scenario-{k}")))
            .collect(),
        (Some(plan), None) => (0..count)
            .map(|k| make_scenario(k, format!("scenario-{k}")).with_faults(plan.clone()))
            .collect(),
        // The sweep reruns every scenario once per seed; only the
        // jitter faults actually vary with the seed, but the whole
        // plan is reseeded so a sweep over a deterministic plan is a
        // (cheap) replication check.
        (Some(plan), Some(seeds)) => {
            let make = &make_scenario;
            seeds
                .iter()
                .flat_map(|&seed| {
                    (0..count).map(move |k| {
                        make(k, format!("scenario-{k}-seed-{seed}"))
                            .with_faults(plan.reseeded(seed))
                    })
                })
                .collect()
        }
    };

    let kind = if options.polling {
        SchedulerKind::Polling
    } else {
        SchedulerKind::EventDriven
    };
    let started = std::time::Instant::now();
    let report = SimBatch::new(project, top, &behaviors)
        .with_scheduler(kind)
        .run(&scenarios)
        .map_err(|e| CliError::failure(format!("simulation failed: {e}")))?;
    let elapsed = started.elapsed();
    publish_sim_metrics(&report);
    tydi_obs::metrics::gauge_set("sim.elapsed_ms", elapsed.as_secs_f64() * 1e3);
    let _ = write!(std::io::stdout(), "{report}");
    if options.timings {
        print_channel_stats(&report);
    }
    eprintln!(
        "simulated {} scenario(s) over `{top}` in {elapsed:?} ({} scheduler, {} thread(s))",
        report.scenarios.len(),
        if options.polling {
            "polling"
        } else {
            "event-driven"
        },
        rayon::current_num_threads(),
    );
    // Per-scenario failures are aggregated (every scenario ran), but
    // they still fail the invocation.
    if report.failed() > 0 {
        return Err(CliError::failure(format!(
            "simulation: {} of {} scenario(s) failed",
            report.failed(),
            scenarios.len()
        )));
    }
    Ok(())
}

/// Publishes every scenario's per-channel counters under the `sim.`
/// prefix, replacing any previous batch. The `--timings` channel
/// report and `--timings-json` both read these entries back.
fn publish_sim_metrics(report: &tydi_sim::BatchReport) {
    use tydi_obs::metrics::counter_set;
    tydi_obs::metrics::clear_prefix("sim.");
    counter_set("sim.scenarios", report.scenarios.len() as u64);
    counter_set("sim.scenarios_failed", report.failed() as u64);
    let gated: u64 = report
        .scenarios
        .iter()
        .map(|s| s.fault_stats.gated_cycles)
        .sum();
    let frozen: u64 = report
        .scenarios
        .iter()
        .map(|s| s.fault_stats.frozen_ticks)
        .sum();
    if gated > 0 || frozen > 0 {
        counter_set("sim.fault.gated_cycles", gated);
        counter_set("sim.fault.frozen_ticks", frozen);
    }
    for scenario in &report.scenarios {
        for c in &scenario.channels {
            let key = format!("sim.channel.{}.{}", scenario.scenario, c.name);
            counter_set(&format!("{key}.transferred"), c.transferred);
            counter_set(&format!("{key}.max_occupancy"), c.max_occupancy as u64);
            counter_set(&format!("{key}.capacity"), c.capacity as u64);
            counter_set(&format!("{key}.refused"), c.refused_pushes);
        }
    }
}

/// One channel row of the `--timings` report, read back from the
/// metrics registry.
struct ChannelRow<'a> {
    name: &'a str,
    transferred: u64,
    max_occupancy: u64,
    capacity: u64,
    refused: u64,
}

impl ChannelRow<'_> {
    fn saturated(&self) -> bool {
        self.max_occupancy >= self.capacity
    }
}

/// `tydic sim --timings`: per-scenario channel occupancy and
/// credit-stall counters, most refused pushes first, so saturated
/// FIFOs (the backpressure front) are visible without re-running under
/// a profiler. Every number comes from the metrics registry (the
/// report only drives scenario/channel iteration order), so this
/// output and `--timings-json` can never disagree.
fn print_channel_stats(report: &tydi_sim::BatchReport) {
    let snap = tydi_obs::metrics::snapshot();
    for scenario in &report.scenarios {
        let rows: Vec<ChannelRow<'_>> = scenario
            .channels
            .iter()
            .map(|c| {
                let key = format!("sim.channel.{}.{}", scenario.scenario, c.name);
                let counter = |field: &str| snap.counter(&format!("{key}.{field}")).unwrap_or(0);
                ChannelRow {
                    name: &c.name,
                    transferred: counter("transferred"),
                    max_occupancy: counter("max_occupancy"),
                    capacity: counter("capacity"),
                    refused: counter("refused"),
                }
            })
            .collect();
        let mut stats: Vec<&ChannelRow<'_>> = rows
            .iter()
            .filter(|c| c.transferred > 0 || c.refused > 0)
            .collect();
        stats.sort_by(|a, b| {
            (b.refused, b.max_occupancy, a.name).cmp(&(a.refused, a.max_occupancy, b.name))
        });
        eprintln!(
            "channels [{}]: {} active of {} ({} saturated)",
            scenario.scenario,
            stats.len(),
            rows.len(),
            rows.iter().filter(|c| c.saturated()).count(),
        );
        eprintln!("  xfer   max/cap  refused  name");
        for c in stats.iter().take(12) {
            eprintln!(
                "  {:<6} {:>3}/{:<4} {:>7}  {}{}",
                c.transferred,
                c.max_occupancy,
                c.capacity,
                c.refused,
                c.name,
                if c.saturated() { "  [saturated]" } else { "" },
            );
        }
        if stats.len() > 12 {
            eprintln!("  ... {} more", stats.len() - 12);
        }
    }
}

fn report(e: &CliError) -> ExitCode {
    // Rendered compile failures are already newline-terminated; an
    // empty message means the output was already written (daemon
    // responses replay the job's stdout/stderr verbatim).
    if !e.message.is_empty() {
        eprintln!("{}", e.message.trim_end_matches('\n'));
    }
    ExitCode::from(e.code)
}

/// Writes the `--trace` and `--timings-json` files. Runs after
/// [`run`] regardless of its outcome, so a failing compile still
/// leaves a trace of how far it got. Write failures are warnings: the
/// run's own exit status has already been decided.
fn write_observability_outputs(options: &Options) {
    if let Some(path) = &options.trace {
        tydi_obs::trace::set_level(tydi_obs::trace::Level::Off);
        let json = tydi_obs::trace::export_chrome_trace();
        if let Err(e) = fs::write(path, json) {
            eprintln!("warning: cannot write trace to `{}`: {e}", path.display());
        }
    }
    if let Some(path) = &options.timings_json {
        let json = tydi_obs::metrics::snapshot().to_json();
        if let Err(e) = fs::write(path, json) {
            eprintln!(
                "warning: cannot write timings JSON to `{}`: {e}",
                path.display()
            );
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(None) => ExitCode::SUCCESS,
        Ok(Some(options)) => {
            if options.trace.is_some() {
                tydi_obs::trace::set_level(if options.trace_fine {
                    tydi_obs::trace::Level::Fine
                } else {
                    tydi_obs::trace::Level::Coarse
                });
            }
            let result = run(&options);
            write_observability_outputs(&options);
            match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => report(&e),
            }
        }
        Err(e) => report(&e),
    }
}
