//! Observability substrate for the Tydi-lang toolchain: hierarchical
//! tracing spans with Chrome-trace export, and a process-wide metrics
//! registry, with no dependencies outside `std` (consistent with the
//! workspace's offline-shim policy).
//!
//! The crate has two halves:
//!
//! * [`trace`] — begin/end spans and instant markers, buffered
//!   per-thread without locks and drained into a Chrome trace-event
//!   JSON file (loadable in Perfetto or `about:tracing`). Recording is
//!   gated by one process-wide atomic: when tracing is disabled (the
//!   default), a span is a relaxed atomic load and nothing else — no
//!   allocation, no clock read, no buffer push. The `tydic --trace`
//!   flag flips the atomic for the whole process.
//! * [`metrics`] — named monotonic counters, gauges, histograms and
//!   text annotations in one global registry, so the pipeline's
//!   scattered statistics (stage timings, type-store hit rates, cache
//!   reuse, simulation channel counters) land in a single typed
//!   snapshot with a single JSON serializer.
//!
//! [`json`] is a minimal JSON reader used by the trace schema tests
//! (and available to any consumer that needs to load the files this
//! crate writes back in).
//!
//! # Span taxonomy
//!
//! Spans carry a `cat` (category) naming the crate that emitted them
//! (`core`, `tydi-spec`, `tydi-ir`, `tydi-vhdl`, `tydi-rtl`,
//! `tydi-sim`, `tydi-analyze`, `tydi-stdlib`, `tydi-fletcher`) and a
//! name identifying the unit of work: `stage:<stage>` for whole
//! pipeline stages, `parse:<file>`, `elab:<package>`, `drc:<impl>`,
//! `lower:<impl>`, `emit:<module>`, `sim:<scenario>`,
//! `analyze:<top>`, `fixpoint-iter:<n>`. Fine-grained spans
//! (per-component simulator firings, per-type physical expansions)
//! only record at [`trace::Level::Fine`], enabled by
//! `tydic --trace-fine`.

pub mod json;
pub mod metrics;
pub mod trace;

pub use trace::{
    fine_span_named, instant, instant_named, span, span_named, Event, Phase, SpanGuard,
};

/// Builds a span with a `format!`-style name, evaluated only when
/// tracing is enabled: `span!("core", "elab:{name}")`.
#[macro_export]
macro_rules! span {
    ($cat:expr, $($fmt:tt)+) => {
        $crate::trace::span_named($cat, || format!($($fmt)+))
    };
}

/// Escapes a string for embedding in a JSON string literal (used by
/// the trace exporter, the metrics serializer, and protocol writers
/// like `tydi-serve` that emit JSON without a serde dependency).
pub fn escape_json(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn escape_json_handles_specials() {
        let mut out = String::new();
        super::escape_json("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn span_macro_formats_lazily() {
        // Disabled: the format must not run (a panicking closure would
        // fire if it did — span_named guarantees laziness; here we just
        // check the macro compiles against both literal and formatted
        // names and records nothing while disabled).
        let _serial = crate::trace::test_serial();
        crate::trace::set_level(crate::trace::Level::Off);
        let before = crate::trace::events_recorded();
        {
            let _a = span!("core", "literal");
            let _b = span!("core", "formatted:{}", 42);
        }
        assert_eq!(crate::trace::events_recorded(), before);
    }
}
