//! The process-wide metrics registry: named counters, gauges,
//! histograms and text annotations behind one mutex, snapshotted into
//! one sorted, typed view with a single JSON serializer.
//!
//! The registry absorbs the pipeline's previously scattered statistics
//! (stage timings, artifact-cache reuse counts, type-store hit rates,
//! parallel-elaboration fanout, simulation channel counters) so every
//! consumer — `tydic --timings`, `--timings-json`, the bench harness —
//! reads the same names from the same place.
//!
//! Publication sites use *set* semantics (`counter_set`, `gauge_set`)
//! when they report the final value of a finished unit of work (one
//! compile, one simulation batch), so long-lived processes like
//! `tydic check --watch` report per-run values rather than process
//! accumulations; incremental sites use `counter_add`.
//!
//! # Per-request scoping
//!
//! A long-lived server (the `tydic serve` daemon) publishes many
//! runs' metrics concurrently; raw names would clobber each other.
//! [`scoped`] pushes a thread-local name prefix (e.g. `req.17.`) that
//! every mutation on that thread applies transparently — publication
//! sites like `publish_compile_metrics` need no changes — and
//! [`Snapshot::prefixed`] reads one request's namespace back out.
//! Scoping is per-thread: work a scoped thread fans out to a pool
//! lands unscoped, so scope the thread that publishes the totals.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;

thread_local! {
    /// The active name prefix for this thread's metric mutations.
    static SCOPE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// RAII guard for a thread-local metric name scope; see [`scoped`].
#[derive(Debug)]
pub struct Scope {
    previous: Option<String>,
}

/// Prefixes every metric name this thread writes (or clears) with
/// `prefix` until the returned guard drops, restoring the previous
/// scope (scopes nest). Reads ([`snapshot`]) are unaffected: the
/// registry stays global, scoped names are just distinct entries.
pub fn scoped(prefix: impl Into<String>) -> Scope {
    let prefix = prefix.into();
    let previous = SCOPE.with(|scope| scope.replace(Some(prefix)));
    Scope { previous }
}

impl Drop for Scope {
    fn drop(&mut self) {
        let previous = self.previous.take();
        SCOPE.with(|scope| *scope.borrow_mut() = previous);
    }
}

/// The thread's scope prefix applied to `name`.
fn scoped_name(name: &str) -> String {
    SCOPE.with(|scope| match scope.borrow().as_deref() {
        Some(prefix) => format!("{prefix}{name}"),
        None => name.to_string(),
    })
}

/// One histogram's aggregate state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl Histogram {
    fn record(&mut self, sample: f64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample;
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A typed metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic (or per-run) unsigned count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Sample distribution aggregate.
    Histogram(Histogram),
    /// Free-form annotation (e.g. a fanout shape like `"2+14+1"`).
    Text(String),
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn with_registry<T>(f: impl FnOnce(&mut BTreeMap<String, Metric>) -> T) -> T {
    let mut registry = match REGISTRY.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut registry)
}

/// Adds `delta` to a counter, creating it at zero first.
pub fn counter_add(name: &str, delta: u64) {
    let name = scoped_name(name);
    with_registry(|registry| {
        let entry = registry.entry(name).or_insert(Metric::Counter(0));
        match entry {
            Metric::Counter(value) => *value += delta,
            other => *other = Metric::Counter(delta),
        }
    });
}

/// Sets a counter to an absolute value (per-run publication sites).
pub fn counter_set(name: &str, value: u64) {
    let name = scoped_name(name);
    with_registry(|registry| {
        registry.insert(name, Metric::Counter(value));
    });
}

/// Sets a gauge.
pub fn gauge_set(name: &str, value: f64) {
    let name = scoped_name(name);
    with_registry(|registry| {
        registry.insert(name, Metric::Gauge(value));
    });
}

/// Sets a text annotation.
pub fn text_set(name: &str, value: impl Into<String>) {
    let name = scoped_name(name);
    let value = value.into();
    with_registry(|registry| {
        registry.insert(name, Metric::Text(value));
    });
}

/// Records one histogram sample.
pub fn histogram_record(name: &str, sample: f64) {
    let name = scoped_name(name);
    with_registry(|registry| {
        let entry = registry
            .entry(name)
            .or_insert(Metric::Histogram(Histogram::default()));
        match entry {
            Metric::Histogram(h) => h.record(sample),
            other => {
                let mut h = Histogram::default();
                h.record(sample);
                *other = Metric::Histogram(h);
            }
        }
    });
}

/// Removes every metric whose name starts with `prefix` (per-run
/// publication sites clear their namespace before re-publishing, so a
/// second run never inherits stale entries from a first).
pub fn clear_prefix(prefix: &str) {
    let prefix = scoped_name(prefix);
    with_registry(|registry| {
        registry.retain(|name, _| !name.starts_with(&prefix));
    });
}

/// Removes every metric (test isolation).
pub fn reset() {
    with_registry(|registry| registry.clear());
}

/// A point-in-time copy of the whole registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Name → value, in sorted name order.
    pub entries: BTreeMap<String, Metric>,
}

/// Copies the registry.
pub fn snapshot() -> Snapshot {
    Snapshot {
        entries: with_registry(|registry| registry.clone()),
    }
}

impl Snapshot {
    /// The counter's value, when `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(Metric::Counter(value)) => Some(*value),
            _ => None,
        }
    }

    /// The gauge's value, when `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.entries.get(name) {
            Some(Metric::Gauge(value)) => Some(*value),
            _ => None,
        }
    }

    /// The text annotation, when `name` is text.
    pub fn text(&self, name: &str) -> Option<&str> {
        match self.entries.get(name) {
            Some(Metric::Text(value)) => Some(value.as_str()),
            _ => None,
        }
    }

    /// The histogram aggregate, when `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self.entries.get(name) {
            Some(Metric::Histogram(h)) => Some(*h),
            _ => None,
        }
    }

    /// Entries under a dotted prefix, e.g. `prefixed("sim.channel.")`.
    pub fn prefixed<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, &'a Metric)> {
        self.entries
            .iter()
            .filter(move |(name, _)| name.starts_with(prefix))
            .map(|(name, metric)| (name.as_str(), metric))
    }

    /// Serializes the snapshot as one flat JSON object, names sorted.
    /// Counters and gauges serialize as numbers, text as strings,
    /// histograms as `{"count":..,"sum":..,"min":..,"max":..}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.entries.len() * 48);
        out.push_str("{\n");
        for (index, (name, metric)) in self.entries.iter().enumerate() {
            if index > 0 {
                out.push_str(",\n");
            }
            out.push_str("  \"");
            crate::escape_json(name, &mut out);
            out.push_str("\": ");
            match metric {
                Metric::Counter(value) => out.push_str(&value.to_string()),
                Metric::Gauge(value) => out.push_str(&format_f64(*value)),
                Metric::Text(value) => {
                    out.push('"');
                    crate::escape_json(value, &mut out);
                    out.push('"');
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                        h.count,
                        format_f64(h.sum),
                        format_f64(h.min),
                        format_f64(h.max)
                    ));
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

/// `f64` as JSON: finite values verbatim (with a `.0` suffix for
/// integral ones so they read back as floats), non-finite as `null`.
fn format_f64(value: f64) -> String {
    if !value.is_finite() {
        return "null".to_string();
    }
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{value:.1}")
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        crate::trace::test_serial()
    }

    #[test]
    fn counters_gauges_text_and_histograms_round_trip() {
        let _serial = serial();
        reset();
        counter_add("cache.parse.reused", 3);
        counter_add("cache.parse.reused", 2);
        counter_set("par.threads", 8);
        gauge_set("timings.wall_ms", 12.5);
        text_set("par.level_packages", "2+14+1");
        histogram_record("parse.file_ms", 1.0);
        histogram_record("parse.file_ms", 3.0);
        let snap = snapshot();
        assert_eq!(snap.counter("cache.parse.reused"), Some(5));
        assert_eq!(snap.counter("par.threads"), Some(8));
        assert_eq!(snap.gauge("timings.wall_ms"), Some(12.5));
        assert_eq!(snap.text("par.level_packages"), Some("2+14+1"));
        let h = snap.histogram("parse.file_ms").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.mean(), 2.0);
        reset();
        assert!(snapshot().entries.is_empty());
    }

    #[test]
    fn thread_scope_prefixes_writes_and_clears() {
        let _serial = serial();
        reset();
        counter_set("timings.wall", 1);
        {
            let _scope = scoped("req.7.");
            counter_set("timings.wall", 2);
            gauge_set("timings.parse_ms", 1.5);
            text_set("par.levels", "1+2");
            histogram_record("parse.file_ms", 3.0);
            counter_add("cache.hits", 4);
            {
                let _inner = scoped("req.8.");
                counter_set("timings.wall", 3);
            }
            // Nested scope restored to req.7.
            counter_set("nested.restored", 1);
            // A scoped clear only touches the scoped namespace.
            clear_prefix("par.");
        }
        let snap = snapshot();
        assert_eq!(snap.counter("timings.wall"), Some(1), "unscoped untouched");
        assert_eq!(snap.counter("req.7.timings.wall"), Some(2));
        assert_eq!(snap.counter("req.8.timings.wall"), Some(3));
        assert_eq!(snap.gauge("req.7.timings.parse_ms"), Some(1.5));
        assert_eq!(snap.counter("req.7.cache.hits"), Some(4));
        assert_eq!(snap.counter("req.7.nested.restored"), Some(1));
        assert_eq!(
            snap.histogram("req.7.parse.file_ms").map(|h| h.count),
            Some(1)
        );
        assert_eq!(snap.text("req.7.par.levels"), None, "scoped clear applied");
        // Guard dropped: writes land unscoped again.
        counter_set("after.scope", 9);
        assert_eq!(snapshot().counter("after.scope"), Some(9));
        reset();
    }

    #[test]
    fn clear_prefix_scopes_per_run_namespaces() {
        let _serial = serial();
        reset();
        counter_set("sim.channel.a", 1);
        counter_set("sim.channel.b", 2);
        counter_set("types.distinct", 7);
        clear_prefix("sim.");
        let snap = snapshot();
        assert_eq!(snap.counter("sim.channel.a"), None);
        assert_eq!(snap.counter("types.distinct"), Some(7));
        reset();
    }

    #[test]
    fn snapshot_json_is_sorted_and_parses_back() {
        let _serial = serial();
        reset();
        gauge_set("b.gauge", 2.0);
        counter_set("a.counter", 1);
        text_set("c.text", "x\"y");
        histogram_record("d.hist", 1.5);
        let snap = snapshot();
        let text = snap.to_json();
        reset();
        let a = text.find("a.counter").unwrap();
        let b = text.find("b.gauge").unwrap();
        let c = text.find("c.text").unwrap();
        assert!(a < b && b < c, "sorted: {text}");
        let parsed = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("a.counter").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(parsed.get("b.gauge").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(parsed.get("c.text").and_then(|v| v.as_str()), Some("x\"y"));
        assert_eq!(
            parsed
                .get("d.hist")
                .and_then(|v| v.get("count"))
                .and_then(|v| v.as_f64()),
            Some(1.0)
        );
    }
}
