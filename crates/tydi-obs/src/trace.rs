//! Hierarchical spans with per-thread event buffers and Chrome
//! trace-event export.
//!
//! # Design
//!
//! Recording is controlled by one process-wide [`AtomicU8`] level. On
//! the disabled path every entry point reduces to a single relaxed
//! load and an immediate return: no allocation, no `Instant::now()`,
//! no thread-local access. Span names are passed as closures
//! (`span_named`) precisely so the `format!` only runs once the level
//! check has passed.
//!
//! When enabled, each thread appends events to its own buffer, found
//! through a thread-local handle and registered once in a global
//! list. The buffer is behind a mutex, but only its owning thread
//! takes it on the hot path, so pushes never contend (one
//! uncontended lock ≈ one CAS); [`take_events`] walks the registry
//! and drains every buffer, including those of worker threads that
//! have already exited. (Draining through a registry rather than
//! thread-exit `Drop` flushes matters: `std::thread::scope` joins
//! report a worker as finished when its closure returns, which can be
//! *before* its thread-local destructors run, so a `Drop`-based flush
//! can race a drain that follows the scope.)
//!
//! Threads are numbered sequentially in first-record order, so trace
//! files use small stable track ids instead of opaque OS thread ids.
//! Timestamps are nanoseconds from a process-wide epoch fixed at the
//! first enabled record.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Recording level, stored in a process-wide atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd)]
#[repr(u8)]
pub enum Level {
    /// Nothing records (the default).
    Off = 0,
    /// Pipeline-structure spans record (stages, per-file, per-package,
    /// per-impl, per-scenario).
    Coarse = 1,
    /// Everything records, including per-component simulator firings
    /// and per-type physical expansions.
    Fine = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);
/// Total events ever recorded — the counter behind the allocation-free
/// guarantee's regression test: a disabled-trace compile must leave it
/// untouched.
static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Every live (or undrained) per-thread buffer, in registration order.
static REGISTRY: Mutex<Vec<Arc<Mutex<Vec<Event>>>>> = Mutex::new(Vec::new());

/// One trace event. `phase` follows the Chrome trace-event phases:
/// `B` (span begin), `E` (span end), `i` (instant marker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Begin, end or instant.
    pub phase: Phase,
    /// Category: the emitting crate (`core`, `tydi-sim`, ...).
    pub cat: &'static str,
    /// Span or marker name (`stage:parse`, `elab:pkg3`, ...).
    pub name: String,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Sequential small thread id (first-record order).
    pub tid: u32,
}

/// Chrome trace-event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Instant marker (`"i"`).
    Instant,
}

impl Phase {
    fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'i',
        }
    }
}

struct ThreadBuf {
    tid: u32,
    events: Arc<Mutex<Vec<Event>>>,
}

thread_local! {
    static BUF: ThreadBuf = {
        let events: Arc<Mutex<Vec<Event>>> = Arc::new(Mutex::new(Vec::new()));
        if let Ok(mut registry) = REGISTRY.lock() {
            registry.push(Arc::clone(&events));
        }
        ThreadBuf {
            tid: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            events,
        }
    };
}

/// Sets the recording level for the whole process.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current recording level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Coarse,
        _ => Level::Fine,
    }
}

/// True when coarse spans record.
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Coarse as u8
}

/// True when fine-grained spans record too.
#[inline]
pub fn fine_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= Level::Fine as u8
}

/// Total events recorded so far (monotonic; never reset). A
/// disabled-trace workload must not move this.
pub fn events_recorded() -> u64 {
    EVENTS_RECORDED.load(Ordering::Relaxed)
}

fn record(phase: Phase, cat: &'static str, name: String) {
    EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
    let ts_ns = EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64;
    BUF.with(|buf| {
        // Only the owning thread pushes, so this lock never contends
        // except against a concurrent drain.
        if let Ok(mut events) = buf.events.lock() {
            events.push(Event {
                phase,
                cat,
                name,
                ts_ns,
                tid: buf.tid,
            });
        }
    });
}

/// Closes its span (emitting the matching end event) on drop. Inert
/// when tracing was disabled at creation.
#[must_use = "dropping the guard immediately makes a zero-length span"]
pub struct SpanGuard(Option<(&'static str, String)>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cat, name)) = self.0.take() {
            record(Phase::End, cat, name);
        }
    }
}

fn begin(cat: &'static str, name: String) -> SpanGuard {
    record(Phase::Begin, cat, name.clone());
    SpanGuard(Some((cat, name)))
}

/// Opens a span with a static name. A relaxed load and nothing else
/// when tracing is disabled.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    begin(cat, name.to_string())
}

/// Opens a span with a lazily computed name; `name` only runs when
/// tracing is enabled.
#[inline]
pub fn span_named<F: FnOnce() -> String>(cat: &'static str, name: F) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    begin(cat, name())
}

/// Opens a fine-grained span (per-component firings, per-type
/// expansions); records only at [`Level::Fine`].
#[inline]
pub fn fine_span_named<F: FnOnce() -> String>(cat: &'static str, name: F) -> SpanGuard {
    if !fine_enabled() {
        return SpanGuard(None);
    }
    begin(cat, name())
}

/// Records an instant marker with a static name.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    if enabled() {
        record(Phase::Instant, cat, name.to_string());
    }
}

/// Records an instant marker with a lazily computed name.
#[inline]
pub fn instant_named<F: FnOnce() -> String>(cat: &'static str, name: F) {
    if enabled() {
        record(Phase::Instant, cat, name());
    }
}

/// Drains every recorded event from every thread's buffer, sorted by
/// timestamp (stable, so per-thread event order is preserved). Buffers
/// of exited threads drain too; once drained and dead, their registry
/// slots are pruned.
pub fn take_events() -> Vec<Event> {
    let mut registry = match REGISTRY.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut events = Vec::new();
    for buffer in registry.iter() {
        if let Ok(mut buffered) = buffer.lock() {
            events.append(&mut buffered);
        }
    }
    // A strong count of 1 means the owning thread exited (only the
    // registry still holds the buffer); it can never refill.
    registry.retain(|buffer| Arc::strong_count(buffer) > 1);
    drop(registry);
    events.sort_by_key(|e| e.ts_ns);
    events
}

/// Serializes events as Chrome trace-event JSON (the `traceEvents`
/// object form Perfetto and `about:tracing` load directly).
/// Timestamps are microseconds with nanosecond precision; all events
/// share `pid` 1.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (index, event) in events.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str("\n{\"ph\":\"");
        out.push(event.phase.code());
        out.push_str("\",\"cat\":\"");
        crate::escape_json(event.cat, &mut out);
        out.push_str("\",\"name\":\"");
        crate::escape_json(&event.name, &mut out);
        out.push_str("\",\"ts\":");
        out.push_str(&format!(
            "{}.{:03}",
            event.ts_ns / 1_000,
            event.ts_ns % 1_000
        ));
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&event.tid.to_string());
        if event.phase == Phase::Instant {
            // Thread-scoped instants render as thin markers on the
            // emitting thread's track.
            out.push_str(",\"s\":\"t\"");
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Serializes a full take: flushes, drains and formats in one call.
pub fn export_chrome_trace() -> String {
    chrome_trace(&take_events())
}

#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_never_allocates_events() {
        let _serial = test_serial();
        set_level(Level::Off);
        let _ = take_events();
        let before = events_recorded();
        {
            let _a = span("core", "quiet");
            let _b = span_named("core", || panic!("name closure must not run"));
            let _c = fine_span_named("core", || panic!("fine name closure must not run"));
            instant("core", "nope");
            instant_named("core", || panic!("instant closure must not run"));
        }
        assert_eq!(events_recorded(), before);
        assert!(take_events().is_empty());
    }

    #[test]
    fn spans_balance_and_nest() {
        let _serial = test_serial();
        set_level(Level::Coarse);
        let _ = take_events();
        {
            let _outer = span("core", "outer");
            {
                let _inner = span_named("core", || "inner".to_string());
            }
            instant("core", "mark");
        }
        set_level(Level::Off);
        let events = take_events();
        let names: Vec<(&str, Phase)> = events.iter().map(|e| (e.name.as_str(), e.phase)).collect();
        assert_eq!(
            names,
            vec![
                ("outer", Phase::Begin),
                ("inner", Phase::Begin),
                ("inner", Phase::End),
                ("mark", Phase::Instant),
                ("outer", Phase::End),
            ]
        );
        // All on the same (stable, small) thread id.
        assert!(events.iter().all(|e| e.tid == events[0].tid));
    }

    #[test]
    fn fine_spans_only_record_at_fine() {
        let _serial = test_serial();
        set_level(Level::Coarse);
        let _ = take_events();
        {
            let _skipped = fine_span_named("tydi-sim", || "fire:x".to_string());
        }
        assert!(take_events().is_empty());
        set_level(Level::Fine);
        {
            let _kept = fine_span_named("tydi-sim", || "fire:x".to_string());
        }
        set_level(Level::Off);
        assert_eq!(take_events().len(), 2);
    }

    #[test]
    fn worker_threads_flush_on_exit_with_distinct_tids() {
        let _serial = test_serial();
        set_level(Level::Coarse);
        let _ = take_events();
        std::thread::scope(|scope| {
            for k in 0..2 {
                scope.spawn(move || {
                    let _s = span_named("core", || format!("task:{k}"));
                });
            }
        });
        set_level(Level::Off);
        let events = take_events();
        assert_eq!(events.len(), 4);
        let tids: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "each worker gets its own track");
        // Per tid, begin strictly precedes end.
        for tid in tids {
            let phases: Vec<Phase> = events
                .iter()
                .filter(|e| e.tid == tid)
                .map(|e| e.phase)
                .collect();
            assert_eq!(phases, vec![Phase::Begin, Phase::End]);
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![
            Event {
                phase: Phase::Begin,
                cat: "core",
                name: "stage:parse".to_string(),
                ts_ns: 1_500,
                tid: 0,
            },
            Event {
                phase: Phase::End,
                cat: "core",
                name: "stage:parse".to_string(),
                ts_ns: 2_750,
                tid: 0,
            },
            Event {
                phase: Phase::Instant,
                cat: "core",
                name: "cache \"hit\"".to_string(),
                ts_ns: 3_000,
                tid: 1,
            },
        ];
        let text = chrome_trace(&events);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"ts\":1.500"));
        assert!(text.contains("\"ts\":2.750"));
        assert!(text.contains("\"s\":\"t\""));
        assert!(text.contains("cache \\\"hit\\\""));
        // Parses back with the crate's own reader.
        let parsed = crate::json::parse(&text).expect("valid JSON");
        let list = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(list.len(), 3);
        assert_eq!(
            list[0].get("name").and_then(|v| v.as_str()),
            Some("stage:parse")
        );
    }
}
