//! A minimal JSON reader, just enough to load back what this crate
//! writes (trace files, metric snapshots) in tests and tools, with no
//! dependency outside `std`.
//!
//! Supports the full JSON value grammar: objects, arrays, strings
//! (with escapes, including `\uXXXX` and surrogate pairs), numbers,
//! booleans and `null`. Numbers are read as `f64`, which is lossless
//! for every value this workspace serializes.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, preserving source key order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup (first match) when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(text) => Some(text.as_str()),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {}, found {:?}",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&b| b as char),
            *pos
        )),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(format!("invalid keyword at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            other => {
                return Err(format!(
                    "expected `,` or `}}` at byte {}, found {:?}",
                    *pos,
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            other => {
                return Err(format!(
                    "expected `,` or `]` at byte {}, found {:?}",
                    *pos,
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let unit = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: a `\uXXXX` low surrogate
                            // must follow.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err("lone high surrogate".to_string());
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".to_string());
                            }
                            let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(code).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(unit).ok_or("invalid \\u escape")?
                        };
                        out.push(c);
                        continue;
                    }
                    other => {
                        return Err(format!(
                            "invalid escape {:?} at byte {}",
                            other.map(|&b| b as char),
                            *pos
                        ))
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so bytes are
                // valid UTF-8; find the scalar's byte length).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    if *pos + 4 > bytes.len() {
        return Err("truncated \\u escape".to_string());
    }
    let hex = std::str::from_utf8(&bytes[*pos..*pos + 4]).map_err(|e| e.to_string())?;
    let value = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
    *pos += 4;
    Ok(value)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\n\"y\" é"}"#;
        let value = parse(doc).unwrap();
        let a = value.get("a").and_then(|v| v.as_array()).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(
            value.get("b").and_then(|v| v.get("c")),
            Some(&Json::Bool(true))
        );
        assert_eq!(value.get("b").and_then(|v| v.get("d")), Some(&Json::Null));
        assert_eq!(value.get("e").and_then(|v| v.as_str()), Some("x\n\"y\" é"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let value = parse(r#""😀""#).unwrap();
        assert_eq!(value.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse("nul").is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn object_key_order_is_preserved() {
        let value = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let members = value.as_object().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
        assert_eq!(value.get("a").and_then(|v| v.as_f64()), Some(2.0));
    }
}
