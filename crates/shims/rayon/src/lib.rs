//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local crate provides the small slice of rayon's API the
//! toolchain uses: `par_iter`/`into_par_iter` with `map`, `for_each`
//! and `collect`, plus [`join`]. Work is fanned out over
//! `std::thread::scope` chunks; result order is preserved, exactly as
//! rayon guarantees for indexed parallel iterators.
//!
//! Falls back to sequential execution when the machine reports a
//! single core, when the input is too small to be worth a thread, or
//! when the `TYDI_THREADS` environment variable is set to `1` (the
//! documented single-thread escape hatch for debugging).
//!
//! Replacing this shim with the real rayon is a one-line change in the
//! workspace `Cargo.toml`; no call site needs to change.

use std::num::NonZeroUsize;

/// The traits rayon users import; `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Inputs smaller than this run sequentially: thread spawn overhead
/// dominates below it.
const MIN_PARALLEL_LEN: usize = 8;

/// Number of worker threads to use for `len` items (1 = sequential).
/// `TYDI_THREADS=n` overrides the core count: `1` forces the
/// sequential fallback, larger values force that many workers (useful
/// for exercising the parallel path on single-core machines).
fn thread_count(len: usize) -> usize {
    if len < MIN_PARALLEL_LEN {
        return 1;
    }
    let cores = match std::env::var("TYDI_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    };
    cores.min(len)
}

/// A parallel iterator over an exact-size list of items.
///
/// Unlike real rayon this is not lazy: adapters are recorded and the
/// whole chain executes on `collect`/`for_each`. The visible behaviour
/// (ordered results, parallel execution of the mapped closure) matches.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`] by value; rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Borrowing conversion; rayon's `IntoParallelRefIterator` (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// The operations available on a [`ParIter`]; rayon's `ParallelIterator`.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Maps every element in parallel, preserving order.
    fn map<R: Send, F>(self, f: F) -> ParIter<R>
    where
        F: Fn(Self::Item) -> R + Sync + Send;

    /// Runs `f` on every element in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send;

    /// Collects the elements, preserving input order.
    fn collect<C: FromParallel<Self::Item>>(self) -> C;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<R: Send, F>(self, f: F) -> ParIter<R>
    where
        F: Fn(T) -> R + Sync + Send,
    {
        ParIter {
            items: run_ordered(self.items, &f),
        }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        run_ordered(self.items, &|item| f(item));
    }

    fn collect<C: FromParallel<T>>(self) -> C {
        C::from_vec(self.items)
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallel<T> {
    /// Builds the collection from the ordered results.
    fn from_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallel<Result<T, E>> for Result<Vec<T>, E> {
    fn from_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Runs `f` over all items, in parallel when worthwhile, returning the
/// results in input order.
fn run_ordered<T: Send, R: Send>(items: Vec<T>, f: &(dyn Fn(T) -> R + Sync)) -> Vec<R> {
    let workers = thread_count(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    // Pair every item with its index, split into per-worker chunks and
    // write results straight into disjoint slices of the output.
    let indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let mut chunks: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
    let mut it = indexed.into_iter();
    loop {
        let c: Vec<(usize, T)> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let out = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for c in chunks {
            let out = &out;
            scope.spawn(move || {
                let local: Vec<(usize, R)> = c.into_iter().map(|(i, x)| (i, f(x))).collect();
                let mut guard = out.lock().expect("rayon shim poisoned");
                for (i, r) in local {
                    guard[i] = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index written"))
        .collect()
}

/// The number of worker threads the shim would choose for `len`
/// items (1 = sequential). Exposed so orchestration layers (e.g. the
/// package-parallel elaborator) can report their fan-out.
pub fn planned_threads(len: usize) -> usize {
    thread_count(len)
}

/// Work-stealing map over `0..len`: `workers` scoped threads pull the
/// next unclaimed index from a shared atomic counter, so an uneven
/// workload (one slow item) never idles the other workers the way
/// fixed chunking does. Results come back in index order. Runs
/// sequentially when `workers <= 1` or there is nothing to steal.
pub fn map_stealing<R, F>(len: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.min(len).max(1);
    if workers <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<std::sync::Mutex<Option<R>>> = Vec::with_capacity(len);
    slots.resize_with(len, || std::sync::Mutex::new(None));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("steal slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("steal slot poisoned")
                .expect("every index computed")
        })
        .collect()
}

/// Runs both closures, in parallel when the machine has spare cores,
/// and returns both results; rayon's `join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if thread_count(MIN_PARALLEL_LEN) <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

/// Returns the number of threads the shim would use for a large input;
/// rayon's `current_num_threads`.
pub fn current_num_threads() -> usize {
    thread_count(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_by_value() {
        let squares: Vec<u64> = (0u64..100)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * x)
            .collect();
        assert_eq!(squares[99], 99 * 99);
    }

    #[test]
    fn collect_into_result() {
        let ok: Result<Vec<u32>, String> = (0u32..50)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(Ok)
            .collect();
        assert_eq!(ok.unwrap().len(), 50);
        let err: Result<Vec<u32>, String> = (0u32..50)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| {
                if x == 25 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn small_inputs_run_sequentially() {
        // Just exercises the fallback path.
        let v: Vec<i32> = vec![1, 2, 3].par_iter().map(|&x| x + 1).collect();
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn map_stealing_preserves_order() {
        let out = super::map_stealing(37, 4, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        // Sequential fallback produces the same thing.
        assert_eq!(super::map_stealing(5, 1, |i| i * i), out[..5].to_vec());
        assert!(super::map_stealing(0, 4, |i| i).is_empty());
    }

    #[test]
    fn forced_worker_count_spawns_real_threads() {
        // TYDI_THREADS forces the scoped-thread path even on a
        // single-core machine; results must still come back in order
        // from distinct worker threads.
        std::env::set_var("TYDI_THREADS", "4");
        let input: Vec<u64> = (0..100).collect();
        let ids: Vec<(u64, std::thread::ThreadId)> = input
            .par_iter()
            .map(|&x| (x * 3, std::thread::current().id()))
            .collect();
        std::env::remove_var("TYDI_THREADS");
        let values: Vec<u64> = ids.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        let distinct: std::collections::HashSet<_> = ids.iter().map(|(_, t)| *t).collect();
        assert!(distinct.len() > 1, "expected multiple worker threads");
    }
}
