//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API slice the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock harness: warm up, run `sample_size` timed samples, and
//! print min / median / mean per benchmark. No plots, no statistical
//! regression analysis. Swapping in the real criterion is a one-line
//! change in the workspace `Cargo.toml`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark context handed to each `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\nbenchmark group `{name}`");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into(), sample_size, f);
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time; accepted for API compatibility and
    /// unused (samples are bounded by count, not duration).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times the routine under benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one timing sample per
    /// batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(t0.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: time one iteration to pick a batch size that keeps
    // each sample around a millisecond (cheap routines) while capping
    // total time for expensive ones.
    let mut calib = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut calib);
    let per_iter = calib.samples.first().copied().unwrap_or(Duration::ZERO);
    let iters_per_sample = if per_iter < Duration::from_micros(50) {
        (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64
    } else {
        1
    };

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "  {id:<40} min {min:>10.2?}   median {median:>10.2?}   mean {mean:>10.2?}   ({} samples x {iters_per_sample} iters)",
        samples.len()
    );
}

/// Declares a group of benchmark functions; `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups;
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches`
            // passes `--test`, in which case run nothing (matching
            // criterion, which treats test mode as a smoke build).
            let test_mode = std::env::args().any(|a| a == "--test");
            if test_mode {
                return;
            }
            $($group();)+
        }
    };
}
