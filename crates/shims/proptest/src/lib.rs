//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace
//! crate implements the slice of proptest's API the test-suite uses:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_recursive` /
//!   `boxed`;
//! * range, tuple, `&str`-pattern, [`Just`] and [`collection::vec`]
//!   strategies, plus [`any`] for primitives;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`]
//!   macros;
//! * a deterministic [`test_runner::Runner`] (seeded xoshiro via the
//!   workspace `rand` shim).
//!
//! Two deliberate simplifications relative to real proptest: failing
//! cases are *not shrunk* (the failing inputs are printed verbatim),
//! and `&str` strategies interpret only the `\PC{lo,hi}`-style
//! patterns the suite uses rather than full regex syntax. Swapping in
//! the real crate is a one-line change in the workspace `Cargo.toml`.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy::new(element, size.lo, size.hi)
    }

    /// Inclusive length bounds for collection strategies.
    pub struct SizeRange {
        pub(crate) lo: usize,
        pub(crate) hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
}

/// Everything a test imports with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i64..100, raw: u64) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each `fn` inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_body! {
                @cfg($cfg) @name($name) @body($body) @bindings() $($args)*
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Internal: munches the argument list of one property test, turning
/// `name in strategy` and `name: Type` bindings into generated locals.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    // Terminal: all bindings collected (with or without trailing comma).
    (@cfg($cfg:expr) @name($name:ident) @body($body:block)
     @bindings($(($pat:ident, $strat:expr))*) $(,)?) => {{
        let __config = $cfg;
        let mut __runner = $crate::test_runner::Runner::new(__config, stringify!($name));
        __runner.run(|__rng| {
            $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
            let __inputs = || {
                let mut __s = String::new();
                $(
                    __s.push_str(concat!(stringify!($pat), " = "));
                    __s.push_str(&format!("{:?}, ", &$pat));
                )*
                __s
            };
            let __described = __inputs();
            let __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                #[allow(unreachable_code)]
                Ok(())
            };
            (__case(), __described)
        });
    }};
    // `name in strategy, rest...`
    (@cfg($cfg:expr) @name($name:ident) @body($body:block) @bindings($($b:tt)*)
     $pat:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_body! {
            @cfg($cfg) @name($name) @body($body) @bindings($($b)* ($pat, $strat)) $($rest)*
        }
    };
    // `name in strategy` (final, no trailing comma)
    (@cfg($cfg:expr) @name($name:ident) @body($body:block) @bindings($($b:tt)*)
     $pat:ident in $strat:expr) => {
        $crate::__proptest_body! {
            @cfg($cfg) @name($name) @body($body) @bindings($($b)* ($pat, $strat))
        }
    };
    // `name: Type, rest...`
    (@cfg($cfg:expr) @name($name:ident) @body($body:block) @bindings($($b:tt)*)
     $pat:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_body! {
            @cfg($cfg) @name($name) @body($body)
            @bindings($($b)* ($pat, $crate::strategy::any::<$ty>())) $($rest)*
        }
    };
    // `name: Type` (final)
    (@cfg($cfg:expr) @name($name:ident) @body($body:block) @bindings($($b:tt)*)
     $pat:ident : $ty:ty) => {
        $crate::__proptest_body! {
            @cfg($cfg) @name($name) @body($body)
            @bindings($($b)* ($pat, $crate::strategy::any::<$ty>()))
        }
    };
}

/// Picks one of the listed strategies uniformly at random. All arms
/// must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current case when both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Skips the current case (without failing) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
