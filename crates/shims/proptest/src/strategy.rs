//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::fmt::Debug;
use std::sync::Arc;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the RNG.
pub trait Strategy: Sized {
    /// The type of generated values.
    type Value: Clone + Debug + 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Clone + Debug + 'static,
        F: Fn(Self::Value) -> R,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves and
    /// `recurse` wraps an inner strategy into composite values, nested
    /// up to `depth` levels. `desired_size` and `expected_branch_size`
    /// are accepted for API compatibility and unused (no value trees
    /// here to budget).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            // Each level keeps a 50% chance of stopping at the
            // shallower strategy so every depth (including bare
            // leaves) stays reachable.
            let deeper = recurse(strat.clone()).boxed();
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy {
            gen: Arc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
        }
    }
}

impl<T: Clone + Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// A strategy that always yields the same value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, R, F> Strategy for Map<S, F>
where
    S: Strategy,
    R: Clone + Debug + 'static,
    F: Fn(S::Value) -> R,
{
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between several strategies; what [`prop_oneof!`]
/// builds.
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Clone + Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.rng.random_range(0..self.arms.len());
        self.arms[k].generate(rng)
    }
}

/// The result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, lo: usize, hi: usize) -> Self {
        VecStrategy { element, lo, hi }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.random_range(self.lo..=self.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// ---- numeric ranges -------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == u64::MIN && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.next_u64() % (hi - lo + 1)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- string patterns ------------------------------------------------------

/// `&str` acts as a string pattern, as in real proptest. Only the
/// shape the test-suite uses is interpreted: an optional char-class
/// prefix (ignored; printable chars are always produced) followed by a
/// `{lo,hi}` length bound. Unrecognised patterns yield printable
/// strings of length 0..=16.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_length_bounds(self).unwrap_or((0, 16));
        let len = rng.rng.random_range(lo..=hi);
        (0..len).map(|_| random_printable_char(rng)).collect()
    }
}

/// Extracts the `{lo,hi}` suffix of a pattern like `\PC{0,200}`.
fn parse_length_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    if close != pattern.len() - 1 || close <= open {
        return None;
    }
    let body = &pattern[open + 1..close];
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// A printable character: mostly ASCII, with occasional multi-byte
/// code points to stress UTF-8 handling (matching the intent of the
/// `\PC` class — any printable char).
fn random_printable_char(rng: &mut TestRng) -> char {
    match rng.rng.random_range(0..10) {
        0..=7 => char::from(rng.rng.random_range(0x20u8..0x7F)),
        8 => char::from_u32(rng.rng.random_range(0xA1u32..0x250)).unwrap_or('¢'),
        _ => ['λ', 'Ω', '→', '流', '𝕊', 'é', '�'][rng.rng.random_range(0usize..7)],
    }
}

// ---- any ------------------------------------------------------------------

/// Types with a canonical strategy; `any::<T>()`.
pub trait Arbitrary: Clone + Debug + 'static {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// A strategy over any [`Arbitrary`] type.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
