//! The case runner: configuration, RNG and failure reporting.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (`proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite
        // fast while still exploring a useful amount of the space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated inputs violate a `prop_assume!` precondition;
    /// the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

/// The deterministic RNG handed to strategies.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Returns the next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Runs the cases of one property test.
pub struct Runner {
    config: ProptestConfig,
    seed: u64,
    name: &'static str,
}

impl Runner {
    /// Creates a runner for the named test. The test name is folded
    /// into the RNG seed so distinct properties explore distinct
    /// streams while staying deterministic across runs.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Runner { config, seed, name }
    }

    /// Runs cases until `config.cases` have passed. `case` returns the
    /// result plus a rendering of the generated inputs for failure
    /// reports. Panics (failing the enclosing `#[test]`) on the first
    /// failing case.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = self.config.cases.saturating_mul(16).max(1024);
        let mut index = 0u64;
        while passed < self.config.cases {
            let mut rng = TestRng {
                rng: StdRng::seed_from_u64(self.seed.wrapping_add(index)),
            };
            index += 1;
            let (result, inputs) = case(&mut rng);
            match result {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "property `{}` rejected too many cases ({rejected}); \
                             weaken the prop_assume! conditions",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "property `{}` failed at case #{index}: {reason}\n  inputs: {inputs}",
                        self.name
                    );
                }
            }
        }
    }
}
