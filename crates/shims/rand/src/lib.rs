//! Offline stand-in for the `rand` crate.
//!
//! Provides the API slice the TPC-H data generator uses: a seedable
//! deterministic RNG ([`rngs::StdRng`]) and uniform range sampling via
//! [`RngExt::random_range`]. The generator is xoshiro256** seeded
//! through SplitMix64 — high-quality, deterministic across platforms,
//! and entirely dependency-free.
//!
//! The numbers drawn differ from the real `rand` crate's StdRng (a
//! different algorithm), which is fine: every consumer in this
//! workspace treats the data as *synthetic but deterministic*, never
//! as a golden sequence.

/// Core RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed; rand's `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations; rand's `rand::rngs`.
pub mod rngs {
    /// A deterministic xoshiro256** generator standing in for rand's
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as xoshiro recommends.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A type from which a uniform value can be drawn within a range;
/// rand's `SampleRange` collapsed to what the workspace needs.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

/// Convenience sampling methods on any [`RngCore`]; the `random_range`
/// half of rand's `Rng`.
pub trait RngExt: RngCore {
    /// Draws a uniform value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Draws a uniform `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0i64..1_000_000),
                b.random_range(0i64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(1i64..=50);
            assert!((1..=50).contains(&v));
            let w = rng.random_range(-10i32..10);
            assert!((-10..10).contains(&w));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..16).map(|_| a.random_range(0i64..1_000_000)).collect();
        let vb: Vec<i64> = (0..16).map(|_| b.random_range(0i64..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
