//! Codegen throughput: Tydi-IR → netlist lowering and netlist →
//! text emission, sequential vs parallel, VHDL vs SystemVerilog.
//!
//! The fixture is the template-scaling design (N distinct constant
//! sources), which produces one behavioral module per instantiation
//! plus the structural top — enough modules for the per-module
//! fan-out to matter. Besides timing, the bench asserts cross-backend
//! parity (same file count, structurally clean output from one shared
//! lowering), so a backend regression fails the bench-smoke CI job
//! rather than just printing slower numbers.
//!
//! The seq/par comparison is meaningful on multi-core hosts only: on
//! a single-core machine the rayon shim falls back to sequential
//! execution and `par` merely measures the fallback overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tydi_bench::compile_scaling;
use tydi_rtl::check::check_verilog;
use tydi_rtl::{emitter_for, Backend};
use tydi_vhdl::check::check_vhdl;
use tydi_vhdl::{lower_project, BuiltinRegistry, VhdlOptions};

const MODULES: usize = 256;

/// Runs `f` with the rayon shim forced sequential (`TYDI_THREADS=1`).
fn sequential<R>(f: impl FnOnce() -> R) -> R {
    std::env::set_var("TYDI_THREADS", "1");
    let result = f();
    std::env::remove_var("TYDI_THREADS");
    result
}

fn registry() -> BuiltinRegistry {
    tydi_stdlib::full_registry()
}

fn assert_parity(project: &tydi_ir::Project, registry: &BuiltinRegistry) {
    let netlist = lower_project(project, registry, &VhdlOptions::default()).expect("lowering");
    let vhdl = emitter_for(Backend::Vhdl)
        .emit_netlist(&netlist)
        .expect("vhdl emission");
    let sv = emitter_for(Backend::SystemVerilog)
        .emit_netlist(&netlist)
        .expect("verilog emission");
    assert_eq!(vhdl.len(), sv.len(), "backends diverged on file count");
    assert_eq!(vhdl.len(), netlist.modules.len());
    for f in &vhdl {
        let issues = check_vhdl(&f.contents);
        assert!(issues.is_empty(), "{}: {issues:?}", f.name);
    }
    for f in &sv {
        let issues = check_verilog(&f.contents);
        assert!(issues.is_empty(), "{}: {issues:?}", f.name);
    }
}

fn print_throughput_summary(project: &tydi_ir::Project, registry: &BuiltinRegistry) {
    let netlist = lower_project(project, registry, &VhdlOptions::default()).expect("lowering");
    println!("\n====== codegen fixture ({MODULES} const sources) ======");
    println!("modules: {}", netlist.modules.len());
    for backend in Backend::ALL {
        let files = emitter_for(backend).emit_netlist(&netlist).expect("emit");
        let loc: usize = files
            .iter()
            .map(|f| tydi_vhdl::count_loc(&f.contents))
            .sum();
        println!("{backend}: {} file(s), {loc} LoC", files.len());
    }
    println!("=======================================================\n");
}

fn bench(c: &mut Criterion) {
    let compiled = compile_scaling(MODULES);
    let registry = registry();
    assert_parity(&compiled.project, &registry);
    print_throughput_summary(&compiled.project, &registry);
    let netlist =
        lower_project(&compiled.project, &registry, &VhdlOptions::default()).expect("lowering");

    // Machine-readable snapshot: lowering + per-backend emission wall
    // times (best-of-3) for the PR-over-PR perf trajectory.
    let best_of = |n: usize, f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..n {
            let t0 = std::time::Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best * 1e3
    };
    let mut report = tydi_bench::BenchReport::new("codegen")
        .text("units", "ms (best-of-3)")
        .metric("modules", netlist.modules.len() as f64);
    report.add_metric(
        "lower_ms",
        best_of(3, &mut || {
            black_box(
                lower_project(&compiled.project, &registry, &VhdlOptions::default())
                    .expect("lowering")
                    .modules
                    .len(),
            );
        }),
    );
    for backend in Backend::ALL {
        let emitter = emitter_for(backend);
        let key = format!("emit_ms_{backend}").to_lowercase();
        report.add_metric(
            key,
            best_of(3, &mut || {
                black_box(emitter.emit_netlist(&netlist).expect("emit").len());
            }),
        );
    }
    report.write().expect("write BENCH_codegen.json");

    let mut group = c.benchmark_group("codegen");
    group.sample_size(20);
    group.bench_function("lower/seq", |b| {
        b.iter(|| {
            sequential(|| {
                let n = lower_project(
                    black_box(&compiled.project),
                    &registry,
                    &VhdlOptions::default(),
                )
                .expect("lowering");
                black_box(n.modules.len())
            })
        });
    });
    group.bench_function("lower/par", |b| {
        b.iter(|| {
            let n = lower_project(
                black_box(&compiled.project),
                &registry,
                &VhdlOptions::default(),
            )
            .expect("lowering");
            black_box(n.modules.len())
        });
    });
    for backend in Backend::ALL {
        let emitter = emitter_for(backend);
        group.bench_function(format!("emit/{backend}/seq"), |b| {
            b.iter(|| {
                sequential(|| {
                    let files = emitter.emit_netlist(black_box(&netlist)).expect("emit");
                    black_box(files.len())
                })
            });
        });
        group.bench_function(format!("emit/{backend}/par"), |b| {
            b.iter(|| {
                let files = emitter.emit_netlist(black_box(&netlist)).expect("emit");
                black_box(files.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
