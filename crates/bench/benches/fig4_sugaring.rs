//! Regenerates **Fig. 4** of the paper: automatic duplicator and
//! voider insertion, quantified on TPC-H 1 (the paper's Table IV rows
//! "TPC-H 1" vs "TPC-H 1 (without sugaring)").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tydi_tpch::{all_queries, GenOptions, TpchData};

fn print_comparison(data: &TpchData) {
    let cases = all_queries(data);
    let sugared = cases.iter().find(|c| c.id == "q1").unwrap();
    let desugared = cases.iter().find(|c| c.id == "q1_nosugar").unwrap();
    let out_sugared = sugared.compile().expect("q1");
    let out_desugared = desugared.compile().expect("q1_nosugar");

    println!("\n========== Fig. 4: sugaring on TPC-H 1 ==========");
    println!("{:<34} {:>10} {:>14}", "", "sugared", "hand-written");
    println!(
        "{:<34} {:>10} {:>14}",
        "query-logic LoC",
        sugared.query_loc(),
        desugared.query_loc()
    );
    println!(
        "{:<34} {:>10} {:>14}",
        "duplicators (inferred / explicit)", out_sugared.sugar_report.duplicators, "in source"
    );
    println!(
        "{:<34} {:>10} {:>14}",
        "voiders (inferred / explicit)", out_sugared.sugar_report.voiders, "in source"
    );
    println!(
        "{:<34} {:>10} {:>14}",
        "IR connections",
        out_sugared.project.stats().connections,
        out_desugared.project.stats().connections
    );
    println!(
        "Paper reference: 402 LoC without sugaring vs 284 with (1.41x);\n\
         measured query-logic ratio here: {:.2}x",
        desugared.query_loc() as f64 / sugared.query_loc() as f64
    );
    println!("==================================================\n");
}

fn bench(c: &mut Criterion) {
    let data = TpchData::generate(GenOptions { rows: 64, seed: 4 });
    print_comparison(&data);

    let cases = all_queries(&data);
    let mut group = c.benchmark_group("fig4_sugaring");
    group.sample_size(20);
    for id in ["q1", "q1_nosugar"] {
        let case = cases.iter().find(|c| c.id == id).unwrap().clone();
        group.bench_function(format!("compile/{id}"), |b| {
            b.iter(|| black_box(&case).compile().expect("compile").sugar_report);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
