//! Package-parallel elaboration: the frontend's middle stages
//! (elaborate → sugar → DRC) fanned out across the import DAG of a
//! 17-package synthetic project (see
//! [`tydi_bench::package_dag_sources`]), measured at 1/2/4/8 worker
//! threads.
//!
//! The hard guarantee is *byte-identity*: the sharded type store
//! assigns deterministic ids, so the emitted IR text must not change
//! with the thread count — the bench asserts it on every leg. The
//! wall-clock speedup is recorded honestly alongside the machine's
//! core count: on a single-core container the 8-thread leg measures
//! pure overhead (expect ~1.0x or slightly below), so the ≥ 2x
//! scaling assertion only arms when the machine can actually run 8
//! workers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tydi_bench::{compile_package_dag, package_dag_sources};

const WIDTH: usize = 10;

/// Best-of-N wall time of the middle stages (elaborate + sugar + DRC)
/// at a given `TYDI_THREADS`, plus the canonical IR text of the last
/// run for the byte-identity check.
fn time_middle(threads: &str) -> (f64, String, usize) {
    std::env::set_var("TYDI_THREADS", threads);
    let mut best = f64::INFINITY;
    let mut text = String::new();
    let mut contention = 0;
    for _ in 0..5 {
        let t0 = Instant::now();
        let (output, ir) = compile_package_dag(WIDTH);
        let middle = output.timings.elaborate + output.timings.sugar + output.timings.drc;
        // Prefer the pipeline's own stage clock; fall back to the
        // whole-compile wall time if a stage rounds to zero.
        let measured = if middle.as_nanos() > 0 {
            middle.as_secs_f64()
        } else {
            t0.elapsed().as_secs_f64()
        };
        best = best.min(measured);
        contention = output.elab_info.type_store.shard_contention;
        text = ir;
    }
    std::env::remove_var("TYDI_THREADS");
    (best, text, contention)
}

fn print_comparison(report: &mut tydi_bench::BenchReport) {
    let packages = package_dag_sources(WIDTH).len();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("===== package-parallel elaborate+sugar+DRC ({packages} packages) =====");
    println!(
        "{:>8} {:>12} {:>9} {:>12}",
        "threads", "middle", "vs 1t", "contention"
    );
    report.add_metric("packages", packages as f64);
    report.add_metric("cores", cores as f64);
    let mut base = 0.0f64;
    let mut base_text = String::new();
    let mut speedup_8 = 1.0f64;
    for threads in [1usize, 2, 4, 8] {
        let (secs, text, contention) = time_middle(&threads.to_string());
        if threads == 1 {
            base = secs;
            base_text = text;
        } else {
            assert_eq!(
                base_text, text,
                "IR text changed between 1 and {threads} thread(s) — type-id determinism broke"
            );
        }
        let speedup = base / secs;
        if threads == 8 {
            speedup_8 = speedup;
        }
        println!(
            "{threads:>8} {:>10.3}ms {:>8.2}x {:>12}",
            secs * 1e3,
            speedup,
            contention
        );
        report.add_metric(format!("middle_ms_{threads}t"), secs * 1e3);
        report.add_metric(format!("speedup_{threads}t"), speedup);
    }
    println!("  output byte-identical across 1/2/4/8 threads ({cores} hardware thread(s))");
    println!("================================================================\n");
    report.add_metric("headline_speedup_8t", speedup_8);
    if cores >= 8 {
        assert!(
            speedup_8 >= 2.0,
            "8-thread elaboration below 2x on an {cores}-core machine ({speedup_8:.2}x)"
        );
    } else {
        println!(
            "(scaling assertion skipped: {cores} hardware thread(s) cannot run 8 workers; \
             byte-identity was still enforced)"
        );
    }
}

fn bench(c: &mut Criterion) {
    let mut report = tydi_bench::BenchReport::new("elab_parallel")
        .text("units", "ms (best-of-5, elaborate+sugar+drc self time)");
    print_comparison(&mut report);
    report.write().expect("write BENCH_elab_parallel.json");

    let mut group = c.benchmark_group("elab_parallel");
    group.sample_size(10);
    for threads in ["1", "8"] {
        group.bench_function(format!("{threads}thread"), |b| {
            std::env::set_var("TYDI_THREADS", threads);
            b.iter(|| black_box(compile_package_dag(WIDTH)));
            std::env::remove_var("TYDI_THREADS");
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
