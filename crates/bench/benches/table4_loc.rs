//! Regenerates **Table IV** of the paper: lines of code for
//! translating TPC-H queries to Tydi-lang vs. the generated VHDL,
//! with the ratios `Rq = LoCvhdl/LoCq` and `Ra = LoCvhdl/LoCa`.
//!
//! The table itself is printed once at startup; Criterion then
//! measures the full query-to-VHDL compilation time per query (the
//! cost of regenerating one table cell).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tydi_tpch::{all_queries, render_table4, table4, GenOptions, TpchData};

fn print_table(data: &TpchData) {
    let rows = table4(data).expect("Table IV regeneration");
    println!("\n================ Table IV (regenerated) ================");
    println!("{}", render_table4(&rows));
    println!(
        "Paper reference shape: Rq 18.8-42.5, Ra 10.5-19.1; desugared Q1\n\
         total larger than sugared Q1 (402 vs 284 LoC of Tydi-lang)."
    );
    println!("=========================================================\n");
}

fn bench(c: &mut Criterion) {
    let data = TpchData::generate(GenOptions { rows: 64, seed: 4 });
    print_table(&data);

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    for case in all_queries(&data) {
        group.bench_function(format!("compile_to_vhdl/{}", case.id), |b| {
            b.iter(|| {
                let row = tydi_tpch::table4::measure(black_box(&case)).expect("measure");
                black_box(row.loc_vhdl)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
