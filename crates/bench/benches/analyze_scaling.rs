//! Static analysis versus simulation: what a throughput question
//! costs when asked of `tydi-analyze` instead of `tydi-sim`.
//!
//! The fixture is the paper's parallelize design (section IV-B) swept
//! over channel counts: the flattened graph grows linearly with the
//! channel count while a simulation campaign additionally pays per
//! packet per cycle. The analyzer answers the same question — the
//! sustained elements-per-cycle of the output — from one fixpoint
//! over the flattened graph.
//!
//! The bench **asserts** (so bench-smoke CI fails on regression):
//!
//! * the static bound dominates the simulator's measured throughput
//!   at every size (soundness of the differential contract);
//! * at every size the analysis is >= 10x faster than the simulation
//!   campaign `tydic sim` runs by default (a 4-scenario batch with
//!   backpressure schedules over 128 packets) — the analyzer's reason
//!   to exist: the answer must come qualitatively cheaper than the
//!   experiment.
//!
//! Results are written to `BENCH_analyze.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tydi_analyze::{analyze, AnalyzeOptions};
use tydi_bench::{
    compile_parallelize, parallelize_batch_scenarios, run_parallelize_batch, simulate_parallelize,
    BenchReport,
};
use tydi_sim::BehaviorRegistry;

const DELAY: u64 = 8;
const PACKETS: u64 = 128;
const CHANNELS: &[usize] = &[1, 4, 8, 16];
/// Required advantage of the fixpoint over one simulation run.
const MIN_SPEEDUP: f64 = 10.0;

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut value = f();
    for _ in 0..runs {
        let t0 = Instant::now();
        value = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, value)
}

fn print_comparison(report: &mut BenchReport) {
    println!("\n===== analyze vs simulate (parallelize, delay = {DELAY}) =====");
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>11} {:>11}",
        "channel", "analyze", "simulate", "speedup", "predicted", "measured"
    );
    for &channel in CHANNELS {
        let compiled = compile_parallelize(channel, DELAY);
        let (analyze_s, bounds) = best_of(10, || {
            analyze(
                &compiled.project,
                &compiled.index,
                "top_i",
                &AnalyzeOptions::default(),
            )
            .expect("analyze parallelize")
        });
        let predicted = bounds.output("o").expect("bound for o").elements_per_cycle;
        // The simulation leg is what `tydic sim` actually runs: the
        // default 4-scenario batch (distinct feeds + backpressure
        // schedules) over the same flattened design.
        let registry = BehaviorRegistry::with_std();
        let scenarios = parallelize_batch_scenarios(PACKETS, 4);
        let (sim_s, _) = best_of(3, || {
            run_parallelize_batch(&compiled.project, &registry, &scenarios)
        });
        // Measured throughput comes from the free-running scenario
        // (no backpressure), the one the bound is a promise about.
        let (cycles, delivered) = simulate_parallelize(channel, DELAY, PACKETS);
        let measured = delivered as f64 / cycles.max(1) as f64;
        let speedup = sim_s / analyze_s;
        println!(
            "{channel:>8} {:>10.3}ms {:>10.3}ms {speedup:>8.1}x {predicted:>11.4} {measured:>11.4}",
            analyze_s * 1e3,
            sim_s * 1e3,
        );
        assert!(
            measured <= predicted + 0.02,
            "channel {channel}: measured {measured:.4} elements/cycle exceeds \
             the static bound {predicted:.4} — the analyzer went unsound"
        );
        assert!(
            speedup >= MIN_SPEEDUP,
            "channel {channel}: analyze is only {speedup:.1}x faster than one \
             simulation run (required {MIN_SPEEDUP}x)"
        );
        report.add_metric(format!("analyze_ms_{channel}ch"), analyze_s * 1e3);
        report.add_metric(format!("sim_ms_{channel}ch"), sim_s * 1e3);
        report.add_metric(format!("analyze_speedup_{channel}ch"), speedup);
        report.add_metric(format!("predicted_epc_{channel}ch"), predicted);
        report.add_metric(format!("measured_epc_{channel}ch"), measured);
    }
    println!("==============================================================\n");
}

fn bench(c: &mut Criterion) {
    let mut report = BenchReport::new("analyze").text("units", "ms");
    print_comparison(&mut report);
    report.write().expect("write BENCH_analyze.json");

    // Criterion timings over prebuilt projects, isolating the
    // fixpoint from parsing/elaboration.
    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);
    for &channel in &[4usize, 16] {
        let compiled = compile_parallelize(channel, DELAY);
        group.bench_function(format!("analyze/{channel}ch"), |b| {
            b.iter(|| {
                black_box(
                    analyze(
                        &compiled.project,
                        &compiled.index,
                        "top_i",
                        &AnalyzeOptions::default(),
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
