//! Incremental compilation: cold vs warm vs single-file-dirty
//! recompiles over the whole cookbook.
//!
//! The fixture treats the cookbook as one editing session: every
//! design (plus the implicit standard library) compiles through a
//! shared [`ArtifactCache`], as `tydic check --watch` would drive it.
//! Three schedules are measured:
//!
//! * **cold** — every design compiles from scratch (no cache);
//! * **warm/touch** — recompile with nothing changed: every stage of
//!   every design is served from the cache;
//! * **warm/dirty** — one design receives a fresh structural edit per
//!   iteration (so its elaboration genuinely recomputes every time)
//!   while the other designs reuse everything.
//!
//! Besides timing, the bench **asserts** the incremental contract:
//! warm-after-single-edit must be at least 3x faster than cold, and
//! cached compiles must produce byte-identical VHDL and SystemVerilog
//! to cold compiles — so a cache regression fails the bench-smoke CI
//! job rather than just printing slower numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tydi_lang::{compile, compile_with_cache, ArtifactCache, CompileOptions, CompileOutput};
use tydi_stdlib::{stdlib_source, STDLIB_FILE_NAME};
use tydi_vhdl::{generate_project_for, Backend, BuiltinRegistry, VhdlOptions};

/// The design that receives the single-file edits.
const DIRTY_DESIGN: &str = "03_templates.td";

fn cookbook_designs() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../cookbook");
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cookbook dir {dir:?}: {e}"))
        .filter_map(|e| {
            let name = e.expect("entry").file_name().to_string_lossy().to_string();
            name.ends_with(".td").then_some(name)
        })
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|name| {
            let text = std::fs::read_to_string(dir.join(&name)).expect("read design");
            (name, text)
        })
        .collect()
}

fn compile_design(name: &str, text: &str) -> CompileOutput {
    let sources = [
        (STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()),
        (name.to_string(), text.to_string()),
    ];
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile(&refs, &CompileOptions::default()).unwrap_or_else(|e| panic!("{name}:\n{e}"))
}

fn compile_design_cached(name: &str, text: &str, cache: &mut ArtifactCache) -> CompileOutput {
    let sources = [
        (STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()),
        (name.to_string(), text.to_string()),
    ];
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile_with_cache(&refs, &CompileOptions::default(), cache)
        .unwrap_or_else(|e| panic!("{name} (cached):\n{e}"))
}

/// One full pass over the cookbook, cold. Returns total connections
/// (an output-dependent value so the work cannot be optimized away).
fn cold_pass(designs: &[(String, String)]) -> usize {
    designs
        .iter()
        .map(|(name, text)| compile_design(name, text).project.stats().connections)
        .sum()
}

/// One full pass through the cache, with `edit` applied to the dirty
/// design.
fn warm_pass(designs: &[(String, String)], cache: &mut ArtifactCache, edit: Option<&str>) -> usize {
    designs
        .iter()
        .map(|(name, text)| {
            let edited;
            let text = match edit {
                Some(suffix) if name == DIRTY_DESIGN => {
                    edited = format!("{text}\n{suffix}\n");
                    &edited
                }
                _ => text,
            };
            compile_design_cached(name, text, cache)
                .project
                .stats()
                .connections
        })
        .sum()
}

fn render(project: &tydi_ir::Project, registry: &BuiltinRegistry, backend: Backend) -> String {
    generate_project_for(project, registry, &VhdlOptions::default(), backend)
        .expect("generation")
        .into_iter()
        .map(|f| format!("{}\n{}", f.name, f.contents))
        .collect()
}

/// Byte-identity of cold vs cached compiles, both backends, every
/// design — the cache must never change what the compiler emits.
fn assert_outputs_identical(designs: &[(String, String)], cache: &mut ArtifactCache) {
    let registry = tydi_stdlib::full_registry();
    tydi_fletcher::register_fletcher_rtl(&registry);
    for (name, text) in designs {
        let cold = compile_design(name, text);
        let cached = compile_design_cached(name, text, cache);
        for backend in Backend::ALL {
            assert_eq!(
                render(&cold.project, &registry, backend),
                render(&cached.project, &registry, backend),
                "{name}/{backend}: cached output drifted from cold compile"
            );
        }
    }
}

/// Best-of-N wall time of `f`.
fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..n {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn bench(c: &mut Criterion) {
    let designs = cookbook_designs();
    assert!(
        designs.iter().any(|(n, _)| n == DIRTY_DESIGN),
        "cookbook must contain {DIRTY_DESIGN}"
    );

    // Correctness gates first: byte-identical outputs cold vs cached.
    let mut cache = ArtifactCache::new();
    warm_pass(&designs, &mut cache, None); // populate
    assert_outputs_identical(&designs, &mut cache);

    // The core incremental claim: a warm recompile after a single-file
    // edit is >= 3x faster than a cold compile of the cookbook.
    let mut edit_serial = 0usize;
    let cold = best_of(3, || cold_pass(&designs));
    let touch = best_of(3, || warm_pass(&designs, &mut cache, None));
    let dirty = best_of(3, || {
        // A fresh structural edit each iteration: the dirty design's
        // elaboration genuinely recomputes instead of replaying the
        // previous iteration's artifact.
        edit_serial += 1;
        let edit = format!("const bench_probe_{edit_serial} : int = {edit_serial};");
        warm_pass(&designs, &mut cache, Some(&edit))
    });
    println!(
        "\n====== incremental compilation (whole cookbook, {} designs) ======",
        designs.len()
    );
    println!("cold compile:            {cold:>12.2?}");
    println!(
        "warm recompile (touch):  {touch:>12.2?}  ({:.1}x)",
        cold.as_secs_f64() / touch.as_secs_f64().max(1e-9)
    );
    println!(
        "warm, single-file edit:  {dirty:>12.2?}  ({:.1}x)",
        cold.as_secs_f64() / dirty.as_secs_f64().max(1e-9)
    );
    println!("==================================================================\n");

    // The artifact-cache load path: the versioned binary `.tirb`
    // decode (interned type table, one parse per distinct type)
    // vs the text `.tir` round-trip it replaced (re-parses every
    // logical type from display form on every warm load).
    let projects: Vec<tydi_ir::Project> = designs
        .iter()
        .map(|(name, text)| compile_design(name, text).project)
        .collect();
    let blobs: Vec<Vec<u8>> = projects
        .iter()
        .map(tydi_ir::binary::encode_project)
        .collect();
    let texts: Vec<String> = projects.iter().map(tydi_ir::text::emit_project).collect();
    let bin_load = best_of(5, || {
        blobs
            .iter()
            .map(|b| {
                tydi_ir::binary::decode_project(b)
                    .expect("decode")
                    .stats()
                    .connections
            })
            .sum::<usize>()
    });
    let txt_load = best_of(5, || {
        texts
            .iter()
            .map(|t| {
                tydi_ir::text::parse_project(t)
                    .expect("parse")
                    .stats()
                    .connections
            })
            .sum::<usize>()
    });
    let bin_bytes: usize = blobs.iter().map(Vec::len).sum();
    let txt_bytes: usize = texts.iter().map(String::len).sum();
    let load_speedup = txt_load.as_secs_f64() / bin_load.as_secs_f64().max(1e-9);
    println!("====== artifact load: binary .tirb vs legacy text .tir ======");
    println!(
        "binary decode: {bin_load:>10.2?} ({bin_bytes} bytes)   text parse: {txt_load:>10.2?} \
         ({txt_bytes} bytes)   speedup {load_speedup:.2}x"
    );
    println!("=============================================================\n");

    tydi_bench::BenchReport::new("incremental")
        .text("units", "ms (best-of-3, whole cookbook)")
        .metric("cold_ms", cold.as_secs_f64() * 1e3)
        .metric("warm_touch_ms", touch.as_secs_f64() * 1e3)
        .metric("warm_dirty_ms", dirty.as_secs_f64() * 1e3)
        .metric(
            "touch_speedup",
            cold.as_secs_f64() / touch.as_secs_f64().max(1e-9),
        )
        .metric(
            "dirty_speedup",
            cold.as_secs_f64() / dirty.as_secs_f64().max(1e-9),
        )
        .metric("artifact_load_binary_ms", bin_load.as_secs_f64() * 1e3)
        .metric("artifact_load_text_ms", txt_load.as_secs_f64() * 1e3)
        .metric("binary_load_speedup", load_speedup)
        .metric("artifact_bytes_binary", bin_bytes as f64)
        .metric("artifact_bytes_text", txt_bytes as f64)
        .write()
        .expect("write BENCH_incremental.json");
    assert!(
        bin_load < txt_load,
        "binary artifact decode must beat the text parse it replaced \
         (binary {bin_load:?}, text {txt_load:?})"
    );
    assert!(
        cold >= dirty * 3,
        "single-file-dirty warm recompile must be >= 3x faster than cold \
         (cold {cold:?}, dirty {dirty:?})"
    );
    assert!(
        touch <= dirty,
        "an all-clean recompile cannot be slower than a dirty one \
         (touch {touch:?}, dirty {dirty:?})"
    );

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.bench_function("cold/full-cookbook", |b| {
        b.iter(|| cold_pass(black_box(&designs)))
    });
    group.bench_function("warm/touch", |b| {
        b.iter(|| warm_pass(black_box(&designs), &mut cache, None))
    });
    group.bench_function("warm/single-file-dirty", |b| {
        b.iter(|| {
            edit_serial += 1;
            let edit = format!("const bench_probe_{edit_serial} : int = {edit_serial};");
            warm_pass(black_box(&designs), &mut cache, Some(&edit))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
