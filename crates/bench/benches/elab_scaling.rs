//! Elaboration scaling: the hash-consed type store versus the frozen
//! seed path.
//!
//! The fixture is the worst case the `TypeStore` was built for: a
//! **deep** nested `Group`/`Union` tree (~2^(depth+1) nodes behind one
//! alias) flowing through a **wide** template sweep — `refs` template
//! references spread over `distinct` distinct argument lists. The seed
//! path pays O(tree) per *reference* (memo keys stringify the whole
//! type tree, declarations deep-clone, port types deep-clone); the
//! hash-consed path pays O(tree) once per *distinct type* and O(1)
//! per reference.
//!
//! The bench **asserts** (so bench-smoke CI fails on regression, not
//! just prints slower numbers):
//!
//! * both elaborators emit byte-identical IR for every size
//!   (differential correctness of the refactor);
//! * template memoisation counts match the closed form
//!   (`hits = refs - distinct`);
//! * at the largest size the hash-consed path is >= 2x faster than
//!   the seed path;
//! * the per-reference cost of *repeated* instantiation stays flat as
//!   the reference count grows 8x.
//!
//! Results are written to `BENCH_elab_scaling.json` at the repo root;
//! the committed copy is the baseline for the CI perf-regression
//! guard (`bench_guard`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};
use tydi_bench::BenchReport;
use tydi_lang::ast::Package;
use tydi_lang::baseline::elaborate_baseline;
use tydi_lang::diagnostics::has_errors;
use tydi_lang::instantiate::{elaborate, ElabInfo};

/// Nesting depth of the type tree: the alias `T` wraps a
/// `Group`/`Union` chain of `2^(DEPTH+1) - 1` nodes in a stream.
const DEPTH: usize = 8;

/// `(refs, distinct)` sweep sizes; the last entry carries the
/// headline assertion.
const SIZES: &[(usize, usize)] = &[(64, 4), (256, 16), (1024, 64)];

/// A program with `refs` template references over `distinct` distinct
/// instantiations, each argument list carrying the deep type.
fn elab_scaling_source(depth: usize, refs: usize, distinct: usize) -> String {
    let mut s = String::from("package scale;\n\ntype L0 = Bit(8);\n");
    for level in 1..=depth {
        // Alternate product and sum nodes; each level doubles the tree.
        let prev = level - 1;
        if level % 2 == 0 {
            let _ = writeln!(s, "Union L{level} {{ u: L{prev}, v: L{prev}, }}");
        } else {
            let _ = writeln!(s, "Group L{level} {{ a: L{prev}, b: L{prev}, }}");
        }
    }
    let _ = writeln!(s, "type T = Stream(L{depth});\n");
    s.push_str("streamlet pass_s<T: type, k: int> { i : T in, o : T out, }\n");
    s.push_str("impl pass_i<T: type, k: int> of pass_s<type T, k> external;\n\n");
    let _ = writeln!(
        s,
        "streamlet top_s {{ i : T in [{refs}], o : T out [{refs}], }}"
    );
    s.push_str("impl top_i of top_s {\n");
    let _ = writeln!(s, "    for r in (0..{refs}) {{");
    let _ = writeln!(s, "        instance u(pass_i<type T, r % {distinct}>),");
    s.push_str("        i[r] => u.i,\n        u.o => o[r],\n    }\n}\n");
    s
}

fn parse_scaling(refs: usize, distinct: usize) -> Vec<Package> {
    let source = elab_scaling_source(DEPTH, refs, distinct);
    let (package, diags) = tydi_lang::parser::parse_package(0, &source);
    assert!(!has_errors(&diags), "parse errors: {diags:?}");
    vec![package.expect("package")]
}

/// Best-of-N wall time of one elaboration path; package clones are
/// prepared outside the timed region so both paths pay identical
/// setup.
fn time_elab<R>(
    packages: &[Package],
    iters: usize,
    mut run: impl FnMut(Vec<Package>) -> R,
) -> Duration {
    let mut pool: Vec<Vec<Package>> = (0..iters).map(|_| packages.to_vec()).collect();
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let input = pool.pop().expect("pool sized to iters");
        let t0 = Instant::now();
        black_box(run(input));
        best = best.min(t0.elapsed());
    }
    best
}

fn run_new(packages: Vec<Package>) -> (tydi_ir::Project, ElabInfo) {
    let (project, info, diags) = elaborate(packages, "bench");
    assert!(!has_errors(&diags), "elaboration errors: {diags:?}");
    (project, info)
}

fn run_seed(packages: Vec<Package>) -> (tydi_ir::Project, ElabInfo) {
    let (project, info, diags) = elaborate_baseline(packages, "bench");
    assert!(
        !has_errors(&diags),
        "baseline elaboration errors: {diags:?}"
    );
    (project, info)
}

fn bench(c: &mut Criterion) {
    let mut report = BenchReport::new("elab_scaling")
        .text("units", "ms (best-of-N wall time, elaborate stage only)")
        .metric("depth", DEPTH as f64);

    println!("\n===== elaboration scaling: hash-consed vs seed path =====");
    println!(
        "{:>6} {:>9} {:>14} {:>14} {:>9}",
        "refs", "distinct", "seed(ms)", "hashcons(ms)", "speedup"
    );
    let mut headline_speedup = 0.0;
    for &(refs, distinct) in SIZES {
        let packages = parse_scaling(refs, distinct);

        // Differential gate: both elaborators must emit identical IR
        // and identical template statistics.
        let (new_project, new_info) = run_new(packages.clone());
        let (seed_project, seed_info) = run_seed(packages.clone());
        assert_eq!(
            tydi_ir::text::emit_project(&new_project),
            tydi_ir::text::emit_project(&seed_project),
            "hash-consed elaboration drifted from the seed path at refs={refs}"
        );
        assert_eq!(
            new_info.template_instantiations,
            seed_info.template_instantiations
        );
        assert_eq!(new_info.template_cache_hits, seed_info.template_cache_hits);
        // Closed form: one miss per distinct list (impl + streamlet),
        // one hit for every repeated reference, plus `top_i` hitting
        // the already-elaborated concrete `top_s`.
        assert_eq!(new_info.template_instantiations, 2 * distinct);
        assert_eq!(new_info.template_cache_hits, refs - distinct + 1);
        assert_eq!(new_project.validate(), Ok(()));

        let iters = if refs >= 1024 { 3 } else { 5 };
        let seed = time_elab(&packages, iters, run_seed);
        let new = time_elab(&packages, iters, run_new);
        let speedup = seed.as_secs_f64() / new.as_secs_f64().max(1e-9);
        println!(
            "{refs:>6} {distinct:>9} {:>14.2} {:>14.2} {speedup:>8.1}x",
            seed.as_secs_f64() * 1e3,
            new.as_secs_f64() * 1e3
        );
        report = report
            .metric(format!("seed_ms_{refs}"), seed.as_secs_f64() * 1e3)
            .metric(format!("hashcons_ms_{refs}"), new.as_secs_f64() * 1e3)
            .metric(format!("speedup_{refs}"), speedup);
        headline_speedup = speedup;
    }
    let (refs_max, _) = *SIZES.last().expect("sizes");
    println!("headline (refs={refs_max}): {headline_speedup:.1}x");

    // Flat per-reference cost: all references hit ONE memoised
    // instantiation; growing the reference count 8x must not grow the
    // per-reference cost (generous 3x bound for wall-clock noise —
    // amortised instantiation cost makes the small size *more*
    // expensive per reference, not less).
    let small_refs = 128;
    let large_refs = 1024;
    let small = time_elab(&parse_scaling(small_refs, 1), 5, run_new);
    let large = time_elab(&parse_scaling(large_refs, 1), 3, run_new);
    let per_ref_small = small.as_secs_f64() / small_refs as f64;
    let per_ref_large = large.as_secs_f64() / large_refs as f64;
    println!(
        "repeated instantiation: {:.2}us/ref at {small_refs} refs, {:.2}us/ref at {large_refs} refs",
        per_ref_small * 1e6,
        per_ref_large * 1e6
    );
    report = report
        .metric("repeat_per_ref_us_small", per_ref_small * 1e6)
        .metric("repeat_per_ref_us_large", per_ref_large * 1e6)
        .metric("headline_speedup", headline_speedup);
    println!("=========================================================\n");

    assert!(
        headline_speedup >= 2.0,
        "hash-consed elaboration must be >= 2x faster than the seed path \
         at refs={refs_max} (measured {headline_speedup:.2}x)"
    );
    assert!(
        per_ref_large <= per_ref_small * 3.0,
        "per-reference cost must stay flat for repeated instantiations \
         ({:.2}us -> {:.2}us per ref)",
        per_ref_small * 1e6,
        per_ref_large * 1e6
    );

    report.write().expect("write BENCH_elab_scaling.json");

    let mut group = c.benchmark_group("elab_scaling");
    group.sample_size(10);
    for &(refs, distinct) in &[(64usize, 4usize), (1024, 64)] {
        let packages = parse_scaling(refs, distinct);
        group.bench_function(format!("hashcons/{refs}"), |b| {
            b.iter(|| run_new(black_box(packages.clone())))
        });
        group.bench_function(format!("seed/{refs}"), |b| {
            b.iter(|| run_seed(black_box(packages.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
