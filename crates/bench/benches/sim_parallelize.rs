//! Regenerates the **§IV-B / §V claim**: a processing unit with an
//! 8-cycle delay reaches one packet per cycle when parallelized over
//! 8 channels with the `parallelize` template; the simulator's
//! bottleneck report names the congested ports while the design is
//! under-provisioned.
//!
//! On top of the paper's sweep, this bench compares the simulator's
//! two cycle loops — the original poll-everything loop and the
//! event-driven ready-set scheduler — on dense and sparse/bursty
//! stimulus, and a 4-scenario `SimBatch` run sequentially vs sharded
//! over 4 threads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tydi_bench::{
    compile_parallelize, parallelize_batch_scenarios, run_parallelize_batch, run_parallelize_sim,
    simulate_parallelize,
};
use tydi_sim::{BehaviorRegistry, Packet, SchedulerKind, Simulator};

const DELAY: u64 = 8;
const PACKETS: u64 = 128;

fn print_sweep() {
    println!("\n===== parallelize_i throughput sweep (delay = {DELAY}) =====");
    println!(
        "{:>8} {:>10} {:>12} {:>16}",
        "channel", "cycles", "packets/cyc", "speedup vs 1"
    );
    let mut base = 0.0f64;
    for channel in [1usize, 2, 4, 8, 16] {
        let (cycles, delivered) = simulate_parallelize(channel, DELAY, PACKETS);
        assert_eq!(delivered, PACKETS, "channel {channel} lost packets");
        let throughput = delivered as f64 / cycles as f64;
        if channel == 1 {
            base = throughput;
        }
        println!(
            "{channel:>8} {cycles:>10} {throughput:>12.4} {:>15.2}x",
            throughput / base
        );
    }
    println!(
        "Expected shape: throughput ~ min(channel/{DELAY}, mux limit), saturating\n\
         around {DELAY} channels (paper section IV-B: \"achieving 1 data/cycle\")."
    );

    // Bottleneck analysis (paper §V-B): with 2 channels the demux's
    // outputs block on the busy processing units.
    let compiled = compile_parallelize(2, DELAY);
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&compiled.project, "top_i", &registry).unwrap();
    sim.feed("i", (0..PACKETS as i64).map(Packet::data))
        .unwrap();
    sim.run(PACKETS * (DELAY + 4) * 4);
    let report = sim.bottlenecks();
    println!("\nBottleneck report at channel = 2:");
    print!("{report}");
    println!("===========================================================\n");
}

/// Wall-clock comparison of the two cycle loops. Dense stimulus (no
/// stall, every unit busy) checks the worklist adds no overhead;
/// sparse/bursty stimulus (a few packets trickling through a wide
/// design whose probe accepts every 32nd cycle) is where skipping
/// inert cycles and idle components must win clearly.
fn print_scheduler_comparison(report: &mut tydi_bench::BenchReport) {
    println!("===== polling vs event-driven scheduler =====");
    println!(
        "{:>16} {:>12} {:>12} {:>9}",
        "stimulus", "polling", "event", "speedup"
    );
    for (label, channel, stall, packets) in [
        ("dense/8ch", 8usize, 1u64, PACKETS),
        ("sparse/16ch x32", 16, 32, 16),
    ] {
        let compiled = compile_parallelize(channel, DELAY);
        let registry = BehaviorRegistry::with_std();
        let time = |kind: SchedulerKind| {
            // Warm-up + best-of-4 to steady the figure.
            let mut best = f64::INFINITY;
            let mut result = (0, 0);
            for _ in 0..4 {
                let t0 = Instant::now();
                result =
                    run_parallelize_sim(&compiled.project, &registry, kind, stall, DELAY, packets);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            (best, result)
        };
        let (poll_s, poll_r) = time(SchedulerKind::Polling);
        let (event_s, event_r) = time(SchedulerKind::EventDriven);
        assert_eq!(
            poll_r, event_r,
            "schedulers disagree on {label}: {poll_r:?} vs {event_r:?}"
        );
        println!(
            "{label:>16} {:>10.3}ms {:>10.3}ms {:>8.2}x",
            poll_s * 1e3,
            event_s * 1e3,
            poll_s / event_s
        );
        let key = label.split('/').next().unwrap_or(label);
        report.add_metric(format!("polling_ms_{key}"), poll_s * 1e3);
        report.add_metric(format!("event_ms_{key}"), event_s * 1e3);
        report.add_metric(format!("event_speedup_{key}"), poll_s / event_s);
    }
    println!("=============================================\n");
}

/// Wall-clock comparison of a 4-scenario batch run sequentially
/// (`TYDI_THREADS=1`) vs sharded over the machine's pool.
///
/// `batch_speedup` compares sequential against a pool of
/// `min(4, cores)` workers — the configuration `SimBatch` actually
/// uses — so it must never drop below 1.0 now that the batch flattens
/// the design once and steals scenarios off a shared counter (the old
/// recursive-join + flatten-per-scenario sharding recorded 0.31x). On
/// a single-core host the pool degenerates to the sequential
/// configuration, so the ratio is parity by construction and the
/// interesting number is `batch_oversubscribed_speedup`: an explicit
/// `TYDI_THREADS=4` run, which measures how much pure thread overhead
/// costs when the machine cannot parallelize at all.
fn print_batch_comparison(report: &mut tydi_bench::BenchReport) {
    println!("===== SimBatch: sequential vs sharded pool =====");
    let compiled = compile_parallelize(4, DELAY);
    let registry = BehaviorRegistry::with_std();
    let scenarios = parallelize_batch_scenarios(PACKETS, 4);
    let time = |threads: &str| {
        std::env::set_var("TYDI_THREADS", threads);
        let mut best = f64::INFINITY;
        let mut delivered = 0;
        for _ in 0..6 {
            let t0 = Instant::now();
            delivered = run_parallelize_batch(&compiled.project, &registry, &scenarios);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        std::env::remove_var("TYDI_THREADS");
        (best, delivered)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = cores.min(4);
    let (seq_s, seq_n) = time("1");
    let (over_s, over_n) = time("4");
    assert_eq!(seq_n, over_n, "thread count changed delivered packets");
    let (pool_s, speedup) = if pool > 1 {
        let (pool_s, pool_n) = time(&pool.to_string());
        assert_eq!(seq_n, pool_n, "thread count changed delivered packets");
        (pool_s, seq_s / pool_s)
    } else {
        // One hardware thread: the pool-sized run is the sequential
        // configuration, so the ratio is 1.0 by construction rather
        // than a re-measurement of timer noise.
        (seq_s, 1.0)
    };
    println!(
        "  sequential: {:>8.3}ms   pool({pool}): {:>8.3}ms   speedup {:>5.2}x  ({} packets)",
        seq_s * 1e3,
        pool_s * 1e3,
        speedup,
        seq_n
    );
    println!(
        "  oversubscribed TYDI_THREADS=4: {:>8.3}ms ({:>5.2}x; {cores} hardware thread(s))",
        over_s * 1e3,
        seq_s / over_s
    );
    println!("=============================================\n");
    report.add_metric("cores", cores as f64);
    report.add_metric("batch_sequential_ms", seq_s * 1e3);
    report.add_metric("batch_pool_ms", pool_s * 1e3);
    report.add_metric("batch_4threads_ms", over_s * 1e3);
    report.add_metric("batch_oversubscribed_speedup", seq_s / over_s);
    report.add_metric("batch_speedup", speedup);
    assert!(
        speedup >= 1.0,
        "sharded batch lost to sequential ({speedup:.2}x) — flatten-once + work-stealing regressed"
    );
    assert!(
        seq_s / over_s >= 0.6,
        "oversubscribed batch fell below 0.6x of sequential — thread overhead regressed toward the old 0.31x"
    );
}

fn bench(c: &mut Criterion) {
    print_sweep();
    let mut report = tydi_bench::BenchReport::new("sim_parallelize").text("units", "ms");
    print_scheduler_comparison(&mut report);
    print_batch_comparison(&mut report);
    report.write().expect("write BENCH_sim_parallelize.json");

    let mut group = c.benchmark_group("sim_parallelize");
    group.sample_size(10);
    for channel in [1usize, 4, 8] {
        group.bench_function(format!("simulate/{channel}ch"), |b| {
            b.iter(|| black_box(simulate_parallelize(channel, DELAY, 64)));
        });
    }
    group.finish();

    // Scheduler comparison over a prebuilt project, so the timings
    // isolate the cycle loop from parsing/elaboration.
    let dense = compile_parallelize(8, DELAY);
    let sparse = compile_parallelize(16, DELAY);
    let registry = BehaviorRegistry::with_std();
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    for (label, compiled, stall, packets) in
        [("dense", &dense, 1u64, 64u64), ("sparse", &sparse, 32, 16)]
    {
        for (kind_label, kind) in [
            ("polling", SchedulerKind::Polling),
            ("event", SchedulerKind::EventDriven),
        ] {
            group.bench_function(format!("{label}/{kind_label}"), |b| {
                b.iter(|| {
                    black_box(run_parallelize_sim(
                        &compiled.project,
                        &registry,
                        kind,
                        stall,
                        DELAY,
                        packets,
                    ))
                });
            });
        }
    }
    group.finish();

    let batch_project = compile_parallelize(4, DELAY);
    let scenarios = parallelize_batch_scenarios(64, 4);
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    for threads in ["1", "4"] {
        group.bench_function(format!("{threads}thread"), |b| {
            std::env::set_var("TYDI_THREADS", threads);
            b.iter(|| {
                black_box(run_parallelize_batch(
                    &batch_project.project,
                    &registry,
                    &scenarios,
                ))
            });
            std::env::remove_var("TYDI_THREADS");
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
