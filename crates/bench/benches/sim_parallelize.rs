//! Regenerates the **§IV-B / §V claim**: a processing unit with an
//! 8-cycle delay reaches one packet per cycle when parallelized over
//! 8 channels with the `parallelize` template; the simulator's
//! bottleneck report names the congested ports while the design is
//! under-provisioned.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tydi_bench::{compile_parallelize, simulate_parallelize};
use tydi_sim::{BehaviorRegistry, Packet, Simulator};

const DELAY: u64 = 8;
const PACKETS: u64 = 128;

fn print_sweep() {
    println!("\n===== parallelize_i throughput sweep (delay = {DELAY}) =====");
    println!(
        "{:>8} {:>10} {:>12} {:>16}",
        "channel", "cycles", "packets/cyc", "speedup vs 1"
    );
    let mut base = 0.0f64;
    for channel in [1usize, 2, 4, 8, 16] {
        let (cycles, delivered) = simulate_parallelize(channel, DELAY, PACKETS);
        assert_eq!(delivered, PACKETS, "channel {channel} lost packets");
        let throughput = delivered as f64 / cycles as f64;
        if channel == 1 {
            base = throughput;
        }
        println!(
            "{channel:>8} {cycles:>10} {throughput:>12.4} {:>15.2}x",
            throughput / base
        );
    }
    println!(
        "Expected shape: throughput ~ min(channel/{DELAY}, mux limit), saturating\n\
         around {DELAY} channels (paper section IV-B: \"achieving 1 data/cycle\")."
    );

    // Bottleneck analysis (paper §V-B): with 2 channels the demux's
    // outputs block on the busy processing units.
    let compiled = compile_parallelize(2, DELAY);
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&compiled.project, "top_i", &registry).unwrap();
    sim.feed("i", (0..PACKETS as i64).map(Packet::data))
        .unwrap();
    sim.run(PACKETS * (DELAY + 4) * 4);
    let report = sim.bottlenecks();
    println!("\nBottleneck report at channel = 2:");
    print!("{report}");
    println!("===========================================================\n");
}

fn bench(c: &mut Criterion) {
    print_sweep();
    let mut group = c.benchmark_group("sim_parallelize");
    group.sample_size(10);
    for channel in [1usize, 4, 8] {
        group.bench_function(format!("simulate/{channel}ch"), |b| {
            b.iter(|| black_box(simulate_parallelize(channel, DELAY, 64)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
