//! Observability overhead: the same package-DAG compile measured with
//! tracing disabled, coarse, and fine, plus the disabled-path
//! zero-allocation guarantee checked by counter rather than by clock.
//!
//! The headline metric is `overhead_ratio` = disabled time / coarse
//! time (higher is better, ~1.0 when coarse tracing is near-free);
//! the CI guard fails when a fresh run regresses it by more than 5%
//! against the committed `BENCH_obs_overhead.json`. Wall-clock noise
//! cancels in the ratio because both legs run interleaved in one
//! process on the same inputs.
//!
//! The hard assertions are exact, not timed:
//!
//! * with tracing **off**, a full compile records zero trace events —
//!   the disabled path takes one relaxed atomic load and allocates
//!   nothing;
//! * with tracing **coarse**, the same compile records spans and the
//!   drained buffer renders as a Chrome trace document;
//! * **fine** records strictly more events than coarse.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tydi_bench::compile_package_dag;
use tydi_obs::trace::{self, Level};

const WIDTH: usize = 40;
const RUNS: usize = 15;

/// One timed compile at the given trace level; returns wall time and
/// the number of trace events the run recorded.
fn one_compile(level: Level) -> (f64, u64) {
    trace::set_level(level);
    let before = trace::events_recorded();
    let t0 = Instant::now();
    black_box(compile_package_dag(WIDTH));
    let elapsed = t0.elapsed().as_secs_f64();
    let events = trace::events_recorded() - before;
    trace::set_level(Level::Off);
    // Drain between runs so traced legs do not accumulate unbounded
    // buffers (and the off leg proves it has nothing).
    let drained = trace::take_events();
    assert_eq!(drained.len() as u64, events, "drain mismatch");
    (elapsed, events)
}

/// Best-of-N wall time per level, with the levels interleaved
/// round-robin so slow machine-load drift hits every leg equally
/// instead of biasing whichever leg ran last.
fn time_levels(levels: &[Level]) -> Vec<(f64, u64)> {
    let mut results = vec![(f64::INFINITY, 0u64); levels.len()];
    for _ in 0..RUNS {
        for (slot, &level) in levels.iter().enumerate() {
            let (elapsed, events) = one_compile(level);
            results[slot].0 = results[slot].0.min(elapsed);
            results[slot].1 = events;
        }
    }
    results
}

fn bench(c: &mut Criterion) {
    let mut report = tydi_bench::BenchReport::new("obs_overhead")
        .text("units", "ms (best-of-15, full compile of the package DAG)");

    // Warm allocator, type store, and expansion caches before timing —
    // whichever leg runs first would otherwise absorb the cold-start
    // cost and skew the ratio.
    compile_package_dag(WIDTH);

    let timed = time_levels(&[Level::Off, Level::Coarse, Level::Fine]);
    let (off, off_events) = timed[0];
    let (coarse, coarse_events) = timed[1];
    let (fine, fine_events) = timed[2];

    assert_eq!(
        off_events, 0,
        "disabled tracing must record nothing (counter-checked, not timed)"
    );
    assert!(
        coarse_events > 0,
        "coarse tracing over a full compile must record spans"
    );
    assert!(
        fine_events >= coarse_events,
        "fine must be a superset of coarse ({fine_events} < {coarse_events})"
    );
    // Smoke the exporter on a real trace: one traced compile drains to
    // a syntactically balanced Chrome document.
    trace::set_level(Level::Coarse);
    compile_package_dag(WIDTH);
    trace::set_level(Level::Off);
    let doc = trace::export_chrome_trace();
    assert!(
        doc.starts_with("{\"traceEvents\":[") && doc.trim_end().ends_with("]}"),
        "exporter must frame a trace-event document"
    );

    let overhead_ratio = off / coarse;
    println!("===== observability overhead (package-DAG compile) =====");
    println!("{:>8} {:>12} {:>10}", "level", "compile", "events");
    println!("{:>8} {:>10.3}ms {:>10}", "off", off * 1e3, off_events);
    println!(
        "{:>8} {:>10.3}ms {:>10}",
        "coarse",
        coarse * 1e3,
        coarse_events
    );
    println!("{:>8} {:>10.3}ms {:>10}", "fine", fine * 1e3, fine_events);
    println!("  off/coarse ratio {overhead_ratio:.3} (1.0 = coarse tracing is free)");
    println!("===========================================================\n");

    report.add_metric("off_ms", off * 1e3);
    report.add_metric("coarse_ms", coarse * 1e3);
    report.add_metric("fine_ms", fine * 1e3);
    report.add_metric("coarse_events", coarse_events as f64);
    report.add_metric("fine_events", fine_events as f64);
    report.add_metric("overhead_ratio", overhead_ratio);
    report.write().expect("write BENCH_obs_overhead.json");

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("compile_traced_coarse", |b| {
        trace::set_level(Level::Coarse);
        b.iter(|| {
            black_box(compile_package_dag(WIDTH));
            trace::take_events()
        });
        trace::set_level(Level::Off);
        let _ = trace::take_events();
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
