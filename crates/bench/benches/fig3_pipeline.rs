//! Regenerates **Fig. 3** of the paper: the staged frontend pipeline
//! (parse → evaluate/expand → sugar → DRC), reporting where the
//! compilation time of each TPC-H query goes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tydi_tpch::{all_queries, GenOptions, TpchData};

fn print_stage_breakdown(data: &TpchData) {
    println!("\n====== Fig. 3: frontend stage timings per query ======");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "query", "parse", "elaborate", "sugar", "drc", "IR conns"
    );
    for case in all_queries(data) {
        let out = case.compile().expect("compile");
        let t = out.timings;
        println!(
            "{:<12} {:>9.2?} {:>11.2?} {:>9.2?} {:>9.2?} {:>12}",
            case.id,
            t.parse,
            t.elaborate,
            t.sugar,
            t.drc,
            out.project.stats().connections
        );
    }
    println!("=======================================================\n");
}

fn bench(c: &mut Criterion) {
    let data = TpchData::generate(GenOptions { rows: 64, seed: 4 });
    print_stage_breakdown(&data);

    let mut group = c.benchmark_group("fig3_pipeline");
    group.sample_size(20);
    for case in all_queries(&data) {
        group.bench_function(format!("frontend/{}", case.id), |b| {
            b.iter(|| {
                let out = black_box(&case).compile().expect("compile");
                black_box(out.project.stats())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
