//! Compile-time scaling of the template system: elaboration cost as
//! the number of distinct template instantiations grows, and the
//! effect of instantiation memoisation (paper §IV-B: templates are
//! expanded once per distinct argument list).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tydi_bench::compile_scaling;
use tydi_lang::{compile, CompileOptions};
use tydi_stdlib::with_stdlib;

/// A program instantiating ONE template `n` times (all cache hits
/// after the first).
fn repeated_source(n: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::from(
        "package scale;\nuse std;\n\ntype W16 = Stream(Bit(16));\nstreamlet top_s {\n",
    );
    for k in 0..n {
        let _ = writeln!(s, "    o_{k} : Stream(Bit(16)) out,");
    }
    s.push_str("}\n@NoStrictType\nimpl top_i of top_s {\n");
    for k in 0..n {
        let _ = writeln!(
            s,
            "    instance c_{k}(const_vec_i<type W16, 1, 4>),\n    c_{k}.o => o_{k},"
        );
    }
    s.push_str("}\n");
    s
}

fn print_scaling() {
    println!("\n===== template instantiation scaling =====");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "N", "distinct(ms)", "repeat(ms)", "cache hits"
    );
    let mut report = tydi_bench::BenchReport::new("template_scaling").text("units", "ms");
    for n in [8usize, 32, 128] {
        let t0 = std::time::Instant::now();
        let distinct = compile_scaling(n);
        let distinct_ms = t0.elapsed().as_secs_f64() * 1e3;
        let src = repeated_source(n);
        let sources = with_stdlib(&[("scale.td", src.as_str())]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let t1 = std::time::Instant::now();
        let repeated = compile(&refs, &CompileOptions::default()).expect("repeat compile");
        let repeat_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "{n:>6} {distinct_ms:>12.2} {repeat_ms:>12.2} {:>12}",
            repeated.elab_info.template_cache_hits
        );
        report.add_metric(format!("distinct_ms_{n}"), distinct_ms);
        report.add_metric(format!("repeat_ms_{n}"), repeat_ms);
        black_box((distinct, repeated));
    }
    report.write().expect("write BENCH_template_scaling.json");
    println!(
        "Memoisation keeps the repeated case flat: one elaboration per\n\
         distinct template-argument list (paper section IV-B).\n\
         ==========================================\n"
    );
}

fn bench(c: &mut Criterion) {
    print_scaling();
    let mut group = c.benchmark_group("template_scaling");
    group.sample_size(10);
    for n in [8usize, 64] {
        group.bench_function(format!("distinct/{n}"), |b| {
            b.iter(|| black_box(compile_scaling(n)));
        });
        let src = repeated_source(n);
        group.bench_function(format!("memoised/{n}"), |b| {
            b.iter(|| {
                let sources = with_stdlib(&[("scale.td", src.as_str())]);
                let refs: Vec<(&str, &str)> = sources
                    .iter()
                    .map(|(a, b)| (a.as_str(), b.as_str()))
                    .collect();
                black_box(compile(&refs, &CompileOptions::default()).expect("compile"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
