//! Shared fixtures for the benchmark harness.
//!
//! Each bench target regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the experiment index); the builders here are
//! shared between benches, examples and integration tests.

use tydi_lang::{compile, CompileOptions, CompileOutput};
use tydi_sim::{BehaviorRegistry, Packet, Scenario, SchedulerKind, SimBatch, Simulator};
use tydi_stdlib::with_stdlib;

pub mod report;
pub use report::{read_metric, repo_root, BenchReport};

/// The paper's §IV-B running example: a processing unit with an
/// 8-cycle delay, parallelized over `channel` units with a demux/mux
/// pair to reach one packet per cycle. Returns the Tydi-lang source.
pub fn parallelize_source(channel: usize, delay: u64) -> String {
    format!(
        r#"package par;
use std;

type W32 = Stream(Bit(32));

// The abstract processing-unit interface (paper section IV-B).
streamlet process_unit_s {{
    i : W32 in,
    o : W32 out,
}}

// A 32-bit adder with a delay of {delay} clock cycles, described by
// event-driven simulation code (paper section V-A).
impl adder_delay_i of process_unit_s external {{
    simulation {{
        state st = "idle";
        on (i.recv && st == "idle") {{
            set_state(st, "busy");
            delay({delay});
            send(o, i.data + 1);
            ack(i);
            set_state(st, "idle");
        }}
    }}
}}

streamlet parallelize_s {{
    i : W32 in,
    o : W32 out,
}}

// The parallelize template: a demux distributes packets over the
// processing units, a mux collects the results in order.
impl parallelize_i<pu: impl of process_unit_s, channel: int> of parallelize_s {{
    instance dm(demux_i<type W32, channel>),
    instance mx(mux_i<type W32, channel>),
    instance pu_inst(pu) [channel],
    i => dm.i,
    for k in (0..channel) {{
        dm.o[k] => pu_inst[k].i,
        pu_inst[k].o => mx.i[k],
    }}
    mx.o => o,
}}

impl top_i of parallelize_s {{
    instance p(parallelize_i<impl adder_delay_i, {channel}>),
    i => p.i,
    p.o => o,
}}
"#
    )
}

/// Compiles the parallelize design for a channel count.
pub fn compile_parallelize(channel: usize, delay: u64) -> CompileOutput {
    let source = parallelize_source(channel, delay);
    let sources = with_stdlib(&[("par.td", source.as_str())]);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile(&refs, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("parallelize failed:\n{e}"))
}

/// Simulates the parallelize design with `packets` stimuli; returns
/// `(cycles, packets_delivered)`.
pub fn simulate_parallelize(channel: usize, delay: u64, packets: u64) -> (u64, u64) {
    let compiled = compile_parallelize(channel, delay);
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&compiled.project, "top_i", &registry).expect("simulator");
    sim.feed("i", (0..packets as i64).map(Packet::data))
        .unwrap();
    let budget = packets * (delay + 4) * 4 + 1000;
    sim.run(budget);
    let delivered = sim.outputs("o").expect("probe").len() as u64;
    let last_arrival = sim
        .outputs("o")
        .expect("probe")
        .last()
        .map(|(c, _)| *c)
        .unwrap_or(0);
    (last_arrival.max(1), delivered)
}

/// Runs one stimulus schedule over a prebuilt parallelize project
/// under the given scheduler; returns `(cycles to last delivery,
/// packets delivered)`. `stall` throttles the output probe to accept
/// only every `stall`-th cycle — large values make the stimulus
/// sparse/bursty, which is where the event-driven scheduler's
/// skip-ahead pays off.
pub fn run_parallelize_sim(
    project: &tydi_ir::Project,
    registry: &BehaviorRegistry,
    kind: SchedulerKind,
    stall: u64,
    delay: u64,
    packets: u64,
) -> (u64, u64) {
    let mut sim = Simulator::new(project, "top_i", registry).expect("simulator");
    sim.set_scheduler(kind);
    sim.set_probe_backpressure("o", stall).unwrap();
    sim.feed("i", (0..packets as i64).map(Packet::data))
        .unwrap();
    let budget = packets * (delay + 4) * 4 * stall.max(1) + 1000;
    sim.run(budget);
    let outputs = sim.outputs("o").expect("probe");
    let last_arrival = outputs.last().map(|(c, _)| *c).unwrap_or(0);
    (last_arrival.max(1), outputs.len() as u64)
}

/// Deterministic stimulus scenarios for a parallelize batch: scenario
/// `k` feeds values offset by `1000 k` under a `1 + k % 4` stall.
pub fn parallelize_batch_scenarios(packets: u64, count: usize) -> Vec<Scenario> {
    (0..count)
        .map(|k| {
            Scenario::new(format!("s{k}"))
                .with_feed(
                    "i",
                    (0..packets as i64).map(|v| Packet::data(v + 1000 * k as i64)),
                )
                .with_backpressure("o", 1 + k as u64 % 4)
        })
        .collect()
}

/// Runs a scenario batch over a prebuilt parallelize project; returns
/// total packets delivered across scenarios.
pub fn run_parallelize_batch(
    project: &tydi_ir::Project,
    registry: &BehaviorRegistry,
    scenarios: &[Scenario],
) -> u64 {
    SimBatch::new(project, "top_i", registry)
        .run(scenarios)
        .expect("batch")
        .total_delivered() as u64
}

/// A synthetic program with `n` *distinct* template instantiations
/// (scaling the expansion stage) wired into sinks.
pub fn template_scaling_source(n: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::from(
        "package scale;\nuse std;\n\ntype W16 = Stream(Bit(16));\nstreamlet top_s {\n",
    );
    for k in 0..n {
        let _ = writeln!(s, "    o_{k} : Stream(Bit(16)) out,");
    }
    s.push_str("}\n@NoStrictType\nimpl top_i of top_s {\n");
    for k in 0..n {
        // Each constant is distinct, forcing a fresh instantiation.
        let _ = writeln!(
            s,
            "    instance c_{k}(const_vec_i<type W16, {k}, 4>),\n    c_{k}.o => o_{k},"
        );
    }
    s.push_str("}\n");
    s
}

/// A synthetic multi-package project shaped as a 4-level import DAG,
/// the workload for the package-parallel elaboration bench and the
/// thread-count determinism test:
///
/// ```text
/// level 0   base                 (pass_s<n> / pass_i<n> templates)
/// level 1   p0 .. p{width-1}     (each `use base`, distinct widths)
/// level 2   q0 .. q{width/2-1}   (each imports two level-1 packages)
/// level 3   zmain                (imports every level-2 package)
/// ```
///
/// With `width = 10` that is 17 packages, 10 of which share no import
/// edge and elaborate concurrently. Every package instantiates the
/// base templates at a distinct bit width, so each elaborates real
/// work (template expansion, type interning, connections) instead of
/// an empty namespace.
pub fn package_dag_sources(width: usize) -> Vec<(String, String)> {
    assert!(
        width >= 2 && width.is_multiple_of(2),
        "width must be even and >= 2"
    );
    let mut sources = Vec::with_capacity(2 + width + width / 2);
    sources.push((
        "base.td".to_string(),
        "package base;\n\
         streamlet pass_s<n: int> { i : Stream(Bit(n)) in, o : Stream(Bit(n)) out, }\n\
         @builtin(\"std.passthrough\")\n\
         impl pass_i<n: int> of pass_s<n> external;\n"
            .to_string(),
    ));
    for k in 0..width {
        let w = 8 + k;
        sources.push((
            format!("p{k}.td"),
            format!(
                "package p{k};\n\
                 use base;\n\
                 const c{k} : int = {w};\n\
                 impl i{k} of pass_s<{w}> {{\n\
                     instance a(pass_i<{w}>),\n\
                     instance b(pass_i<{w}>),\n\
                     i => a.i,\n\
                     a.o => b.i,\n\
                     b.o => o,\n\
                 }}\n"
            ),
        ));
    }
    for j in 0..width / 2 {
        let (a, b) = (2 * j, 2 * j + 1);
        let w = 8 + a;
        sources.push((
            format!("q{j}.td"),
            format!(
                "package q{j};\n\
                 use base;\n\
                 use p{a};\n\
                 use p{b};\n\
                 impl j{j} of pass_s<{w}> {{\n\
                     instance head(i{a}),\n\
                     instance tail(pass_i<c{a}>) [c{b}],\n\
                     i => head.i,\n\
                     head.o => tail[0].i,\n\
                     for k in (1..c{b}) {{\n\
                         tail[k - 1].o => tail[k].i,\n\
                     }}\n\
                     tail[c{b} - 1].o => o,\n\
                 }}\n"
            ),
        ));
    }
    let mut main_src = String::from("package zmain;\nuse base;\n");
    for j in 0..width / 2 {
        main_src.push_str(&format!("use q{j};\n"));
    }
    for j in 0..width / 2 {
        let w = 8 + 2 * j;
        main_src.push_str(&format!(
            "impl m{j} of pass_s<{w}> {{\n\
                 instance inner(j{j}),\n\
                 i => inner.i,\n\
                 inner.o => o,\n\
             }}\n"
        ));
    }
    sources.push(("zmain.td".to_string(), main_src));
    sources
}

/// Compiles the [`package_dag_sources`] project and returns the
/// output alongside its canonical IR text (the byte-identity probe).
pub fn compile_package_dag(width: usize) -> (CompileOutput, String) {
    let sources = package_dag_sources(width);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let output = compile(&refs, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("package DAG failed to compile:\n{e}"));
    let text = tydi_ir::text::emit_project(&output.project);
    (output, text)
}

/// Compiles the template-scaling program.
pub fn compile_scaling(n: usize) -> CompileOutput {
    let source = template_scaling_source(n);
    let sources = with_stdlib(&[("scale.td", source.as_str())]);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    compile(&refs, &CompileOptions::default()).unwrap_or_else(|e| panic!("scaling failed:\n{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_dag_compiles_and_is_thread_invariant() {
        let sources = package_dag_sources(10);
        assert!(
            sources.len() >= 16,
            "need a >=16-package project, got {}",
            sources.len()
        );
        std::env::set_var("TYDI_THREADS", "1");
        let (out_seq, text_seq) = compile_package_dag(10);
        std::env::set_var("TYDI_THREADS", "8");
        let (out_par, text_par) = compile_package_dag(10);
        std::env::remove_var("TYDI_THREADS");
        assert_eq!(text_seq, text_par, "IR must not depend on thread count");
        assert!(out_seq.project.implementation("m0").is_some());
        // Level-1 packages really elaborate in one wide level.
        let widest = out_par
            .elab_info
            .parallel
            .level_packages
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        assert!(widest >= 10, "import DAG should have a 10-wide level");
    }

    #[test]
    fn parallelize_compiles_for_various_channels() {
        for channel in [1, 2, 8] {
            let out = compile_parallelize(channel, 8);
            let top = out.project.implementation("top_i").unwrap();
            assert_eq!(top.instances().len(), 1);
        }
    }

    #[test]
    fn parallelize_throughput_scales_with_channels() {
        // Paper §IV-B: with an 8-cycle processing unit, 8 channels
        // sustain ~1 packet/cycle while 1 channel gives ~1/8.
        let (cycles_1, n1) = simulate_parallelize(1, 8, 40);
        let (cycles_8, n8) = simulate_parallelize(8, 8, 40);
        assert_eq!(n1, 40);
        assert_eq!(n8, 40);
        let t1 = n1 as f64 / cycles_1 as f64;
        let t8 = n8 as f64 / cycles_8 as f64;
        assert!(
            t8 > 3.0 * t1,
            "8 channels should be much faster: t1={t1:.3}, t8={t8:.3}"
        );
    }

    #[test]
    fn schedulers_agree_on_parallelize() {
        // Differential check backing the bench: the event-driven
        // scheduler must deliver the same packets at the same cycles
        // as the polling loop, dense and sparse alike.
        for (channel, stall) in [(1usize, 1u64), (4, 1), (2, 16)] {
            let compiled = compile_parallelize(channel, 8);
            let registry = BehaviorRegistry::with_std();
            let polling = run_parallelize_sim(
                &compiled.project,
                &registry,
                SchedulerKind::Polling,
                stall,
                8,
                32,
            );
            let event = run_parallelize_sim(
                &compiled.project,
                &registry,
                SchedulerKind::EventDriven,
                stall,
                8,
                32,
            );
            assert_eq!(polling, event, "channel {channel}, stall {stall}");
            assert_eq!(event.1, 32);
        }
    }

    #[test]
    fn batch_delivers_all_scenarios() {
        let compiled = compile_parallelize(4, 8);
        let registry = BehaviorRegistry::with_std();
        let scenarios = parallelize_batch_scenarios(16, 4);
        let delivered = run_parallelize_batch(&compiled.project, &registry, &scenarios);
        assert_eq!(delivered, 4 * 16);
    }

    #[test]
    fn scaling_source_grows() {
        let out = compile_scaling(16);
        // 16 distinct const instantiations.
        assert!(out.elab_info.template_instantiations >= 16);
    }
}
