//! Machine-readable benchmark reports.
//!
//! Every bench target writes a `BENCH_<name>.json` file at the
//! repository root next to the human-readable console output, so the
//! performance trajectory is tracked PR-over-PR: the committed
//! `BENCH_elab_scaling.json` is the baseline the CI perf-regression
//! guard (`bench_guard`) compares fresh runs against.
//!
//! The format is deliberately flat — a single JSON object of string
//! and number fields — so the guard (and any future dashboard) can
//! read it without a JSON library: `"key": value` pairs, one per
//! line, numbers printed with enough precision to diff ratios.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// A flat metric report for one benchmark target.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    name: String,
    fields: Vec<(String, Field)>,
}

#[derive(Debug, Clone)]
enum Field {
    Number(f64),
    Text(String),
}

impl BenchReport {
    /// Starts a report for the bench target `name` (the file becomes
    /// `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Records a numeric metric (times in milliseconds, ratios, sizes).
    pub fn metric(mut self, key: impl Into<String>, value: f64) -> Self {
        self.add_metric(key, value);
        self
    }

    /// Records a numeric metric through a mutable reference (for
    /// benches that accumulate metrics across helper functions).
    pub fn add_metric(&mut self, key: impl Into<String>, value: f64) {
        self.fields.push((key.into(), Field::Number(value)));
    }

    /// Records a string annotation (units, configuration notes).
    pub fn text(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.push((key.into(), Field::Text(value.into())));
        self
    }

    /// Renders the JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": {:?},", self.name);
        for (i, (key, field)) in self.fields.iter().enumerate() {
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            match field {
                Field::Number(v) => {
                    // Up to 4 decimals, trailing zeros trimmed, so
                    // diffs stay readable and ratios keep precision.
                    let mut text = format!("{v:.4}");
                    while text.contains('.') && (text.ends_with('0') || text.ends_with('.')) {
                        text.pop();
                    }
                    let _ = writeln!(out, "  {key:?}: {text}{comma}");
                }
                Field::Text(v) => {
                    let _ = writeln!(out, "  {key:?}: {v:?}{comma}");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Writes `BENCH_<name>.json` at the repository root, returning
    /// the path written.
    pub fn write(&self) -> io::Result<PathBuf> {
        let path = repo_root().join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Reads a numeric field out of a flat `BENCH_*.json` document
/// without a JSON parser (the format is line-oriented; see the
/// module docs). Returns `None` when the key is missing or not a
/// number.
pub fn read_metric(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    for line in json.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix(&needle) {
            let value = rest.trim().trim_end_matches(',').trim();
            if let Ok(v) = value.parse::<f64>() {
                return Some(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_metrics() {
        let report = BenchReport::new("demo")
            .text("units", "ms")
            .metric("cold_ms", 12.25)
            .metric("speedup", 3.5)
            .metric("n", 1024.0);
        let json = report.to_json();
        assert!(json.starts_with("{\n"), "{json}");
        assert!(json.trim_end().ends_with('}'), "{json}");
        assert_eq!(read_metric(&json, "cold_ms"), Some(12.25));
        assert_eq!(read_metric(&json, "speedup"), Some(3.5));
        assert_eq!(read_metric(&json, "n"), Some(1024.0));
        assert_eq!(read_metric(&json, "missing"), None);
        assert_eq!(read_metric(&json, "units"), None);
    }

    #[test]
    fn numbers_trim_trailing_zeros() {
        let json = BenchReport::new("demo").metric("x", 2.0).to_json();
        assert!(json.contains("\"x\": 2\n"), "{json}");
        let json = BenchReport::new("demo").metric("x", 0.125).to_json();
        assert!(json.contains("\"x\": 0.125"), "{json}");
    }
}
