//! `bench_guard` — the CI perf-regression gate.
//!
//! Compares a freshly produced `BENCH_*.json` against a committed
//! baseline and fails (non-zero exit) when a higher-is-better headline
//! metric regressed by more than the allowed fraction:
//!
//! ```text
//! bench_guard <baseline.json> <fresh.json> \
//!     [--metric headline_speedup] [--max-regression 0.30]
//! ```
//!
//! Improvements always pass (and are reported, so a PR that moves the
//! number up knows to refresh the committed baseline).

use std::process::ExitCode;
use tydi_bench::read_metric;

struct Args {
    baseline: String,
    fresh: String,
    metric: String,
    max_regression: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut metric = "headline_speedup".to_string();
    let mut max_regression = 0.30;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metric" => {
                metric = args.next().ok_or("--metric needs a value")?;
            }
            "--max-regression" => {
                let raw = args.next().ok_or("--max-regression needs a value")?;
                max_regression = raw
                    .parse::<f64>()
                    .map_err(|_| format!("bad --max-regression `{raw}`"))?;
                if !(0.0..1.0).contains(&max_regression) {
                    return Err("--max-regression must be in [0, 1)".into());
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => positional.push(other.to_string()),
        }
    }
    let [baseline, fresh] = <[String; 2]>::try_from(positional)
        .map_err(|_| "usage: bench_guard <baseline.json> <fresh.json> [options]".to_string())?;
    Ok(Args {
        baseline,
        fresh,
        metric,
        max_regression,
    })
}

fn load_metric(path: &str, metric: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    read_metric(&text, metric).ok_or_else(|| format!("`{path}` has no numeric metric `{metric}`"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_guard: {message}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_metric(&args.baseline, &args.metric) {
        Ok(v) => v,
        Err(message) => {
            eprintln!("bench_guard: {message}");
            return ExitCode::from(2);
        }
    };
    let fresh = match load_metric(&args.fresh, &args.metric) {
        Ok(v) => v,
        Err(message) => {
            eprintln!("bench_guard: {message}");
            return ExitCode::from(2);
        }
    };
    let floor = baseline * (1.0 - args.max_regression);
    println!(
        "bench_guard: {} baseline {baseline:.3}, fresh {fresh:.3}, \
         floor {floor:.3} (-{:.0}%)",
        args.metric,
        args.max_regression * 100.0
    );
    if fresh < floor {
        eprintln!(
            "bench_guard: FAIL — `{}` regressed more than {:.0}% \
             ({baseline:.3} -> {fresh:.3})",
            args.metric,
            args.max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    if fresh > baseline {
        println!(
            "bench_guard: `{}` improved ({baseline:.3} -> {fresh:.3}); \
             consider refreshing the committed baseline",
            args.metric
        );
    }
    println!("bench_guard: OK");
    ExitCode::SUCCESS
}
