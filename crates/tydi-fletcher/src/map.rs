//! Mapping Arrow types to Tydi logical types (the Fletcher mapping the
//! paper relies on: "Tydi-lang can take advantage of Fletcher to map
//! the Arrow data structures to Tydi-lang logical types", §II).

use crate::schema::{ArrowField, ArrowType};
use tydi_spec::{Complexity, LogicalType, StreamParams};

/// The element-level logical type of one Arrow value.
pub fn logical_type_of(ty: &ArrowType) -> LogicalType {
    LogicalType::Bit(ty.bit_width())
}

/// The stream type of a whole column: a dimension-1 sequence of
/// elements (one sequence per record batch), at the complexity level
/// Fletcher interfaces use.
pub fn column_stream_type(field: &ArrowField) -> LogicalType {
    let element = if field.nullable {
        LogicalType::group(vec![
            ("valid", LogicalType::Bit(1)),
            ("value", logical_type_of(&field.ty)),
        ])
    } else {
        logical_type_of(&field.ty)
    };
    LogicalType::stream(
        element,
        StreamParams::new()
            .with_dimension(1)
            .with_complexity(Complexity::new(2).expect("valid complexity")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ArrowField;

    #[test]
    fn plain_column_is_bit_stream() {
        let f = ArrowField::new("l_quantity", ArrowType::Int(32));
        let t = column_stream_type(&f);
        match &t {
            LogicalType::Stream { element, params } => {
                assert_eq!(**element, LogicalType::Bit(32));
                assert_eq!(params.dimension, 1);
                assert_eq!(params.complexity.level(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn nullable_column_gains_validity_bit() {
        let f = ArrowField {
            name: "c".into(),
            ty: ArrowType::Int(8),
            nullable: true,
        };
        let t = column_stream_type(&f);
        match &t {
            LogicalType::Stream { element, .. } => {
                assert_eq!(element.bit_width(), 9);
                assert!(element.field("valid").is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn decimal_width_follows_paper_formula() {
        let f = ArrowField::new(
            "l_extendedprice",
            ArrowType::Decimal {
                precision: 12,
                scale: 2,
            },
        );
        let t = column_stream_type(&f);
        match &t {
            LogicalType::Stream { element, .. } => {
                assert_eq!(element.bit_width(), 41); // ceil(log2(1e12-1)) + sign
            }
            _ => panic!(),
        }
    }
}
