//! Simulation behaviour of Fletcher readers.
//!
//! The physical Fletcher stack moves Arrow record batches from host
//! memory over PCIe/OpenCAPI; in simulation the reader component is a
//! stream source fed from an in-memory [`Table`]. Each column port
//! streams its values in row order and closes the dimension-1 sequence
//! with the final row — exactly the traffic the generated VHDL
//! interface would carry.

use crate::encode::EncodedValue;
use std::collections::HashMap;
use std::sync::Arc;
use tydi_sim::behavior::{Behavior, BehaviorRegistry, IoCtx, Wake};
use tydi_sim::channel::Packet;

/// An in-memory, column-major table of encoded values.
#[derive(Debug, Clone, Default)]
pub struct Table {
    columns: HashMap<String, Arc<Vec<EncodedValue>>>,
    rows: usize,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Adds a column.
    ///
    /// # Panics
    /// Panics when the column length disagrees with existing columns.
    pub fn with_column(mut self, name: impl Into<String>, values: Vec<EncodedValue>) -> Self {
        if !self.columns.is_empty() {
            assert_eq!(values.len(), self.rows, "column length mismatch");
        } else {
            self.rows = values.len();
        }
        self.columns.insert(name.into(), Arc::new(values));
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// A column by name.
    pub fn column(&self, name: &str) -> Option<&[EncodedValue]> {
        self.columns.get(name).map(|c| c.as_slice())
    }

    /// Column names, sorted.
    pub fn column_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.columns.keys().map(String::as_str).collect();
        v.sort();
        v
    }
}

/// The `fletcher.source` behaviour: one independent cursor per output
/// port, streaming the column of the same name.
struct FletcherSource {
    columns: Vec<(String, Arc<Vec<EncodedValue>>)>,
    cursors: Vec<usize>,
}

impl Behavior for FletcherSource {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        for (slot, (port, column)) in self.columns.iter().enumerate() {
            let cursor = self.cursors[slot];
            if cursor >= column.len() {
                continue;
            }
            let is_last = cursor + 1 == column.len();
            let packet = if is_last {
                Packet::last(column[cursor], 1)
            } else {
                Packet::data(column[cursor])
            };
            if io.send(port, packet) {
                self.cursors[slot] = cursor + 1;
            }
        }
    }

    fn state_label(&self) -> Option<String> {
        let done = self
            .cursors
            .iter()
            .zip(&self.columns)
            .all(|(&c, (_, col))| c >= col.len());
        Some(if done { "drained" } else { "streaming" }.to_string())
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        // A spontaneous source drives itself; once every column is
        // drained nothing can revive it, letting the scheduler prove
        // quiescence instead of polling out the idle threshold.
        let done = self
            .cursors
            .iter()
            .zip(&self.columns)
            .all(|(&c, (_, col))| c >= col.len());
        if done {
            Wake::OnEvent
        } else {
            Wake::NextCycle
        }
    }
}

/// Registers the `fletcher.source` behaviour backed by `tables`
/// (keyed by table name, matched against the `@table` attribute of
/// the generated reader impl).
pub fn register_fletcher_behaviors(
    registry: &mut BehaviorRegistry,
    tables: HashMap<String, Table>,
) {
    let _span = tydi_obs::trace::span("tydi-fletcher", "register_fletcher_behaviors");
    let tables = Arc::new(tables);
    registry.register("fletcher.source", move |implementation, streamlet| {
        let table_name = implementation
            .attributes
            .get("table")
            .cloned()
            .ok_or_else(|| {
                format!(
                    "reader `{}` lacks the @table attribute",
                    implementation.name
                )
            })?;
        let table = tables
            .get(&table_name)
            .ok_or_else(|| format!("no simulation data registered for table `{table_name}`"))?;
        let mut columns = Vec::new();
        for port in &streamlet.ports {
            if port.direction == tydi_ir::PortDirection::Out {
                let column = table
                    .columns
                    .get(&port.name)
                    .ok_or_else(|| format!("table `{table_name}` has no column `{}`", port.name))?
                    .clone();
                columns.push((port.name.clone(), column));
            }
        }
        let cursors = vec![0; columns.len()];
        Ok(Box::new(FletcherSource { columns, cursors }))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_reader_package;
    use crate::schema::{ArrowField, ArrowSchema, ArrowType};
    use tydi_lang::{compile, CompileOptions};
    use tydi_sim::Simulator;
    use tydi_stdlib::with_stdlib;

    fn schema() -> ArrowSchema {
        ArrowSchema::new(
            "nums",
            vec![
                ArrowField::new("a", ArrowType::Int(32)),
                ArrowField::new("b", ArrowType::Int(32)),
            ],
        )
    }

    #[test]
    fn table_construction() {
        let t = Table::new()
            .with_column("a", vec![1, 2, 3])
            .with_column("b", vec![4, 5, 6]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.column("a"), Some(&[1, 2, 3][..]));
        assert_eq!(t.column_names(), vec!["a", "b"]);
        assert!(t.column("z").is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_column_length_panics() {
        let _ = Table::new()
            .with_column("a", vec![1, 2, 3])
            .with_column("b", vec![4]);
    }

    #[test]
    fn reader_streams_columns_end_to_end() {
        // Fletcher package + a query that sums column a + b per row.
        let fletcher_src = generate_reader_package(&schema());
        let app = r#"
package app;
use std;
use fletcher_nums;
streamlet top_s {
    total : Stream(Bit(32), d=1, c=2) out,
}
// Columns a and b have distinct named types; mixing them in one adder
// needs the strict-equality opt-out (paper section IV-B).
@NoStrictType
impl top_i of top_s {
    instance rd(nums_reader_i),
    instance add(adder_i<type nums_a_t, type nums_b_t, type nums_a_t>),
    rd.a => add.in0,
    rd.b => add.in1,
    add.o => total,
}
"#;
        let sources = with_stdlib(&[("fletcher.td", fletcher_src.as_str()), ("app.td", app)]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let compiled = compile(&refs, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("compile failed:\n{e}"));
        let mut tables = HashMap::new();
        tables.insert(
            "nums".to_string(),
            Table::new()
                .with_column("a", vec![1, 2, 3])
                .with_column("b", vec![10, 20, 30]),
        );
        let mut registry = tydi_sim::BehaviorRegistry::with_std();
        register_fletcher_behaviors(&mut registry, tables);
        let mut sim = Simulator::new(&compiled.project, "top_i", &registry).unwrap();
        let result = sim.run(10_000);
        assert!(result.finished, "{result:?}");
        let out: Vec<i64> = sim
            .outputs("total")
            .unwrap()
            .iter()
            .map(|(_, p)| p.data)
            .collect();
        assert_eq!(out, vec![11, 22, 33]);
        // Final packet closes the row sequence.
        let last = sim.outputs("total").unwrap().last().unwrap().1;
        assert_eq!(last.last, 1);
    }

    #[test]
    fn missing_table_is_reported() {
        let fletcher_src = generate_reader_package(&schema());
        let app = r#"
package app;
use std;
use fletcher_nums;
streamlet top_s { a : nums_a_t out, b : nums_b_t out, }
impl top_i of top_s {
    instance rd(nums_reader_i),
    rd.a => a,
    rd.b => b,
}
"#;
        let sources = with_stdlib(&[("fletcher.td", fletcher_src.as_str()), ("app.td", app)]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let compiled = compile(&refs, &CompileOptions::default()).unwrap();
        let mut registry = tydi_sim::BehaviorRegistry::with_std();
        register_fletcher_behaviors(&mut registry, HashMap::new());
        let err = Simulator::new(&compiled.project, "top_i", &registry);
        assert!(err.is_err());
    }
}
