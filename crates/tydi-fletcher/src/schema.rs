//! Arrow-style schemas.

use std::fmt;

/// Column data types (the subset of Apache Arrow the TPC-H evaluation
/// needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrowType {
    /// Signed integer of the given bit width (8/16/32/64).
    Int(u32),
    /// Boolean.
    Bool,
    /// UTF-8 string (dictionary-encoded on hardware streams).
    Utf8,
    /// Fixed-point decimal with `precision` significant decimal
    /// digits and `scale` digits after the point (SQL
    /// `decimal(p, s)`, paper §IV-A).
    Decimal {
        /// Total decimal digits.
        precision: u32,
        /// Digits after the decimal point.
        scale: u32,
    },
    /// Days since the UNIX epoch (Arrow `date32`).
    Date32,
}

impl ArrowType {
    /// Hardware bits needed for one value of this type. Decimals use
    /// the paper's formula `ceil(log2(10^precision - 1))` plus a sign
    /// bit; strings are dictionary indices.
    pub fn bit_width(&self) -> u32 {
        match self {
            ArrowType::Int(w) => *w,
            ArrowType::Bool => 1,
            ArrowType::Utf8 => 32,
            ArrowType::Decimal { precision, .. } => {
                let digits = (*precision).max(1) as f64;
                (10f64.powf(digits) - 1.0).log2().ceil() as u32 + 1
            }
            ArrowType::Date32 => 32,
        }
    }
}

impl fmt::Display for ArrowType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrowType::Int(w) => write!(f, "int{w}"),
            ArrowType::Bool => write!(f, "bool"),
            ArrowType::Utf8 => write!(f, "utf8"),
            ArrowType::Decimal { precision, scale } => write!(f, "decimal({precision},{scale})"),
            ArrowType::Date32 => write!(f, "date32"),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrowField {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ArrowType,
    /// Whether the column may contain nulls (adds a validity bit).
    pub nullable: bool,
}

impl ArrowField {
    /// Creates a non-nullable field.
    pub fn new(name: impl Into<String>, ty: ArrowType) -> Self {
        ArrowField {
            name: name.into(),
            ty,
            nullable: false,
        }
    }
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrowSchema {
    /// Table name.
    pub name: String,
    /// Columns.
    pub fields: Vec<ArrowField>,
}

impl ArrowSchema {
    /// Creates a schema.
    pub fn new(name: impl Into<String>, fields: Vec<ArrowField>) -> Self {
        ArrowSchema {
            name: name.into(),
            fields,
        }
    }

    /// Looks a field up by name.
    pub fn field(&self, name: &str) -> Option<&ArrowField> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// A sub-schema containing only the named columns (a query rarely
    /// touches the whole table, paper §IV-D).
    pub fn project(&self, columns: &[&str]) -> ArrowSchema {
        ArrowSchema {
            name: self.name.clone(),
            fields: columns
                .iter()
                .filter_map(|c| self.field(c).cloned())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(ArrowType::Int(32).bit_width(), 32);
        assert_eq!(ArrowType::Bool.bit_width(), 1);
        assert_eq!(ArrowType::Utf8.bit_width(), 32);
        assert_eq!(ArrowType::Date32.bit_width(), 32);
        // Paper §IV-A: Decimal(15) needs ceil(log2(10^15 - 1)) = 50
        // magnitude bits (plus sign).
        assert_eq!(
            ArrowType::Decimal {
                precision: 15,
                scale: 2
            }
            .bit_width(),
            51
        );
    }

    #[test]
    fn schema_projection() {
        let s = ArrowSchema::new(
            "t",
            vec![
                ArrowField::new("a", ArrowType::Int(32)),
                ArrowField::new("b", ArrowType::Utf8),
                ArrowField::new("c", ArrowType::Bool),
            ],
        );
        let p = s.project(&["c", "a"]);
        assert_eq!(p.fields.len(), 2);
        assert_eq!(p.fields[0].name, "c");
        assert!(s.field("b").is_some());
        assert!(p.field("b").is_none());
    }

    #[test]
    fn display() {
        assert_eq!(
            ArrowType::Decimal {
                precision: 12,
                scale: 2
            }
            .to_string(),
            "decimal(12,2)"
        );
    }
}
