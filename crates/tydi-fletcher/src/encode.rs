//! Encoding column values as stream integers.
//!
//! Hardware streams carry fixed-width bit patterns, so variable-width
//! values are encoded before they reach the accelerator, exactly as
//! Arrow-native systems do: strings become dictionary indices,
//! decimals become scaled integers, dates become day counts.

use std::collections::HashMap;

/// A value after encoding.
pub type EncodedValue = i64;

/// A string dictionary assigning stable indices in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    index: HashMap<String, EncodedValue>,
    values: Vec<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Encodes a string, assigning a fresh index on first sight.
    pub fn encode(&mut self, value: &str) -> EncodedValue {
        if let Some(&i) = self.index.get(value) {
            return i;
        }
        let i = self.values.len() as EncodedValue;
        self.index.insert(value.to_string(), i);
        self.values.push(value.to_string());
        i
    }

    /// Looks up an already-encoded string without inserting.
    pub fn lookup(&self, value: &str) -> Option<EncodedValue> {
        self.index.get(value).copied()
    }

    /// Decodes an index back to its string.
    pub fn decode(&self, code: EncodedValue) -> Option<&str> {
        usize::try_from(code)
            .ok()
            .and_then(|i| self.values.get(i))
            .map(String::as_str)
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no strings have been encoded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Encodes a decimal given as `(integral, hundredths)` to a scaled
/// integer with two fractional digits (the TPC-H money scale).
pub fn encode_decimal_cents(units: i64, cents: i64) -> EncodedValue {
    units * 100 + cents
}

/// Encodes a date `(year, month, day)` as days since 1970-01-01
/// (proleptic Gregorian, matching Arrow `date32`).
pub fn encode_date(year: i32, month: u32, day: u32) -> EncodedValue {
    // Howard Hinnant's days_from_civil algorithm.
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = i64::from(month);
    let d = i64::from(day);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_round_trip() {
        let mut d = Dictionary::new();
        let a = d.encode("MED BAG");
        let b = d.encode("MED BOX");
        let a2 = d.encode("MED BAG");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.decode(a), Some("MED BAG"));
        assert_eq!(d.decode(99), None);
        assert_eq!(d.lookup("MED BOX"), Some(b));
        assert_eq!(d.lookup("missing"), None);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn decimal_encoding() {
        assert_eq!(encode_decimal_cents(12, 34), 1234);
        assert_eq!(encode_decimal_cents(0, 5), 5);
        assert_eq!(encode_decimal_cents(-1, 0), -100);
    }

    #[test]
    fn date_encoding_matches_known_values() {
        assert_eq!(encode_date(1970, 1, 1), 0);
        assert_eq!(encode_date(1970, 1, 2), 1);
        assert_eq!(encode_date(1969, 12, 31), -1);
        assert_eq!(encode_date(2000, 3, 1), 11017);
        // TPC-H date range sanity.
        assert_eq!(encode_date(1994, 1, 1), 8766);
        assert_eq!(encode_date(1995, 1, 1), 9131);
    }

    #[test]
    fn date_encoding_is_monotonic_over_a_year() {
        let mut prev = encode_date(1994, 1, 1);
        for month in 1..=12u32 {
            for day in [1u32, 15, 28] {
                let v = encode_date(1994, month, day);
                if (month, day) != (1, 1) {
                    assert!(v > prev, "{month}-{day}");
                    prev = v;
                }
            }
        }
    }
}
