//! # tydi-fletcher
//!
//! The Fletcher substrate (paper §II/§III, Fig. 2): Fletcher is the
//! framework that generates hardware interfaces for FPGA accelerators
//! to access Apache Arrow data on host memory. The paper's workflow
//! starts from an Arrow schema, lets Fletcher generate the
//! memory-access components, and hand-writes only their Tydi-lang
//! *interfaces* (the `LoCf` column of Table IV).
//!
//! This crate reproduces that role without the physical PCIe/OpenCAPI
//! transport (a documented substitution, see DESIGN.md):
//!
//! * an Arrow-style [`schema`] model ([`ArrowSchema`], [`ArrowType`]);
//! * the schema-to-Tydi [`map`]ping (column streams, Fletcher-style);
//! * [`generate`]: Tydi-lang source for per-table *reader* streamlets,
//!   exactly the interface code the paper counts as the Fletcher part;
//! * [`encode`]: dictionary encoding of strings / decimals / dates to
//!   the integers that travel on hardware streams;
//! * [`sim`]: a `fletcher.source` behaviour that feeds the generated
//!   readers from in-memory [`Table`]s during simulation.

#![warn(missing_docs)]

pub mod encode;
pub mod generate;
pub mod map;
pub mod rtl;
pub mod schema;
pub mod sim;

pub use encode::{Dictionary, EncodedValue};
pub use generate::generate_reader_package;
pub use map::{column_stream_type, logical_type_of};
pub use rtl::register_fletcher_rtl;
pub use schema::{ArrowField, ArrowSchema, ArrowType};
pub use sim::{register_fletcher_behaviors, Table};
