//! Generating the Tydi-lang interface of Fletcher reader components.
//!
//! The paper hand-writes the Tydi-lang interfaces for the components
//! Fletcher generates ("we manually write the interface for Fletcher
//! components because the current Fletcher project has not integrated
//! Tydi-lang support yet", §VI) and counts them as `LoCf` in Table IV.
//! This module automates exactly that interface generation: one type
//! alias per column and one reader streamlet + external impl per
//! table.

use crate::map::column_stream_type;
use crate::schema::ArrowSchema;
use std::fmt::Write as _;

/// Generates a Tydi-lang package named `fletcher_<table>` declaring:
///
/// * `type <table>_<column>_t = Stream(...)` per column;
/// * `streamlet <table>_reader_s` with one output port per column;
/// * `impl <table>_reader_i` — external, bound to the
///   `fletcher.source` behaviour with the table name as a parameter.
pub fn generate_reader_package(schema: &ArrowSchema) -> String {
    let mut out = String::new();
    let table = &schema.name;
    let _ = writeln!(out, "package fletcher_{table};");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "// Interfaces of the Fletcher-generated memory readers for `{table}`."
    );
    for field in &schema.fields {
        let ty = column_stream_type(field);
        let _ = writeln!(out, "type {table}_{}_t = {};", field.name, ty);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "streamlet {table}_reader_s {{");
    for field in &schema.fields {
        let _ = writeln!(out, "    {} : {table}_{}_t out,", field.name, field.name);
    }
    let _ = writeln!(out, "}}");
    let _ = writeln!(out, "@builtin(\"fletcher.source\")");
    let _ = writeln!(out, "@table(\"{table}\")");
    let _ = writeln!(out, "impl {table}_reader_i of {table}_reader_s external;");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ArrowField, ArrowType};
    use tydi_lang::{compile, CompileOptions};

    fn lineitem_subset() -> ArrowSchema {
        ArrowSchema::new(
            "lineitem",
            vec![
                ArrowField::new("l_quantity", ArrowType::Int(32)),
                ArrowField::new(
                    "l_extendedprice",
                    ArrowType::Decimal {
                        precision: 12,
                        scale: 2,
                    },
                ),
                ArrowField::new("l_shipdate", ArrowType::Date32),
                ArrowField::new("l_shipmode", ArrowType::Utf8),
            ],
        )
    }

    #[test]
    fn generated_package_compiles() {
        let source = generate_reader_package(&lineitem_subset());
        let out =
            compile(&[("fletcher.td", &source)], &CompileOptions::default()).unwrap_or_else(|e| {
                panic!("generated Fletcher package failed to compile:\n{e}\n{source}")
            });
        let reader = out.project.streamlet("lineitem_reader_s").unwrap();
        assert_eq!(reader.ports.len(), 4);
        let imp = out.project.implementation("lineitem_reader_i").unwrap();
        assert!(imp.is_external());
        match &imp.kind {
            tydi_ir::ImplKind::External { builtin, .. } => {
                assert_eq!(builtin.as_deref(), Some("fletcher.source"));
            }
            _ => panic!(),
        }
        assert_eq!(
            imp.attributes.get("table").map(String::as_str),
            Some("lineitem")
        );
    }

    #[test]
    fn generated_types_carry_origins() {
        let source = generate_reader_package(&lineitem_subset());
        let out = compile(&[("fletcher.td", &source)], &CompileOptions::default()).unwrap();
        let reader = out.project.streamlet("lineitem_reader_s").unwrap();
        assert_eq!(
            reader.port("l_quantity").unwrap().type_origin.as_deref(),
            Some("fletcher_lineitem.lineitem_l_quantity_t")
        );
    }

    #[test]
    fn loc_is_proportional_to_columns() {
        let small = generate_reader_package(&lineitem_subset().project(&["l_quantity"]));
        let large = generate_reader_package(&lineitem_subset());
        let small_loc = tydi_vhdl::loc::count_tydi_loc(&small);
        let large_loc = tydi_vhdl::loc::count_tydi_loc(&large);
        assert!(large_loc > small_loc);
    }
}
