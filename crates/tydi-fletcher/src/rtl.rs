//! RTL-side stubs for Fletcher readers.
//!
//! The real RTL of a Fletcher reader is produced by the Fletcher
//! framework itself and linked in at synthesis time (paper Fig. 2);
//! the Tydi toolchain only emits the typed interface. This module
//! registers `fletcher.source` generators — one per backend — that
//! produce a stub body so whole projects containing readers can still
//! be lowered to VHDL or SystemVerilog (and their LoC counted for
//! Table IV).

use std::fmt::Write as _;
use tydi_rtl::Backend;
use tydi_vhdl::builtin::{ArchBody, BuiltinCtx};
use tydi_vhdl::BuiltinRegistry;

fn table_name(ctx: &BuiltinCtx<'_>) -> String {
    ctx.implementation
        .attributes
        .get("table")
        .cloned()
        .unwrap_or_else(|| "unknown".to_string())
}

/// Registers the `fletcher.source` stub generators for every backend.
pub fn register_fletcher_rtl(registry: &BuiltinRegistry) {
    let _span = tydi_obs::trace::span("tydi-fletcher", "register_fletcher_rtl");
    registry.register("fletcher.source", |ctx: &BuiltinCtx<'_>| {
        let table_name = table_name(ctx);
        let mut stmts = String::new();
        let _ = writeln!(
            stmts,
            "  -- Fletcher-generated reader for Arrow table `{table_name}`."
        );
        let _ = writeln!(
            stmts,
            "  -- The actual bus/DMA logic is produced by Fletcher and bound"
        );
        let _ = writeln!(stmts, "  -- to this entity at synthesis time.");
        for port in ctx.outputs() {
            let _ = writeln!(stmts, "  {}_valid <= '0';", port.name);
        }
        Ok(ArchBody {
            decls: String::new(),
            stmts,
        })
    });
    registry.register_for(
        Backend::SystemVerilog,
        "fletcher.source",
        |ctx: &BuiltinCtx<'_>| {
            let table_name = table_name(ctx);
            let mut stmts = String::new();
            let _ = writeln!(
                stmts,
                "  // Fletcher-generated reader for Arrow table `{table_name}`."
            );
            let _ = writeln!(
                stmts,
                "  // The actual bus/DMA logic is produced by Fletcher and bound"
            );
            let _ = writeln!(stmts, "  // to this module at synthesis time.");
            for port in ctx.outputs() {
                let _ = writeln!(stmts, "  assign {}_valid = 1'b0;", port.name);
            }
            Ok(ArchBody {
                decls: String::new(),
                stmts,
            })
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_reader_package;
    use crate::schema::{ArrowField, ArrowSchema, ArrowType};
    use tydi_lang::{compile, CompileOptions};
    use tydi_vhdl::{check::check_vhdl, generate_project, generate_project_for, VhdlOptions};

    fn reader_project() -> tydi_ir::Project {
        let schema = ArrowSchema::new(
            "t",
            vec![
                ArrowField::new("a", ArrowType::Int(32)),
                ArrowField::new("b", ArrowType::Date32),
            ],
        );
        let source = generate_reader_package(&schema);
        compile(&[("f.td", &source)], &CompileOptions::default())
            .unwrap()
            .project
    }

    #[test]
    fn reader_lowers_to_stub_vhdl() {
        let project = reader_project();
        let registry = BuiltinRegistry::with_core();
        register_fletcher_rtl(&registry);
        let files = generate_project(&project, &registry, &VhdlOptions::default()).unwrap();
        let vhdl: String = files.into_iter().map(|f| f.contents).collect();
        assert!(vhdl.contains("entity t_reader_i is"));
        assert!(vhdl.contains("Fletcher-generated reader for Arrow table `t`"));
        assert!(vhdl.contains("a_valid <= '0';"));
        assert!(check_vhdl(&vhdl).is_empty());
    }

    #[test]
    fn reader_lowers_to_stub_verilog() {
        let project = reader_project();
        let registry = BuiltinRegistry::with_core();
        register_fletcher_rtl(&registry);
        let files = generate_project_for(
            &project,
            &registry,
            &VhdlOptions::default(),
            tydi_rtl::Backend::SystemVerilog,
        )
        .unwrap();
        let sv: String = files.into_iter().map(|f| f.contents).collect();
        assert!(sv.contains("module t_reader_i ("));
        assert!(sv.contains("// Fletcher-generated reader for Arrow table `t`."));
        assert!(sv.contains("assign a_valid = 1'b0;"));
        assert!(tydi_rtl::check::check_verilog(&sv).is_empty());
    }
}
