//! VHDL-side stub for Fletcher readers.
//!
//! The real RTL of a Fletcher reader is produced by the Fletcher
//! framework itself and linked in at synthesis time (paper Fig. 2);
//! the Tydi toolchain only emits the typed interface. This module
//! registers a `fletcher.source` generator that produces a black-box
//! architecture so whole projects containing readers can still be
//! lowered to VHDL (and their LoC counted for Table IV).

use std::fmt::Write as _;
use tydi_vhdl::builtin::{ArchBody, BuiltinCtx};
use tydi_vhdl::BuiltinRegistry;

/// Registers the `fletcher.source` VHDL stub generator.
pub fn register_fletcher_rtl(registry: &BuiltinRegistry) {
    registry.register("fletcher.source", |ctx: &BuiltinCtx<'_>| {
        let table = ctx.param("__nonexistent").unwrap_or("");
        let _ = table;
        let table_name = ctx
            .implementation
            .attributes
            .get("table")
            .cloned()
            .unwrap_or_else(|| "unknown".to_string());
        let mut stmts = String::new();
        let _ = writeln!(
            stmts,
            "  -- Fletcher-generated reader for Arrow table `{table_name}`."
        );
        let _ = writeln!(
            stmts,
            "  -- The actual bus/DMA logic is produced by Fletcher and bound"
        );
        let _ = writeln!(stmts, "  -- to this entity at synthesis time.");
        for port in ctx.outputs() {
            let _ = writeln!(stmts, "  {}_valid <= '0';", port.name);
        }
        Ok(ArchBody {
            decls: String::new(),
            stmts,
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_reader_package;
    use crate::schema::{ArrowField, ArrowSchema, ArrowType};
    use tydi_lang::{compile, CompileOptions};
    use tydi_vhdl::{check::check_vhdl, generate_project, VhdlOptions};

    #[test]
    fn reader_lowers_to_stub_vhdl() {
        let schema = ArrowSchema::new(
            "t",
            vec![
                ArrowField::new("a", ArrowType::Int(32)),
                ArrowField::new("b", ArrowType::Date32),
            ],
        );
        let source = generate_reader_package(&schema);
        let out = compile(&[("f.td", &source)], &CompileOptions::default()).unwrap();
        let registry = BuiltinRegistry::with_core();
        register_fletcher_rtl(&registry);
        let files = generate_project(&out.project, &registry, &VhdlOptions::default()).unwrap();
        let vhdl: String = files.into_iter().map(|f| f.contents).collect();
        assert!(vhdl.contains("entity t_reader_i is"));
        assert!(vhdl.contains("Fletcher-generated reader for Arrow table `t`"));
        assert!(vhdl.contains("a_valid <= '0';"));
        assert!(check_vhdl(&vhdl).is_empty());
    }
}
