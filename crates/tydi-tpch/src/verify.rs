//! End-to-end verification: compile a query, simulate it against the
//! synthetic tables, and compare with the software reference.
//!
//! This is *stronger* than the paper's evaluation, which stops at
//! generated structure; the simulator substrate lets us check that the
//! translated pipelines actually compute the SQL semantics.

use crate::data::TpchData;
use crate::queries::QueryCase;
use std::collections::HashMap;
use tydi_fletcher::register_fletcher_behaviors;
use tydi_sim::{BehaviorRegistry, Simulator};

/// Simulates the query and returns the observed non-empty packets per
/// output port.
pub fn run_query(case: &QueryCase, data: &TpchData) -> Result<HashMap<String, Vec<i64>>, String> {
    let compiled = case.compile()?;
    let mut registry = BehaviorRegistry::with_std();
    register_fletcher_behaviors(&mut registry, data.tables.clone());
    let mut sim =
        Simulator::new(&compiled.project, &case.top_impl, &registry).map_err(|e| e.to_string())?;
    // Generous budget: TPC-H pipelines move one row per cycle per
    // stage, so rows x constant is plenty.
    let budget = (data.rows as u64 + 64) * 64;
    let result = sim.run(budget);
    let mut outputs = HashMap::new();
    for port in sim.output_ports() {
        let packets: Vec<i64> = sim
            .outputs(&port)
            .map_err(|e| e.to_string())?
            .iter()
            .filter(|(_, p)| !p.empty)
            .map(|(_, p)| p.data)
            .collect();
        outputs.insert(port, packets);
    }
    // If any expected port produced nothing, surface the stall
    // diagnosis to make failures actionable.
    for (port, expected) in &case.expected {
        let got = outputs.get(port).map(Vec::len).unwrap_or(0);
        if got < expected.len() {
            let bottlenecks = sim.bottlenecks();
            return Err(format!(
                "{}: port `{port}` produced {got}/{} packets after {} cycles; deadlock: {:?}; worst blockages:\n{bottlenecks}",
                case.id,
                expected.len(),
                result.cycles,
                result.deadlock,
            ));
        }
    }
    Ok(outputs)
}

/// Runs the query and asserts every expected output matches.
pub fn verify_query(case: &QueryCase, data: &TpchData) -> Result<(), String> {
    let outputs = run_query(case, data)?;
    for (port, expected) in &case.expected {
        let got = outputs
            .get(port)
            .ok_or_else(|| format!("{}: missing output port `{port}`", case.id))?;
        if got != expected {
            return Err(format!(
                "{}: port `{port}` mismatch\n  expected: {expected:?}\n  got:      {got:?}",
                case.id
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::GenOptions;
    use crate::queries::all_queries;

    fn data() -> TpchData {
        TpchData::generate(GenOptions {
            rows: 192,
            seed: 42,
        })
    }

    #[test]
    fn q6_matches_reference() {
        let data = data();
        let case = all_queries(&data)
            .into_iter()
            .find(|c| c.id == "q6")
            .unwrap();
        verify_query(&case, &data).unwrap();
    }

    #[test]
    fn q3_matches_reference() {
        let data = data();
        let case = all_queries(&data)
            .into_iter()
            .find(|c| c.id == "q3")
            .unwrap();
        verify_query(&case, &data).unwrap();
    }

    #[test]
    fn q5_matches_reference() {
        let data = data();
        let case = all_queries(&data)
            .into_iter()
            .find(|c| c.id == "q5")
            .unwrap();
        verify_query(&case, &data).unwrap();
    }

    #[test]
    fn q1_matches_reference() {
        let data = data();
        let case = all_queries(&data)
            .into_iter()
            .find(|c| c.id == "q1")
            .unwrap();
        verify_query(&case, &data).unwrap();
    }

    #[test]
    fn q1_desugared_matches_reference() {
        let data = data();
        let case = all_queries(&data)
            .into_iter()
            .find(|c| c.id == "q1_nosugar")
            .unwrap();
        verify_query(&case, &data).unwrap();
    }

    #[test]
    fn q19_matches_reference() {
        let data = data();
        let case = all_queries(&data)
            .into_iter()
            .find(|c| c.id == "q19")
            .unwrap();
        verify_query(&case, &data).unwrap();
    }
}
