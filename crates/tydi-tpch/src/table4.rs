//! Regenerating Table IV of the paper: lines of code for translating
//! TPC-H queries to Tydi-lang, against the generated VHDL.
//!
//! `LoCa = LoCq + LoCf + LoCs`, `Rq = LoCvhdl / LoCq`,
//! `Ra = LoCvhdl / LoCa` — the formulas of paper §VI.

use crate::data::TpchData;
use crate::queries::{all_queries, QueryCase};
use std::fmt::Write as _;
use tydi_fletcher::register_fletcher_rtl;
use tydi_stdlib::{full_registry, stdlib_loc};
use tydi_vhdl::{count_loc, generate_project, VhdlOptions};

/// One row of Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Query label ("TPC-H 1", ...).
    pub query: String,
    /// Lines of raw SQL.
    pub sql_loc: usize,
    /// Query logic in Tydi-lang (`LoCq`).
    pub loc_q: usize,
    /// Fletcher interface part (`LoCf`).
    pub loc_f: usize,
    /// Standard library (`LoCs`).
    pub loc_s: usize,
    /// Total Tydi-lang (`LoCa`).
    pub loc_a: usize,
    /// Generated VHDL (`LoCvhdl`).
    pub loc_vhdl: usize,
    /// `Rq = LoCvhdl / LoCq`.
    pub rq: f64,
    /// `Ra = LoCvhdl / LoCa`.
    pub ra: f64,
}

/// Compiles one query to VHDL and measures every Table IV column.
pub fn measure(case: &QueryCase) -> Result<Table4Row, String> {
    let compiled = case.compile()?;
    let registry = full_registry();
    register_fletcher_rtl(&registry);
    let options = VhdlOptions {
        emit_comments: false,
        validate: true,
    };
    let files = generate_project(&compiled.project, &registry, &options)
        .map_err(|e| format!("{}: vhdl generation failed: {e}", case.id))?;
    let loc_vhdl: usize = files.iter().map(|f| count_loc(&f.contents)).sum();
    let loc_q = case.query_loc();
    let loc_f = case.fletcher_loc();
    let loc_s = stdlib_loc();
    let loc_a = loc_q + loc_f + loc_s;
    Ok(Table4Row {
        query: case.title.to_string(),
        sql_loc: case.sql_loc(),
        loc_q,
        loc_f,
        loc_s,
        loc_a,
        loc_vhdl,
        rq: loc_vhdl as f64 / loc_q as f64,
        ra: loc_vhdl as f64 / loc_a as f64,
    })
}

/// Regenerates the full table for every evaluated query.
pub fn table4(data: &TpchData) -> Result<Vec<Table4Row>, String> {
    all_queries(data).iter().map(measure).collect()
}

/// Renders the table in the paper's layout.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE IV: LoC FOR TRANSLATING TPC-H QUERIES TO TYDI-LANG"
    );
    if let Some(first) = rows.first() {
        let _ = writeln!(
            out,
            "LoC for Fletcher part (LoCf): {}    LoC for Tydi-lang standard library (LoCs): {}",
            first.loc_f, first.loc_s
        );
    }
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>8} {:>8} {:>10} {:>8} {:>8}",
        "Query name", "Raw SQL", "LoCq", "LoCa", "LoCvhdl", "Rq", "Ra"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>8} {:>10} {:>8.2} {:>8.2}",
            r.query, r.sql_loc, r.loc_q, r.loc_a, r.loc_vhdl, r.rq, r.ra
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::GenOptions;

    #[test]
    fn table4_shape_matches_paper() {
        let data = TpchData::generate(GenOptions { rows: 32, seed: 4 });
        let rows = table4(&data).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            // The headline claim: VHDL is much larger than the query
            // logic (Rq in the tens in the paper), and larger than the
            // total Tydi-lang code (Ra > 1).
            assert!(r.rq > 5.0, "{}: Rq = {}", r.query, r.rq);
            assert!(r.ra > 1.0, "{}: Ra = {}", r.query, r.ra);
            assert!(r.rq > r.ra, "{}", r.query);
            assert_eq!(r.loc_a, r.loc_q + r.loc_f + r.loc_s);
            // Tydi-lang query logic is within a small factor of SQL.
            assert!(r.loc_q < 40 * r.sql_loc, "{}", r.query);
        }
        // Without sugaring the total grows (paper: 402 vs 284).
        let sugared = rows.iter().find(|r| r.query == "TPC-H 1").unwrap();
        let desugared = rows
            .iter()
            .find(|r| r.query.contains("without sugaring"))
            .unwrap();
        assert!(desugared.loc_q > sugared.loc_q);
        assert!(desugared.ra < sugared.ra);
    }

    #[test]
    fn render_contains_all_rows() {
        let data = TpchData::generate(GenOptions { rows: 32, seed: 4 });
        let rows = table4(&data).unwrap();
        let text = render_table4(&rows);
        assert!(text.contains("TPC-H 19"));
        assert!(text.contains("LoCvhdl"));
    }
}
