//! Synthetic TPC-H data with the official column domains.
//!
//! The generator is deterministic (seeded) and column-major, producing
//! the [`Table`]s the Fletcher simulation sources stream from. String
//! columns are dictionary-encoded with domain-ordered dictionaries so
//! that codes are stable across runs and row counts.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use tydi_fletcher::encode::{encode_date, Dictionary};
use tydi_fletcher::schema::{ArrowField, ArrowSchema, ArrowType};
use tydi_fletcher::Table;

/// Data generation options.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Rows per table (the synthetic scale factor).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            rows: 512,
            seed: 0x7D11,
        }
    }
}

/// String domains, in dictionary order.
pub const RETURNFLAGS: &[&str] = &["A", "N", "R"];
/// `l_linestatus` domain.
pub const LINESTATUS: &[&str] = &["F", "O"];
/// `l_shipinstruct` domain.
pub const SHIPINSTRUCT: &[&str] = &[
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
/// `l_shipmode` domain.
pub const SHIPMODES: &[&str] = &["AIR", "AIR REG", "FOB", "MAIL", "RAIL", "SHIP", "TRUCK"];
/// `c_mktsegment` domain.
pub const MKTSEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
/// `r_name` domain.
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

fn brand_domain() -> Vec<String> {
    let mut v = Vec::new();
    for a in 1..=5 {
        for b in 1..=5 {
            v.push(format!("Brand#{a}{b}"));
        }
    }
    v
}

fn container_domain() -> Vec<String> {
    let sizes = ["SM", "MED", "LG", "JUMBO", "WRAP"];
    let kinds = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
    let mut v = Vec::new();
    for s in sizes {
        for k in kinds {
            v.push(format!("{s} {k}"));
        }
    }
    v
}

/// The generated data set: Fletcher tables plus the per-column string
/// dictionaries needed to splice constants into query sources.
#[derive(Debug, Clone)]
pub struct TpchData {
    /// Rows per table.
    pub rows: usize,
    /// Tables keyed by name (`lineitem`, `lineitem_part`, `q3view`,
    /// `q5view`).
    pub tables: HashMap<String, Table>,
    /// Dictionaries keyed by column name.
    pub dicts: HashMap<&'static str, Dictionary>,
}

impl TpchData {
    /// Generates the data set.
    pub fn generate(options: GenOptions) -> TpchData {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let rows = options.rows;

        let mut dicts: HashMap<&'static str, Dictionary> = HashMap::new();
        let mut dict = |name: &'static str, domain: &[String]| -> Dictionary {
            let mut d = Dictionary::new();
            for value in domain {
                d.encode(value);
            }
            dicts.insert(name, d.clone());
            d
        };
        let owned = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        let d_flag = dict("l_returnflag", &owned(RETURNFLAGS));
        let d_status = dict("l_linestatus", &owned(LINESTATUS));
        let d_instruct = dict("l_shipinstruct", &owned(SHIPINSTRUCT));
        let d_mode = dict("l_shipmode", &owned(SHIPMODES));
        let d_brand = dict("p_brand", &brand_domain());
        let d_container = dict("p_container", &container_domain());
        let d_segment = dict("c_mktsegment", &owned(MKTSEGMENTS));
        let d_region = dict("r_name", &owned(REGIONS));

        let date_lo = encode_date(1992, 1, 1);
        let date_hi = encode_date(1998, 12, 1);

        // Column generator.
        fn gen_col(rng: &mut StdRng, rows: usize, f: impl Fn(&mut StdRng) -> i64) -> Vec<i64> {
            (0..rows).map(|_| f(rng)).collect()
        }
        let quantity = gen_col(&mut rng, rows, |r| r.random_range(1..=50));
        let extendedprice = gen_col(&mut rng, rows, |r| r.random_range(90_000..=10_000_000));
        let discount = gen_col(&mut rng, rows, |r| r.random_range(0..=10));
        let tax = gen_col(&mut rng, rows, |r| r.random_range(0..=8));
        let returnflag = gen_col(&mut rng, rows, |r| r.random_range(0..d_flag.len() as i64));
        let linestatus = gen_col(&mut rng, rows, |r| r.random_range(0..d_status.len() as i64));
        let shipdate = gen_col(&mut rng, rows, |r| r.random_range(date_lo..=date_hi));
        let shipinstruct = gen_col(&mut rng, rows, |r| {
            r.random_range(0..d_instruct.len() as i64)
        });
        let shipmode = gen_col(&mut rng, rows, |r| r.random_range(0..d_mode.len() as i64));
        let orderkey = gen_col(&mut rng, rows, |r| r.random_range(1..=1_500_000));

        let mut tables = HashMap::new();
        tables.insert(
            "lineitem".to_string(),
            Table::new()
                .with_column("l_orderkey", orderkey)
                .with_column("l_quantity", quantity.clone())
                .with_column("l_extendedprice", extendedprice.clone())
                .with_column("l_discount", discount.clone())
                .with_column("l_tax", tax)
                .with_column("l_returnflag", returnflag)
                .with_column("l_linestatus", linestatus)
                .with_column("l_shipdate", shipdate)
                .with_column("l_shipinstruct", shipinstruct.clone())
                .with_column("l_shipmode", shipmode.clone()),
        );

        // Pre-joined lineitem x part view for Q19. Quantities are
        // biased low so the in-range predicates match.
        let q19_quantity = gen_col(&mut rng, rows, |r| r.random_range(1..=30));
        let brand = gen_col(&mut rng, rows, |r| r.random_range(0..d_brand.len() as i64));
        let container = gen_col(&mut rng, rows, |r| {
            r.random_range(0..d_container.len() as i64)
        });
        let size = gen_col(&mut rng, rows, |r| r.random_range(1..=50));
        tables.insert(
            "lineitem_part".to_string(),
            Table::new()
                .with_column("l_quantity", q19_quantity)
                .with_column("l_extendedprice", extendedprice.clone())
                .with_column("l_discount", discount.clone())
                .with_column("l_shipinstruct", shipinstruct)
                .with_column("l_shipmode", shipmode)
                .with_column("p_brand", brand)
                .with_column("p_container", container)
                .with_column("p_size", size),
        );

        // Pre-joined customer x orders x lineitem view for Q3.
        let segment = gen_col(&mut rng, rows, |r| {
            r.random_range(0..d_segment.len() as i64)
        });
        let orderdate = gen_col(&mut rng, rows, |r| r.random_range(date_lo..=date_hi));
        let q3_shipdate = gen_col(&mut rng, rows, |r| r.random_range(date_lo..=date_hi));
        let q3_price = gen_col(&mut rng, rows, |r| r.random_range(90_000..=10_000_000));
        let q3_disc = gen_col(&mut rng, rows, |r| r.random_range(0..=10));
        tables.insert(
            "q3view".to_string(),
            Table::new()
                .with_column("c_mktsegment", segment)
                .with_column("o_orderdate", orderdate)
                .with_column("l_shipdate", q3_shipdate)
                .with_column("l_extendedprice", q3_price)
                .with_column("l_discount", q3_disc),
        );

        // Pre-joined view for Q5.
        let region = gen_col(&mut rng, rows, |r| r.random_range(0..d_region.len() as i64));
        let q5_orderdate = gen_col(&mut rng, rows, |r| r.random_range(date_lo..=date_hi));
        let c_nation = gen_col(&mut rng, rows, |r| r.random_range(0..25));
        // Bias supplier nations so the equality join predicate hits.
        let s_nation: Vec<i64> = c_nation
            .iter()
            .map(|&c| {
                if rng.random_range(0..4) == 0 {
                    c
                } else {
                    rng.random_range(0..25)
                }
            })
            .collect();
        let q5_price = gen_col(&mut rng, rows, |r| r.random_range(90_000..=10_000_000));
        let q5_disc = gen_col(&mut rng, rows, |r| r.random_range(0..=10));
        tables.insert(
            "q5view".to_string(),
            Table::new()
                .with_column("r_name", region)
                .with_column("o_orderdate", q5_orderdate)
                .with_column("c_nationkey", c_nation)
                .with_column("s_nationkey", s_nation)
                .with_column("l_extendedprice", q5_price)
                .with_column("l_discount", q5_disc),
        );

        TpchData {
            rows,
            tables,
            dicts,
        }
    }

    /// A column of a table.
    pub fn column(&self, table: &str, column: &str) -> &[i64] {
        self.tables
            .get(table)
            .and_then(|t| t.column(column))
            .unwrap_or_else(|| panic!("missing column {table}.{column}"))
    }

    /// Dictionary code of a string constant.
    pub fn code(&self, column: &str, value: &str) -> i64 {
        self.dicts
            .get(column)
            .and_then(|d| d.lookup(value))
            .unwrap_or_else(|| panic!("no dictionary code for {column}={value:?}"))
    }
}

/// Full `lineitem` schema (all columns a query might touch; unused
/// reader outputs exercise voider sugaring, paper §IV-D).
pub fn lineitem_schema() -> ArrowSchema {
    ArrowSchema::new(
        "lineitem",
        vec![
            ArrowField::new("l_orderkey", ArrowType::Int(64)),
            ArrowField::new("l_quantity", ArrowType::Int(32)),
            ArrowField::new(
                "l_extendedprice",
                ArrowType::Decimal {
                    precision: 12,
                    scale: 2,
                },
            ),
            ArrowField::new("l_discount", ArrowType::Int(8)),
            ArrowField::new("l_tax", ArrowType::Int(8)),
            ArrowField::new("l_returnflag", ArrowType::Utf8),
            ArrowField::new("l_linestatus", ArrowType::Utf8),
            ArrowField::new("l_shipdate", ArrowType::Date32),
            ArrowField::new("l_shipinstruct", ArrowType::Utf8),
            ArrowField::new("l_shipmode", ArrowType::Utf8),
        ],
    )
}

/// Pre-joined `lineitem x part` schema for Q19.
pub fn lineitem_part_schema() -> ArrowSchema {
    ArrowSchema::new(
        "lineitem_part",
        vec![
            ArrowField::new("l_quantity", ArrowType::Int(32)),
            ArrowField::new(
                "l_extendedprice",
                ArrowType::Decimal {
                    precision: 12,
                    scale: 2,
                },
            ),
            ArrowField::new("l_discount", ArrowType::Int(8)),
            ArrowField::new("l_shipinstruct", ArrowType::Utf8),
            ArrowField::new("l_shipmode", ArrowType::Utf8),
            ArrowField::new("p_brand", ArrowType::Utf8),
            ArrowField::new("p_container", ArrowType::Utf8),
            ArrowField::new("p_size", ArrowType::Int(32)),
        ],
    )
}

/// Pre-joined view schema for Q3.
pub fn q3view_schema() -> ArrowSchema {
    ArrowSchema::new(
        "q3view",
        vec![
            ArrowField::new("c_mktsegment", ArrowType::Utf8),
            ArrowField::new("o_orderdate", ArrowType::Date32),
            ArrowField::new("l_shipdate", ArrowType::Date32),
            ArrowField::new(
                "l_extendedprice",
                ArrowType::Decimal {
                    precision: 12,
                    scale: 2,
                },
            ),
            ArrowField::new("l_discount", ArrowType::Int(8)),
        ],
    )
}

/// Pre-joined view schema for Q5.
pub fn q5view_schema() -> ArrowSchema {
    ArrowSchema::new(
        "q5view",
        vec![
            ArrowField::new("r_name", ArrowType::Utf8),
            ArrowField::new("o_orderdate", ArrowType::Date32),
            ArrowField::new("c_nationkey", ArrowType::Int(8)),
            ArrowField::new("s_nationkey", ArrowType::Int(8)),
            ArrowField::new(
                "l_extendedprice",
                ArrowType::Decimal {
                    precision: 12,
                    scale: 2,
                },
            ),
            ArrowField::new("l_discount", ArrowType::Int(8)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TpchData::generate(GenOptions::default());
        let b = TpchData::generate(GenOptions::default());
        assert_eq!(
            a.column("lineitem", "l_quantity"),
            b.column("lineitem", "l_quantity")
        );
        assert_eq!(
            a.column("q5view", "s_nationkey"),
            b.column("q5view", "s_nationkey")
        );
    }

    #[test]
    fn seeds_change_data() {
        let a = TpchData::generate(GenOptions::default());
        let b = TpchData::generate(GenOptions {
            seed: 99,
            ..GenOptions::default()
        });
        assert_ne!(
            a.column("lineitem", "l_quantity"),
            b.column("lineitem", "l_quantity")
        );
    }

    #[test]
    fn domains_respected() {
        let d = TpchData::generate(GenOptions {
            rows: 2000,
            seed: 3,
        });
        assert!(d
            .column("lineitem", "l_quantity")
            .iter()
            .all(|&q| (1..=50).contains(&q)));
        assert!(d
            .column("lineitem", "l_discount")
            .iter()
            .all(|&x| (0..=10).contains(&x)));
        let flags = d.column("lineitem", "l_returnflag");
        assert!(flags.iter().all(|&f| (0..3).contains(&f)));
        // All three flags appear at 2000 rows.
        for code in 0..3 {
            assert!(flags.contains(&code), "flag {code} missing");
        }
    }

    #[test]
    fn dictionary_codes_match_domains() {
        let d = TpchData::generate(GenOptions::default());
        assert_eq!(d.code("l_returnflag", "A"), 0);
        assert_eq!(d.code("l_returnflag", "R"), 2);
        assert_eq!(d.code("l_shipmode", "AIR"), 0);
        assert_eq!(d.code("l_shipmode", "AIR REG"), 1);
        assert_eq!(d.code("r_name", "ASIA"), 2);
        assert_eq!(d.code("c_mktsegment", "BUILDING"), 1);
        assert_eq!(d.code("p_brand", "Brand#12"), 1);
        assert_eq!(d.code("p_container", "SM CASE"), 0);
        assert_eq!(d.code("p_container", "MED BAG"), 10);
    }

    #[test]
    fn schemas_cover_table_columns() {
        let d = TpchData::generate(GenOptions { rows: 8, seed: 1 });
        for (schema, table) in [
            (lineitem_schema(), "lineitem"),
            (lineitem_part_schema(), "lineitem_part"),
            (q3view_schema(), "q3view"),
            (q5view_schema(), "q5view"),
        ] {
            let t = &d.tables[table];
            for field in &schema.fields {
                assert!(
                    t.column(&field.name).is_some(),
                    "{table} missing {}",
                    field.name
                );
            }
        }
    }
}
