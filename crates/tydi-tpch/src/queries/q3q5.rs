//! TPC-H Queries 3 and 5 over pre-joined Fletcher views.
//!
//! Both queries share the `sum(l_extendedprice * (1 - l_discount))`
//! revenue tail; they differ in their predicates. Per-key grouping
//! (orderkey for Q3, nation for Q5) is reduced to the total aggregate
//! — intermediate materialisation is outside the paper's scope (§VI).

use super::{revenue_tail, row_revenue, QueryCase};
use crate::data::TpchData;
use tydi_fletcher::encode::encode_date;
use tydi_fletcher::generate_reader_package;

const Q3_SQL: &str = "\
select
    l_orderkey,
    sum(l_extendedprice * (1 - l_discount)) as revenue,
    o_orderdate,
    o_shippriority
from
    customer,
    orders,
    lineitem
where
    c_mktsegment = 'BUILDING'
    and c_custkey = o_custkey
    and l_orderkey = o_orderkey
    and o_orderdate < date '1995-03-15'
    and l_shipdate > date '1995-03-15'
group by
    l_orderkey, o_orderdate, o_shippriority
order by
    revenue desc, o_orderdate;";

const Q5_SQL: &str = "\
select
    n_name,
    sum(l_extendedprice * (1 - l_discount)) as revenue
from
    customer, orders, lineitem, supplier, nation, region
where
    c_custkey = o_custkey
    and l_orderkey = o_orderkey
    and l_suppkey = s_suppkey
    and c_nationkey = s_nationkey
    and s_nationkey = n_nationkey
    and n_regionkey = r_regionkey
    and r_name = 'ASIA'
    and o_orderdate >= date '1994-01-01'
    and o_orderdate < date '1995-01-01'
group by
    n_name
order by
    revenue desc;";

fn q3_source(segment_code: i64, date: i64, rows: usize) -> String {
    format!(
        r#"package q3;
use std;
use fletcher_q3view;

// TPC-H 3: shipping priority (revenue over the pre-joined view).
{types}
streamlet q3_s {{
    revenue : Agg out,
}}
@NoStrictType
impl q3_i of q3_s {{
    instance rd(q3view_reader_i),
    // where c_mktsegment = 'BUILDING'
    instance c_seg(eq_const_i<type q3view_c_mktsegment_t, {segment_code}>),
    rd.c_mktsegment => c_seg.i,
    // and o_orderdate < :date and l_shipdate > :date
    instance c_odate(lt_const_i<type q3view_o_orderdate_t, {date}>),
    rd.o_orderdate => c_odate.i,
    instance c_sdate(gt_const_i<type q3view_l_shipdate_t, {date}>),
    rd.l_shipdate => c_sdate.i,
    instance keep_all(and_n_i<3>),
    c_seg.o => keep_all.i[0],
    c_odate.o => keep_all.i[1],
    c_sdate.o => keep_all.i[2],
{tail}}}
"#,
        types = super::money_types(),
        tail = revenue_tail(
            "q3view",
            "l_extendedprice",
            "l_discount",
            "keep_all.o",
            rows
        ),
    )
}

fn q5_source(region_code: i64, d0: i64, d1: i64, rows: usize) -> String {
    format!(
        r#"package q5;
use std;
use fletcher_q5view;

// TPC-H 5: local supplier volume (revenue over the pre-joined view).
{types}
streamlet q5_s {{
    revenue : Agg out,
}}
@NoStrictType
impl q5_i of q5_s {{
    instance rd(q5view_reader_i),
    // where r_name = 'ASIA'
    instance c_region(eq_const_i<type q5view_r_name_t, {region_code}>),
    rd.r_name => c_region.i,
    // and o_orderdate >= :d0 and o_orderdate < :d1
    instance c_date_lo(ge_const_i<type q5view_o_orderdate_t, {d0}>),
    instance c_date_hi(lt_const_i<type q5view_o_orderdate_t, {d1}>),
    rd.o_orderdate => c_date_lo.i,
    rd.o_orderdate => c_date_hi.i,
    // and c_nationkey = s_nationkey (the local-supplier join condition)
    instance c_nation(eq_i<type q5view_c_nationkey_t, type q5view_s_nationkey_t>),
    rd.c_nationkey => c_nation.in0,
    rd.s_nationkey => c_nation.in1,
    instance keep_all(and_n_i<4>),
    c_region.o => keep_all.i[0],
    c_date_lo.o => keep_all.i[1],
    c_date_hi.o => keep_all.i[2],
    c_nation.o => keep_all.i[3],
{tail}}}
"#,
        types = super::money_types(),
        tail = revenue_tail(
            "q5view",
            "l_extendedprice",
            "l_discount",
            "keep_all.o",
            rows
        ),
    )
}

/// Q3 reference result.
pub fn q3_reference(data: &TpchData, segment_code: i64, date: i64) -> i64 {
    let seg = data.column("q3view", "c_mktsegment");
    let odate = data.column("q3view", "o_orderdate");
    let sdate = data.column("q3view", "l_shipdate");
    let price = data.column("q3view", "l_extendedprice");
    let disc = data.column("q3view", "l_discount");
    let mut revenue = 0;
    for i in 0..seg.len() {
        if seg[i] == segment_code && odate[i] < date && sdate[i] > date {
            revenue += row_revenue(price[i], disc[i]);
        }
    }
    revenue
}

/// Q5 reference result.
pub fn q5_reference(data: &TpchData, region_code: i64, d0: i64, d1: i64) -> i64 {
    let region = data.column("q5view", "r_name");
    let odate = data.column("q5view", "o_orderdate");
    let cn = data.column("q5view", "c_nationkey");
    let sn = data.column("q5view", "s_nationkey");
    let price = data.column("q5view", "l_extendedprice");
    let disc = data.column("q5view", "l_discount");
    let mut revenue = 0;
    for i in 0..region.len() {
        if region[i] == region_code && odate[i] >= d0 && odate[i] < d1 && cn[i] == sn[i] {
            revenue += row_revenue(price[i], disc[i]);
        }
    }
    revenue
}

/// Builds the Q3 case.
pub fn build_q3(data: &TpchData) -> QueryCase {
    let segment = data.code("c_mktsegment", "BUILDING");
    let date = encode_date(1995, 3, 15);
    QueryCase {
        id: "q3",
        title: "TPC-H 3",
        sql: Q3_SQL,
        fletcher_sources: vec![(
            "fletcher_q3view.td".to_string(),
            generate_reader_package(&crate::data::q3view_schema()),
        )],
        query_source: ("q3.td".to_string(), q3_source(segment, date, data.rows)),
        top_impl: "q3_i".to_string(),
        sugaring: true,
        expected: vec![(
            "revenue".to_string(),
            vec![q3_reference(data, segment, date)],
        )],
    }
}

/// Builds the Q5 case.
pub fn build_q5(data: &TpchData) -> QueryCase {
    let region = data.code("r_name", "ASIA");
    let d0 = encode_date(1994, 1, 1);
    let d1 = encode_date(1995, 1, 1);
    QueryCase {
        id: "q5",
        title: "TPC-H 5",
        sql: Q5_SQL,
        fletcher_sources: vec![(
            "fletcher_q5view.td".to_string(),
            generate_reader_package(&crate::data::q5view_schema()),
        )],
        query_source: ("q5.td".to_string(), q5_source(region, d0, d1, data.rows)),
        top_impl: "q5_i".to_string(),
        sugaring: true,
        expected: vec![(
            "revenue".to_string(),
            vec![q5_reference(data, region, d0, d1)],
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::GenOptions;

    #[test]
    fn references_are_selective() {
        let data = TpchData::generate(GenOptions {
            rows: 4096,
            seed: 5,
        });
        let q3 = q3_reference(
            &data,
            data.code("c_mktsegment", "BUILDING"),
            encode_date(1995, 3, 15),
        );
        assert!(q3 > 0);
        let q5 = q5_reference(
            &data,
            data.code("r_name", "ASIA"),
            encode_date(1994, 1, 1),
            encode_date(1995, 1, 1),
        );
        assert!(q5 > 0);
    }

    #[test]
    fn sources_reference_views() {
        let data = TpchData::generate(GenOptions { rows: 16, seed: 1 });
        let q3 = build_q3(&data);
        assert!(q3.query_source.1.contains("q3view_reader_i"));
        let q5 = build_q5(&data);
        assert!(q5.query_source.1.contains("eq_i<type q5view_c_nationkey_t"));
    }
}
