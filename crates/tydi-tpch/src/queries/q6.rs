//! TPC-H Query 6: the forecasting revenue change query.
//!
//! `sum(l_extendedprice * l_discount)` over rows passing three range
//! predicates. The smallest query of Table IV (9 SQL lines); both
//! `l_shipdate` and `l_discount` feed two consumers each, so sugaring
//! inserts duplicators, and the unused reader columns get voiders.

use super::QueryCase;
use crate::data::TpchData;
use tydi_fletcher::encode::encode_date;
use tydi_fletcher::generate_reader_package;

const SQL: &str = "\
select
    sum(l_extendedprice * l_discount) as revenue
from
    lineitem
where
    l_shipdate >= date '1994-01-01'
    and l_shipdate < date '1995-01-01'
    and l_discount between 0.05 and 0.07
    and l_quantity < 24;";

/// Query parameters (validation values of the TPC-H spec).
pub struct Params {
    /// Ship date window start (inclusive), day number.
    pub date_lo: i64,
    /// Ship date window end (exclusive).
    pub date_hi: i64,
    /// Discount window (inclusive), percent.
    pub disc_lo: i64,
    /// Discount window end (inclusive).
    pub disc_hi: i64,
    /// Quantity bound (exclusive).
    pub qty: i64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            date_lo: encode_date(1994, 1, 1),
            date_hi: encode_date(1995, 1, 1),
            disc_lo: 5,
            disc_hi: 7,
            qty: 24,
        }
    }
}

fn source(p: &Params) -> String {
    format!(
        r#"package q6;
use std;
use fletcher_lineitem;

// TPC-H 6: revenue from discounted small-quantity shipments.
{types}
streamlet q6_s {{
    revenue : Agg out,
}}
@NoStrictType
impl q6_i of q6_s {{
    instance rd(lineitem_reader_i),
    // where l_shipdate >= :d0 and l_shipdate < :d1
    instance c_date_lo(ge_const_i<type lineitem_l_shipdate_t, {date_lo}>),
    instance c_date_hi(lt_const_i<type lineitem_l_shipdate_t, {date_hi}>),
    rd.l_shipdate => c_date_lo.i,
    rd.l_shipdate => c_date_hi.i,
    // and l_discount between :lo and :hi
    instance c_disc_lo(ge_const_i<type lineitem_l_discount_t, {disc_lo}>),
    instance c_disc_hi(le_const_i<type lineitem_l_discount_t, {disc_hi}>),
    rd.l_discount => c_disc_lo.i,
    rd.l_discount => c_disc_hi.i,
    // and l_quantity < :q
    instance c_qty(lt_const_i<type lineitem_l_quantity_t, {qty}>),
    rd.l_quantity => c_qty.i,
    instance keep_all(and_n_i<5>),
    c_date_lo.o => keep_all.i[0],
    c_date_hi.o => keep_all.i[1],
    c_disc_lo.o => keep_all.i[2],
    c_disc_hi.o => keep_all.i[3],
    c_qty.o => keep_all.i[4],
    // revenue = l_extendedprice * l_discount
    instance rev_mul(multiplier_i<type lineitem_l_extendedprice_t, type lineitem_l_discount_t, type Money>),
    rd.l_extendedprice => rev_mul.in0,
    rd.l_discount => rev_mul.in1,
    instance keep_rev(filter_i<type Money>),
    rev_mul.o => keep_rev.i,
    keep_all.o => keep_rev.keep,
    instance total(sum_i<type Money, type Agg>),
    keep_rev.o => total.i,
    total.o => revenue,
}}
"#,
        types = super::money_types(),
        date_lo = p.date_lo,
        date_hi = p.date_hi,
        disc_lo = p.disc_lo,
        disc_hi = p.disc_hi,
        qty = p.qty,
    )
}

/// The reference executor (same integer semantics as the pipeline).
pub fn reference(data: &TpchData, p: &Params) -> i64 {
    let shipdate = data.column("lineitem", "l_shipdate");
    let discount = data.column("lineitem", "l_discount");
    let quantity = data.column("lineitem", "l_quantity");
    let price = data.column("lineitem", "l_extendedprice");
    let mut revenue = 0i64;
    for i in 0..shipdate.len() {
        if shipdate[i] >= p.date_lo
            && shipdate[i] < p.date_hi
            && discount[i] >= p.disc_lo
            && discount[i] <= p.disc_hi
            && quantity[i] < p.qty
        {
            revenue += price[i] * discount[i];
        }
    }
    revenue
}

/// Builds the Q6 case.
pub fn build(data: &TpchData) -> QueryCase {
    let params = Params::default();
    QueryCase {
        id: "q6",
        title: "TPC-H 6",
        sql: SQL,
        fletcher_sources: vec![(
            "fletcher_lineitem.td".to_string(),
            generate_reader_package(&crate::data::lineitem_schema()),
        )],
        query_source: ("q6.td".to_string(), source(&params)),
        top_impl: "q6_i".to_string(),
        sugaring: true,
        expected: vec![("revenue".to_string(), vec![reference(data, &params)])],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::GenOptions;

    #[test]
    fn reference_is_selective() {
        let data = TpchData::generate(GenOptions {
            rows: 4096,
            seed: 11,
        });
        let p = Params::default();
        let all: i64 = {
            let price = data.column("lineitem", "l_extendedprice");
            let disc = data.column("lineitem", "l_discount");
            price.iter().zip(disc).map(|(p, d)| p * d).sum()
        };
        let filtered = reference(&data, &p);
        assert!(filtered > 0, "predicate never matched");
        assert!(filtered < all, "predicate matched everything");
    }

    #[test]
    fn source_embeds_parameters() {
        let p = Params::default();
        let s = source(&p);
        assert!(s.contains(&format!(
            "ge_const_i<type lineitem_l_shipdate_t, {}>",
            p.date_lo
        )));
        assert!(s.contains("and_n_i<5>"));
    }
}
