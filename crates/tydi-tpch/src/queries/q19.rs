//! TPC-H Query 19: discounted revenue, the paper's worked example.
//!
//! Three structurally similar `or` clauses (which the paper credits
//! for Q19's high VHDL/Tydi ratio), each with an `in (...)` list that
//! expands generatively over an array of dictionary codes — the
//! `p_container in ('MED BAG', ...)` example of paper §IV-A.

use super::{revenue_tail, row_revenue, QueryCase};
use crate::data::TpchData;
use tydi_fletcher::generate_reader_package;

const SQL: &str = "\
select
    sum(l_extendedprice * (1 - l_discount)) as revenue
from
    lineitem,
    part
where
    (
        p_partkey = l_partkey
        and p_brand = 'Brand#12'
        and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        and l_quantity >= 1 and l_quantity <= 11
        and p_size between 1 and 5
        and l_shipmode in ('AIR', 'AIR REG')
        and l_shipinstruct = 'DELIVER IN PERSON'
    )
    or
    (
        p_partkey = l_partkey
        and p_brand = 'Brand#23'
        and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        and l_quantity >= 10 and l_quantity <= 20
        and p_size between 1 and 10
        and l_shipmode in ('AIR', 'AIR REG')
        and l_shipinstruct = 'DELIVER IN PERSON'
    )
    or
    (
        p_partkey = l_partkey
        and p_brand = 'Brand#34'
        and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        and l_quantity >= 20 and l_quantity <= 30
        and p_size between 1 and 15
        and l_shipmode in ('AIR', 'AIR REG')
        and l_shipinstruct = 'DELIVER IN PERSON'
    );";

/// The per-clause parameters, dictionary-encoded.
pub struct Params {
    /// Brand code per clause.
    pub brands: [i64; 3],
    /// Container codes per clause (the `in` lists).
    pub containers: [[i64; 4]; 3],
    /// Quantity lower bounds (inclusive).
    pub qty_lo: [i64; 3],
    /// Quantity upper bounds (inclusive).
    pub qty_hi: [i64; 3],
    /// Size upper bounds (inclusive; lower bound is 1).
    pub size_hi: [i64; 3],
    /// Accepted ship modes.
    pub shipmodes: [i64; 2],
    /// Required ship instruction.
    pub shipinstruct: i64,
}

impl Params {
    /// Standard validation parameters, encoded against `data`'s
    /// dictionaries.
    pub fn standard(data: &TpchData) -> Params {
        let c = |v: &str| data.code("p_container", v);
        Params {
            brands: [
                data.code("p_brand", "Brand#12"),
                data.code("p_brand", "Brand#23"),
                data.code("p_brand", "Brand#34"),
            ],
            containers: [
                [c("SM CASE"), c("SM BOX"), c("SM PACK"), c("SM PKG")],
                [c("MED BAG"), c("MED BOX"), c("MED PKG"), c("MED PACK")],
                [c("LG CASE"), c("LG BOX"), c("LG PACK"), c("LG PKG")],
            ],
            qty_lo: [1, 10, 20],
            qty_hi: [11, 20, 30],
            size_hi: [5, 10, 15],
            shipmodes: [
                data.code("l_shipmode", "AIR"),
                data.code("l_shipmode", "AIR REG"),
            ],
            shipinstruct: data.code("l_shipinstruct", "DELIVER IN PERSON"),
        }
    }
}

fn fmt_array(values: &[i64]) -> String {
    let inner: Vec<String> = values.iter().map(i64::to_string).collect();
    format!("[{}]", inner.join(", "))
}

fn source(p: &Params, rows: usize) -> String {
    let containers: Vec<String> = p.containers.iter().map(|c| fmt_array(c)).collect();
    format!(
        r#"package q19;
use std;
use fletcher_lineitem_part;

// TPC-H 19: three or-clauses with shared structure, expanded
// generatively over per-clause constant arrays.
{types}
const brands : [int] = {brands};
const containers : [[int]] = [{containers}];
const qty_lo : [int] = {qty_lo};
const qty_hi : [int] = {qty_hi};
const size_hi : [int] = {size_hi};
const shipmodes : [int] = {shipmodes};

streamlet q19_s {{
    revenue : Agg out,
}}
@NoStrictType
impl q19_i of q19_s {{
    instance rd(lineitem_part_reader_i),
    instance clauses(or_n_i<3>),
    for c in (0..3) {{
        // p_brand = :brand[c]
        instance brand_eq(eq_const_i<type lineitem_part_p_brand_t, brands[c]>),
        rd.p_brand => brand_eq.i,
        // p_container in (four options)
        instance cont_or(or_n_i<4>),
        for k in (0..4) {{
            instance cont_eq(eq_const_i<type lineitem_part_p_container_t, containers[c][k]>),
            rd.p_container => cont_eq.i,
            cont_eq.o => cont_or.i[k],
        }}
        // l_quantity between :lo[c] and :hi[c]
        instance q_lo(ge_const_i<type lineitem_part_l_quantity_t, qty_lo[c]>),
        instance q_hi(le_const_i<type lineitem_part_l_quantity_t, qty_hi[c]>),
        rd.l_quantity => q_lo.i,
        rd.l_quantity => q_hi.i,
        // p_size between 1 and :size[c]
        instance s_lo(ge_const_i<type lineitem_part_p_size_t, 1>),
        instance s_hi(le_const_i<type lineitem_part_p_size_t, size_hi[c]>),
        rd.p_size => s_lo.i,
        rd.p_size => s_hi.i,
        // l_shipmode in ('AIR', 'AIR REG')
        instance mode_or(or_n_i<2>),
        for k in (0..2) {{
            instance mode_eq(eq_const_i<type lineitem_part_l_shipmode_t, shipmodes[k]>),
            rd.l_shipmode => mode_eq.i,
            mode_eq.o => mode_or.i[k],
        }}
        // l_shipinstruct = 'DELIVER IN PERSON'
        instance instr_eq(eq_const_i<type lineitem_part_l_shipinstruct_t, {instr}>),
        rd.l_shipinstruct => instr_eq.i,
        instance clause_and(and_n_i<7>),
        brand_eq.o => clause_and.i[0],
        cont_or.o => clause_and.i[1],
        q_lo.o => clause_and.i[2],
        q_hi.o => clause_and.i[3],
        s_lo.o => clause_and.i[4],
        s_hi.o => clause_and.i[5],
        instr_eq.o => clause_and.i[6],
        clause_and.o => clauses.i[c],
    }}
{tail}}}
"#,
        types = super::money_types(),
        brands = fmt_array(&p.brands),
        containers = containers.join(", "),
        qty_lo = fmt_array(&p.qty_lo),
        qty_hi = fmt_array(&p.qty_hi),
        size_hi = fmt_array(&p.size_hi),
        shipmodes = fmt_array(&p.shipmodes),
        instr = p.shipinstruct,
        tail = revenue_tail(
            "lineitem_part",
            "l_extendedprice",
            "l_discount",
            "clauses.o",
            rows
        ),
    )
}

/// Reference executor.
pub fn reference(data: &TpchData, p: &Params) -> i64 {
    let qty = data.column("lineitem_part", "l_quantity");
    let price = data.column("lineitem_part", "l_extendedprice");
    let disc = data.column("lineitem_part", "l_discount");
    let instr = data.column("lineitem_part", "l_shipinstruct");
    let mode = data.column("lineitem_part", "l_shipmode");
    let brand = data.column("lineitem_part", "p_brand");
    let container = data.column("lineitem_part", "p_container");
    let size = data.column("lineitem_part", "p_size");
    let mut revenue = 0;
    for i in 0..qty.len() {
        let shared = p.shipmodes.contains(&mode[i]) && instr[i] == p.shipinstruct;
        let matched = (0..3).any(|c| {
            brand[i] == p.brands[c]
                && p.containers[c].contains(&container[i])
                && qty[i] >= p.qty_lo[c]
                && qty[i] <= p.qty_hi[c]
                && size[i] >= 1
                && size[i] <= p.size_hi[c]
                && shared
        });
        if matched {
            revenue += row_revenue(price[i], disc[i]);
        }
    }
    revenue
}

/// Builds the Q19 case.
pub fn build(data: &TpchData) -> QueryCase {
    let params = Params::standard(data);
    QueryCase {
        id: "q19",
        title: "TPC-H 19",
        sql: SQL,
        fletcher_sources: vec![(
            "fletcher_lineitem_part.td".to_string(),
            generate_reader_package(&crate::data::lineitem_part_schema()),
        )],
        query_source: ("q19.td".to_string(), source(&params, data.rows)),
        top_impl: "q19_i".to_string(),
        sugaring: true,
        expected: vec![("revenue".to_string(), vec![reference(data, &params)])],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::GenOptions;

    #[test]
    fn reference_matches_some_rows() {
        // Q19 is highly selective; use a large row count.
        let data = TpchData::generate(GenOptions {
            rows: 60_000,
            seed: 19,
        });
        let p = Params::standard(&data);
        let revenue = reference(&data, &p);
        assert!(revenue > 0, "no row matched Q19 at 60k rows");
    }

    #[test]
    fn source_expands_clause_arrays() {
        let data = TpchData::generate(GenOptions { rows: 16, seed: 1 });
        let p = Params::standard(&data);
        let s = source(&p, 16);
        assert!(s.contains("const containers : [[int]]"));
        assert!(s.contains("containers[c][k]"));
        assert!(s.contains("and_n_i<7>"));
    }
}
