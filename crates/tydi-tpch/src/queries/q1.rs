//! TPC-H Query 1: the pricing summary report.
//!
//! Group-by over `(l_returnflag, l_linestatus)` is unrolled across the
//! four observed combinations with the generative `for` syntax; each
//! combination filters four value streams and a row counter.
//!
//! Two variants reproduce the paper's sugaring comparison (Table IV
//! rows "TPC-H 1" and "TPC-H 1 (without sugaring)"): the sugared
//! source lets the compiler insert duplicators and voiders; the
//! desugared source spells out every `duplicator_i` / `voider_i`
//! instance and is compiled with sugaring disabled.

use super::QueryCase;
use crate::data::TpchData;
use tydi_fletcher::encode::encode_date;
use tydi_fletcher::generate_reader_package;

const SQL: &str = "\
select
    l_returnflag,
    l_linestatus,
    sum(l_quantity) as sum_qty,
    sum(l_extendedprice) as sum_base_price,
    sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
    sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
    avg(l_quantity) as avg_qty,
    avg(l_extendedprice) as avg_price,
    avg(l_discount) as avg_disc,
    count(*) as count_order
from
    lineitem
where
    l_shipdate <= date '1998-12-01' - interval '90' day
group by
    l_returnflag,
    l_linestatus
order by
    l_returnflag,
    l_linestatus;";

/// The four `(returnflag, linestatus)` combinations of the TPC-H
/// answer set, in output order.
pub const COMBOS: [(&str, &str); 4] = [("A", "F"), ("N", "F"), ("N", "O"), ("R", "F")];

fn preamble(package: &str, data: &TpchData, date: i64) -> String {
    let flags: Vec<String> = COMBOS
        .iter()
        .map(|(f, _)| data.code("l_returnflag", f).to_string())
        .collect();
    let statuses: Vec<String> = COMBOS
        .iter()
        .map(|(_, s)| data.code("l_linestatus", s).to_string())
        .collect();
    format!(
        r#"package {package};
use std;
use fletcher_lineitem;

// TPC-H 1: pricing summary, unrolled over the four observed
// (l_returnflag, l_linestatus) combinations.
{types}
const flags : [int] = [{flags}];
const statuses : [int] = [{statuses}];
const cutoff : int = {date};

streamlet q1_s {{
    sum_qty : Agg out [4],
    sum_base : Agg out [4],
    sum_disc : Agg out [4],
    sum_charge : Agg out [4],
    count_order : Agg out [4],
}}
"#,
        types = super::money_types(),
        flags = flags.join(", "),
        statuses = statuses.join(", "),
    )
}

/// The shared value-stream block: `disc_price` and `charge`.
/// `price_src` is the endpoint feeding the disc_price multiplier.
fn value_streams(rows: usize, price_src: &str) -> String {
    format!(
        r#"    // disc_price = l_extendedprice * (100 - l_discount) / 100
    instance hundred_a(const_vec_i<type lineitem_l_discount_t, 100, {rows}>),
    instance one_minus(subtractor_i<type lineitem_l_discount_t, type lineitem_l_discount_t, type lineitem_l_discount_t>),
    hundred_a.o => one_minus.in0,
    rd.l_discount => one_minus.in1,
    instance disc_mul(multiplier_i<type lineitem_l_extendedprice_t, type lineitem_l_discount_t, type Money>),
    {price_src} => disc_mul.in0,
    one_minus.o => disc_mul.in1,
    instance hundred_b(const_vec_i<type Money, 100, {rows}>),
    instance disc_div(divider_i<type Money, type Money, type Money>),
    disc_mul.o => disc_div.in0,
    hundred_b.o => disc_div.in1,
    // charge = disc_price * (100 + l_tax) / 100
    instance hundred_c(const_vec_i<type lineitem_l_tax_t, 100, {rows}>),
    instance tax_plus(adder_i<type lineitem_l_tax_t, type lineitem_l_tax_t, type lineitem_l_tax_t>),
    hundred_c.o => tax_plus.in0,
    rd.l_tax => tax_plus.in1,
    instance charge_mul(multiplier_i<type Money, type lineitem_l_tax_t, type Money>),
    {disc_src} => charge_mul.in0,
    tax_plus.o => charge_mul.in1,
    instance hundred_d(const_vec_i<type Money, 100, {rows}>),
    instance charge_div(divider_i<type Money, type Money, type Money>),
    charge_mul.o => charge_div.in0,
    hundred_d.o => charge_div.in1,
    // where l_shipdate <= :cutoff
    instance date_ok(le_const_i<type lineitem_l_shipdate_t, cutoff>),
    rd.l_shipdate => date_ok.i,
"#,
        disc_src = if price_src.starts_with("dup_") {
            "dup_discprice.o[4]"
        } else {
            "disc_div.o"
        },
    )
}

/// The sugared query source: multi-use streams connected directly;
/// the compiler infers duplicators and voiders (paper Fig. 4).
fn sugared_source(data: &TpchData, date: i64, rows: usize) -> String {
    let mut s = preamble("q1", data, date);
    s.push_str("@NoStrictType\nimpl q1_i of q1_s {\n    instance rd(lineitem_reader_i),\n");
    s.push_str(&value_streams(rows, "rd.l_extendedprice"));
    s.push_str(
        r#"    for c in (0..4) {
        instance f_eq(eq_const_i<type lineitem_l_returnflag_t, flags[c]>),
        rd.l_returnflag => f_eq.i,
        instance s_eq(eq_const_i<type lineitem_l_linestatus_t, statuses[c]>),
        rd.l_linestatus => s_eq.i,
        instance keep(and_n_i<3>),
        f_eq.o => keep.i[0],
        s_eq.o => keep.i[1],
        date_ok.o => keep.i[2],
        instance f_qty(filter_i<type lineitem_l_quantity_t>),
        rd.l_quantity => f_qty.i,
        keep.o => f_qty.keep,
        instance s_qty(sum_i<type lineitem_l_quantity_t, type Agg>),
        f_qty.o => s_qty.i,
        s_qty.o => sum_qty[c],
        instance n_rows(count_i<type lineitem_l_quantity_t, type Agg>),
        f_qty.o => n_rows.i,
        n_rows.o => count_order[c],
        instance f_base(filter_i<type lineitem_l_extendedprice_t>),
        rd.l_extendedprice => f_base.i,
        keep.o => f_base.keep,
        instance s_base(sum_i<type lineitem_l_extendedprice_t, type Agg>),
        f_base.o => s_base.i,
        s_base.o => sum_base[c],
        instance f_disc(filter_i<type Money>),
        disc_div.o => f_disc.i,
        keep.o => f_disc.keep,
        instance s_disc(sum_i<type Money, type Agg>),
        f_disc.o => s_disc.i,
        s_disc.o => sum_disc[c],
        instance f_charge(filter_i<type Money>),
        charge_div.o => f_charge.i,
        keep.o => f_charge.keep,
        instance s_charge(sum_i<type Money, type Agg>),
        f_charge.o => s_charge.i,
        s_charge.o => sum_charge[c],
    }
}
"#,
    );
    s
}

/// The desugared source: every duplicator and voider written out, as a
/// designer would have to without the sugaring pass.
fn desugared_source(data: &TpchData, date: i64, rows: usize) -> String {
    let mut s = preamble("q1_nosugar", data, date);
    s.push_str("@NoStrictType\nimpl q1_nosugar_i of q1_s {\n    instance rd(lineitem_reader_i),\n");
    s.push_str(
        r#"    // voiders for reader outputs this query does not use
    instance v_okey(voider_i<type lineitem_l_orderkey_t>),
    rd.l_orderkey => v_okey.i,
    instance v_instr(voider_i<type lineitem_l_shipinstruct_t>),
    rd.l_shipinstruct => v_instr.i,
    instance v_mode(voider_i<type lineitem_l_shipmode_t>),
    rd.l_shipmode => v_mode.i,
    // explicit duplicators for every multiply-used stream
    instance dup_flag(duplicator_i<type lineitem_l_returnflag_t, 4>),
    rd.l_returnflag => dup_flag.i,
    instance dup_status(duplicator_i<type lineitem_l_linestatus_t, 4>),
    rd.l_linestatus => dup_status.i,
    instance dup_qty(duplicator_i<type lineitem_l_quantity_t, 4>),
    rd.l_quantity => dup_qty.i,
    instance dup_price(duplicator_i<type lineitem_l_extendedprice_t, 5>),
    rd.l_extendedprice => dup_price.i,
    instance dup_discprice(duplicator_i<type Money, 5>),
"#,
    );
    s.push_str(&value_streams(rows, "dup_price.o[4]"));
    s.push_str(
        r#"    disc_div.o => dup_discprice.i,
    instance dup_charge(duplicator_i<type Money, 4>),
    charge_div.o => dup_charge.i,
    instance dup_dateok(duplicator_i<type BoolStream, 4>),
    date_ok.o => dup_dateok.i,
    for c in (0..4) {
        instance f_eq(eq_const_i<type lineitem_l_returnflag_t, flags[c]>),
        dup_flag.o[c] => f_eq.i,
        instance s_eq(eq_const_i<type lineitem_l_linestatus_t, statuses[c]>),
        dup_status.o[c] => s_eq.i,
        instance keep(and_n_i<3>),
        f_eq.o => keep.i[0],
        s_eq.o => keep.i[1],
        dup_dateok.o[c] => keep.i[2],
        instance dup_keep(duplicator_i<type BoolStream, 4>),
        keep.o => dup_keep.i,
        instance f_qty(filter_i<type lineitem_l_quantity_t>),
        dup_qty.o[c] => f_qty.i,
        dup_keep.o[0] => f_qty.keep,
        instance dup_fq(duplicator_i<type lineitem_l_quantity_t, 2>),
        f_qty.o => dup_fq.i,
        instance s_qty(sum_i<type lineitem_l_quantity_t, type Agg>),
        dup_fq.o[0] => s_qty.i,
        s_qty.o => sum_qty[c],
        instance n_rows(count_i<type lineitem_l_quantity_t, type Agg>),
        dup_fq.o[1] => n_rows.i,
        n_rows.o => count_order[c],
        instance f_base(filter_i<type lineitem_l_extendedprice_t>),
        dup_price.o[c] => f_base.i,
        dup_keep.o[1] => f_base.keep,
        instance s_base(sum_i<type lineitem_l_extendedprice_t, type Agg>),
        f_base.o => s_base.i,
        s_base.o => sum_base[c],
        instance f_disc(filter_i<type Money>),
        dup_discprice.o[c] => f_disc.i,
        dup_keep.o[2] => f_disc.keep,
        instance s_disc(sum_i<type Money, type Agg>),
        f_disc.o => s_disc.i,
        s_disc.o => sum_disc[c],
        instance f_charge(filter_i<type Money>),
        dup_charge.o[c] => f_charge.i,
        dup_keep.o[3] => f_charge.keep,
        instance s_charge(sum_i<type Money, type Agg>),
        f_charge.o => s_charge.i,
        s_charge.o => sum_charge[c],
    }
}
"#,
    );
    s
}

/// Per-combination aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComboAggregates {
    /// `sum(l_quantity)`.
    pub sum_qty: i64,
    /// `sum(l_extendedprice)`.
    pub sum_base: i64,
    /// `sum(disc_price)`.
    pub sum_disc: i64,
    /// `sum(charge)`.
    pub sum_charge: i64,
    /// `count(*)`.
    pub count: i64,
}

/// Reference executor over the four combinations.
pub fn reference(data: &TpchData, date: i64) -> [ComboAggregates; 4] {
    let flag = data.column("lineitem", "l_returnflag");
    let status = data.column("lineitem", "l_linestatus");
    let qty = data.column("lineitem", "l_quantity");
    let price = data.column("lineitem", "l_extendedprice");
    let disc = data.column("lineitem", "l_discount");
    let tax = data.column("lineitem", "l_tax");
    let shipdate = data.column("lineitem", "l_shipdate");
    let combo_codes: Vec<(i64, i64)> = COMBOS
        .iter()
        .map(|(f, s)| (data.code("l_returnflag", f), data.code("l_linestatus", s)))
        .collect();
    let mut out = [ComboAggregates::default(); 4];
    for i in 0..flag.len() {
        if shipdate[i] > date {
            continue;
        }
        let Some(c) = combo_codes
            .iter()
            .position(|&(f, s)| f == flag[i] && s == status[i])
        else {
            continue;
        };
        let disc_price = price[i] * (100 - disc[i]) / 100;
        let charge = disc_price * (100 + tax[i]) / 100;
        out[c].sum_qty += qty[i];
        out[c].sum_base += price[i];
        out[c].sum_disc += disc_price;
        out[c].sum_charge += charge;
        out[c].count += 1;
    }
    out
}

/// Builds the Q1 case (`desugared = true` gives the explicit variant
/// compiled without sugaring).
pub fn build(data: &TpchData, desugared: bool) -> QueryCase {
    let date = encode_date(1998, 9, 2);
    let aggregates = reference(data, date);
    let mut expected = Vec::new();
    for (series, extract) in [
        (
            "sum_qty",
            (|a: &ComboAggregates| a.sum_qty) as fn(&ComboAggregates) -> i64,
        ),
        ("sum_base", |a| a.sum_base),
        ("sum_disc", |a| a.sum_disc),
        ("sum_charge", |a| a.sum_charge),
        ("count_order", |a| a.count),
    ] {
        for (c, agg) in aggregates.iter().enumerate() {
            expected.push((format!("{series}_{c}"), vec![extract(agg)]));
        }
    }
    let fletcher = vec![(
        "fletcher_lineitem.td".to_string(),
        generate_reader_package(&crate::data::lineitem_schema()),
    )];
    if desugared {
        QueryCase {
            id: "q1_nosugar",
            title: "TPC-H 1 (without sugaring)",
            sql: SQL,
            fletcher_sources: fletcher,
            query_source: (
                "q1_nosugar.td".to_string(),
                desugared_source(data, date, data.rows),
            ),
            top_impl: "q1_nosugar_i".to_string(),
            sugaring: false,
            expected,
        }
    } else {
        QueryCase {
            id: "q1",
            title: "TPC-H 1",
            sql: SQL,
            fletcher_sources: fletcher,
            query_source: ("q1.td".to_string(), sugared_source(data, date, data.rows)),
            top_impl: "q1_i".to_string(),
            sugaring: true,
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::GenOptions;

    #[test]
    fn reference_covers_all_combos() {
        let data = TpchData::generate(GenOptions {
            rows: 4096,
            seed: 1,
        });
        let aggs = reference(&data, encode_date(1998, 9, 2));
        for (i, a) in aggs.iter().enumerate() {
            assert!(a.count > 0, "combo {i} empty");
            assert!(a.sum_disc <= a.sum_base, "discount increases price?");
            assert!(a.sum_charge >= a.sum_disc, "tax decreases charge?");
        }
    }

    #[test]
    fn desugared_source_is_longer() {
        let data = TpchData::generate(GenOptions { rows: 16, seed: 1 });
        let sugared = sugared_source(&data, 0, 16);
        let desugared = desugared_source(&data, 0, 16);
        let a = tydi_vhdl::loc::count_tydi_loc(&sugared);
        let b = tydi_vhdl::loc::count_tydi_loc(&desugared);
        assert!(b > a, "desugared {b} <= sugared {a}");
        assert!(desugared.contains("duplicator_i"));
        assert!(desugared.contains("voider_i"));
        assert!(!sugared.contains("duplicator_i"));
    }

    #[test]
    fn expected_port_names_match_streamlet_arrays() {
        let data = TpchData::generate(GenOptions { rows: 16, seed: 1 });
        let case = build(&data, false);
        assert_eq!(case.expected.len(), 20);
        assert!(case.expected.iter().any(|(p, _)| p == "sum_qty_0"));
        assert!(case.expected.iter().any(|(p, _)| p == "count_order_3"));
    }
}
