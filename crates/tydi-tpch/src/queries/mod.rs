//! The TPC-H query translations evaluated in paper §VI.
//!
//! Each query is a [`QueryCase`]: the raw SQL, the generated Fletcher
//! interface package(s), the hand-translated Tydi-lang query logic
//! (with dictionary codes and date constants spliced in, as a SQL
//! frontend would), plus the reference results used for end-to-end
//! verification.

mod q1;
mod q19;
mod q3q5;
mod q6;

use crate::data::TpchData;
use tydi_lang::{compile, CompileOptions, CompileOutput};
use tydi_stdlib::{stdlib_source, STDLIB_FILE_NAME};

/// One evaluated query.
#[derive(Debug, Clone)]
pub struct QueryCase {
    /// Short id, e.g. `"q6"`.
    pub id: &'static str,
    /// Table IV row label.
    pub title: &'static str,
    /// The raw SQL text.
    pub sql: &'static str,
    /// Generated Fletcher interface packages: `(file name, source)`.
    pub fletcher_sources: Vec<(String, String)>,
    /// The query-logic source: `(file name, source)`.
    pub query_source: (String, String),
    /// The top-level implementation to elaborate and simulate.
    pub top_impl: String,
    /// Whether to compile with sugaring (the desugared Q1 variant
    /// sets this to false).
    pub sugaring: bool,
    /// Expected outputs per expanded port name, in arrival order
    /// (empty packets excluded).
    pub expected: Vec<(String, Vec<i64>)>,
}

impl QueryCase {
    /// The full source list: standard library, Fletcher interfaces,
    /// query logic.
    pub fn sources(&self) -> Vec<(String, String)> {
        let mut out = vec![(STDLIB_FILE_NAME.to_string(), stdlib_source().to_string())];
        out.extend(self.fletcher_sources.iter().cloned());
        out.push(self.query_source.clone());
        out
    }

    /// Compiler options for this case.
    pub fn options(&self) -> CompileOptions {
        CompileOptions {
            project_name: format!("tpch_{}", self.id),
            enable_sugaring: self.sugaring,
            run_drc: true,
        }
    }

    /// Compiles the case to Tydi-IR.
    pub fn compile(&self) -> Result<CompileOutput, String> {
        let sources = self.sources();
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        compile(&refs, &self.options()).map_err(|e| e.render())
    }

    /// Lines of Tydi-lang query logic (`LoCq` in Table IV).
    pub fn query_loc(&self) -> usize {
        tydi_vhdl::loc::count_tydi_loc(&self.query_source.1)
    }

    /// Lines of Fletcher interface code (`LoCf`).
    pub fn fletcher_loc(&self) -> usize {
        self.fletcher_sources
            .iter()
            .map(|(_, s)| tydi_vhdl::loc::count_tydi_loc(s))
            .sum()
    }

    /// Lines of raw SQL.
    pub fn sql_loc(&self) -> usize {
        self.sql.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// Builds every evaluated query, in Table IV order.
pub fn all_queries(data: &TpchData) -> Vec<QueryCase> {
    vec![
        q1::build(data, false),
        q1::build(data, true),
        q3q5::build_q3(data),
        q3q5::build_q5(data),
        q6::build(data),
        q19::build(data),
    ]
}

/// Shared Tydi-lang preamble for query packages: money/aggregate
/// stream types.
pub(crate) fn money_types() -> &'static str {
    "type Money = Stream(Bit(64), d=1, c=2);\ntype Agg = Stream(Bit(64));\n"
}

/// Emits the shared `revenue = sum(price * (100 - disc) / 100)` tail:
/// constant sources, subtract, multiply, divide, filter by
/// `{keep_port}`, reduce into the `revenue` output port.
pub(crate) fn revenue_tail(
    table: &str,
    price_col: &str,
    disc_col: &str,
    keep_port: &str,
    rows: usize,
) -> String {
    format!(
        r#"    instance hundred_a(const_vec_i<type {table}_{disc_col}_t, 100, {rows}>),
    instance one_minus(subtractor_i<type {table}_{disc_col}_t, type {table}_{disc_col}_t, type {table}_{disc_col}_t>),
    hundred_a.o => one_minus.in0,
    rd.{disc_col} => one_minus.in1,
    instance rev_mul(multiplier_i<type {table}_{price_col}_t, type {table}_{disc_col}_t, type Money>),
    rd.{price_col} => rev_mul.in0,
    one_minus.o => rev_mul.in1,
    instance hundred_b(const_vec_i<type Money, 100, {rows}>),
    instance rev_div(divider_i<type Money, type Money, type Money>),
    rev_mul.o => rev_div.in0,
    hundred_b.o => rev_div.in1,
    instance keep_rev(filter_i<type Money>),
    rev_div.o => keep_rev.i,
    {keep_port} => keep_rev.keep,
    instance total(sum_i<type Money, type Agg>),
    keep_rev.o => total.i,
    total.o => revenue,
"#
    )
}

/// Reference-side row revenue with the same integer semantics as the
/// hardware pipeline.
pub(crate) fn row_revenue(price: i64, disc: i64) -> i64 {
    price * (100 - disc) / 100
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::GenOptions;

    #[test]
    fn all_queries_compile() {
        let data = TpchData::generate(GenOptions { rows: 32, seed: 7 });
        for case in all_queries(&data) {
            let out = case
                .compile()
                .unwrap_or_else(|e| panic!("{} failed to compile:\n{e}", case.id));
            assert!(
                out.project.implementation(&case.top_impl).is_some(),
                "{} missing top impl",
                case.id
            );
        }
    }

    #[test]
    fn sugared_queries_insert_components() {
        let data = TpchData::generate(GenOptions { rows: 32, seed: 7 });
        for case in all_queries(&data) {
            if !case.sugaring {
                continue;
            }
            let out = case.compile().unwrap();
            // Queries that fan a column out to several consumers need
            // inferred duplicators; Q3/Q5 use each view column once.
            if matches!(case.id, "q1" | "q6" | "q19") {
                assert!(
                    out.sugar_report.duplicators > 0,
                    "{}: expected duplicators from sugaring",
                    case.id
                );
            }
            // Q1 and Q6 read the full lineitem schema but use only a
            // subset of columns: the rest get voiders (the Fletcher
            // scenario of paper §IV-D).
            if matches!(case.id, "q1" | "q6") {
                assert!(
                    out.sugar_report.voiders > 0,
                    "{}: expected voiders for unused reader columns",
                    case.id
                );
            }
        }
    }

    #[test]
    fn desugared_q1_needs_no_sugar() {
        let data = TpchData::generate(GenOptions { rows: 32, seed: 7 });
        let case = all_queries(&data)
            .into_iter()
            .find(|c| !c.sugaring)
            .expect("desugared case present");
        let out = case.compile().unwrap();
        // Compiled with sugaring disabled: the DRC passed, so every
        // port is used exactly once by the explicit duplicators and
        // voiders written in the source.
        assert_eq!(out.sugar_report.duplicators, 0);
        assert_eq!(out.sugar_report.voiders, 0);
    }

    #[test]
    fn query_loc_is_positive_and_ordered() {
        let data = TpchData::generate(GenOptions { rows: 32, seed: 7 });
        let cases = all_queries(&data);
        for case in &cases {
            assert!(case.query_loc() > 0, "{}", case.id);
            assert!(case.sql_loc() > 0, "{}", case.id);
            assert!(case.fletcher_loc() > 0, "{}", case.id);
        }
        // The desugared Q1 is strictly longer than the sugared one
        // (paper Table IV: 402 vs 284 total lines).
        let sugared = cases.iter().find(|c| c.id == "q1").unwrap();
        let desugared = cases.iter().find(|c| c.id == "q1_nosugar").unwrap();
        assert!(desugared.query_loc() > sugared.query_loc());
    }
}
