//! # tydi-tpch
//!
//! The TPC-H substrate of the paper's evaluation (§VI): schemas,
//! deterministic synthetic data, the hand-translated Tydi-lang query
//! sources for TPC-H 1 (with and without sugaring), 3, 5, 6 and 19, a
//! software reference executor, an end-to-end verification harness,
//! and the line-of-code accounting that regenerates Table IV.
//!
//! ## Substitutions relative to the paper (see DESIGN.md)
//!
//! * The official `dbgen` is replaced by a seeded `rand` generator
//!   with the same column domains.
//! * Queries over multiple tables (3, 5, 19) read a pre-joined
//!   Fletcher view: streaming hash-join hardware is outside the
//!   compiler contribution being evaluated, and the paper itself
//!   excludes query shapes that need intermediate materialisation.
//! * Group-by in Q1 is unrolled over the four observed
//!   `(l_returnflag, l_linestatus)` combinations with the generative
//!   `for` syntax; Q3/Q5's per-key grouping is reduced to the total
//!   aggregate for the same reason.
//! * Strings are dictionary-encoded to integers before reaching
//!   hardware streams, decimals are scaled to cents, dates to day
//!   numbers.

#![warn(missing_docs)]

pub mod data;
pub mod queries;
pub mod table4;
pub mod verify;

pub use data::{GenOptions, TpchData};
pub use queries::{all_queries, QueryCase};
pub use table4::{render_table4, table4, Table4Row};
pub use verify::{run_query, verify_query};
