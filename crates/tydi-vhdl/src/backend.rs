//! Project-level RTL generation.
//!
//! Tydi-IR is lowered **once** to the backend-neutral netlist
//! ([`crate::lower::lower_project`]) and then rendered by a
//! [`tydi_rtl::Emitter`]; [`generate_project`] is the historic VHDL
//! entry point, [`generate_project_for`] selects any backend. Each
//! Tydi-IR implementation becomes one design unit: normal
//! implementations get structural bodies (direct instantiation, one
//! signal bundle per connection); external implementations get either
//! a behavioral body from the builtin registry or a black-box stub.

use crate::builtin::BuiltinRegistry;
use crate::error::VhdlError;
use crate::lower::{
    emit_netlist_cached, lower_project, lower_project_cached, lower_project_cached_with,
    lower_project_with, CodegenCache,
};
use std::fmt::Write as _;
use tydi_ir::{Project, ProjectIndex};
use tydi_rtl::{emitter_for, Backend};

/// Code generation options.
#[derive(Debug, Clone)]
pub struct VhdlOptions {
    /// Emit explanatory comments in the generated code.
    pub emit_comments: bool,
    /// Run IR validation before generating (recommended; the
    /// structural emitter assumes DRC invariants).
    pub validate: bool,
}

impl Default for VhdlOptions {
    fn default() -> Self {
        VhdlOptions {
            emit_comments: true,
            validate: true,
        }
    }
}

/// One generated source file (any backend).
pub type VhdlFile = tydi_rtl::EmittedFile;

/// Generates one VHDL file per implementation, in definition order.
pub fn generate_project(
    project: &Project,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
) -> Result<Vec<VhdlFile>, VhdlError> {
    generate_project_for(project, registry, options, Backend::Vhdl)
}

/// Generates one file per implementation for any backend: lower once,
/// then render with that backend's emitter (modules in parallel).
pub fn generate_project_for(
    project: &Project,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
    backend: Backend,
) -> Result<Vec<VhdlFile>, VhdlError> {
    let netlist = lower_project(project, registry, options)?;
    Ok(emitter_for(backend).emit_netlist(&netlist)?)
}

/// Like [`generate_project_for`], but resolving references through
/// the pipeline's shared [`ProjectIndex`] instead of rebuilding one.
pub fn generate_project_for_with(
    project: &Project,
    index: &ProjectIndex,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
    backend: Backend,
) -> Result<Vec<VhdlFile>, VhdlError> {
    let netlist = lower_project_with(project, index, registry, options)?;
    Ok(emitter_for(backend).emit_netlist(&netlist)?)
}

/// Like [`generate_project_for`], but reusing per-module lowerings
/// and emitted files from a [`CodegenCache`]: on a recompile, only
/// implementations whose content fingerprint changed are re-lowered
/// and re-rendered. The output is byte-identical to
/// [`generate_project_for`] for the same project (pinned by the
/// differential test-suite).
pub fn generate_project_cached(
    project: &Project,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
    backend: Backend,
    cache: &mut CodegenCache,
) -> Result<Vec<VhdlFile>, VhdlError> {
    let (netlist, keys) = lower_project_cached(project, registry, options, cache)?;
    emit_netlist_cached(&netlist, &keys, backend, cache)
}

/// Like [`generate_project_cached`], but resolving references through
/// the pipeline's shared [`ProjectIndex`].
pub fn generate_project_cached_with(
    project: &Project,
    index: &ProjectIndex,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
    backend: Backend,
    cache: &mut CodegenCache,
) -> Result<Vec<VhdlFile>, VhdlError> {
    let (netlist, keys) = lower_project_cached_with(project, index, registry, options, cache)?;
    emit_netlist_cached(&netlist, &keys, backend, cache)
}

/// Concatenates generated files into one string, each prefixed with a
/// `<comment> file: <name>` banner so piped output stays splittable.
pub fn files_to_string(files: &[VhdlFile], backend: Backend) -> String {
    let mut out = String::new();
    for f in files {
        let _ = writeln!(out, "{} file: {}", backend.comment_prefix(), f.name);
        out.push_str(&f.contents);
        out.push('\n');
    }
    out
}

/// Generates the whole project as a single concatenated VHDL string,
/// one `-- file: <name>` banner per generated file.
pub fn generate_to_string(
    project: &Project,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
) -> Result<String, VhdlError> {
    generate_to_string_for(project, registry, options, Backend::Vhdl)
}

/// Generates the whole project as a single concatenated string for
/// any backend, with per-file banners.
pub fn generate_to_string_for(
    project: &Project,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
    backend: Backend,
) -> Result<String, VhdlError> {
    let files = generate_project_for(project, registry, options, backend)?;
    Ok(files_to_string(&files, backend))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_ir::{
        Connection, EndpointRef, Implementation, Instance, Port, PortDirection, Streamlet,
    };
    use tydi_spec::{LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    /// in -> leaf a -> leaf b -> out, exercising all net cases.
    fn chain_project() -> Project {
        let mut p = Project::new("chain");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_implementation(
            Implementation::external("leaf_i", "pass_s").with_builtin("std.passthrough"),
        )
        .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(Instance::new("a", "leaf_i"));
        top.add_instance(Instance::new("b", "leaf_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("a", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("a", "o"),
            EndpointRef::instance("b", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("b", "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        p
    }

    #[test]
    fn generates_one_file_per_impl() {
        let p = chain_project();
        let files =
            generate_project(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default()).unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].name, "leaf_i.vhd");
        assert_eq!(files[1].name, "top_i.vhd");
    }

    #[test]
    fn entity_has_expanded_ports_and_clock() {
        let p = chain_project();
        let files =
            generate_project(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default()).unwrap();
        let top = &files[1].contents;
        assert!(top.contains("entity top_i is"));
        assert!(top.contains("clk : in std_logic"));
        assert!(top.contains("rst : in std_logic"));
        assert!(top.contains("i_valid : in std_logic"));
        assert!(top.contains("i_ready : out std_logic"));
        assert!(top.contains("i_data : in std_logic_vector(7 downto 0)"));
        assert!(top.contains("o_valid : out std_logic"));
    }

    #[test]
    fn structural_architecture_instantiates_and_wires() {
        let p = chain_project();
        let files =
            generate_project(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default()).unwrap();
        let top = &files[1].contents;
        // Intermediate signal for the instance-to-instance hop.
        assert!(top.contains("signal n1_a_o_valid : std_logic;"));
        assert!(top.contains("signal n1_a_o_data : std_logic_vector(7 downto 0);"));
        // Direct binding of own ports into instance port maps.
        assert!(top.contains("u_a : entity work.leaf_i"));
        assert!(top.contains("i_valid => i_valid"));
        assert!(top.contains("o_valid => n1_a_o_valid"));
        assert!(top.contains("u_b : entity work.leaf_i"));
        assert!(top.contains("i_valid => n1_a_o_valid"));
        assert!(top.contains("o_valid => o_valid"));
    }

    #[test]
    fn builtin_architecture_embedded() {
        let p = chain_project();
        let files =
            generate_project(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default()).unwrap();
        let leaf = &files[0].contents;
        assert!(leaf.contains("architecture rtl of leaf_i is"));
        assert!(leaf.contains("o_data <= i_data;"));
    }

    #[test]
    fn verilog_backend_emits_modules_from_the_same_lowering() {
        let p = chain_project();
        let files = generate_project_for(
            &p,
            &BuiltinRegistry::with_core(),
            &VhdlOptions::default(),
            Backend::SystemVerilog,
        )
        .unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].name, "leaf_i.sv");
        assert_eq!(files[1].name, "top_i.sv");
        let leaf = &files[0].contents;
        assert!(leaf.contains("module leaf_i ("));
        assert!(leaf.contains("assign o_data = i_data;"));
        let top = &files[1].contents;
        assert!(top.contains("logic n1_a_o_valid;"));
        assert!(top.contains("logic [7:0] n1_a_o_data;"));
        assert!(top.contains("leaf_i u_a ("));
        assert!(top.contains(".o_valid (n1_a_o_valid)"));
        assert!(top.contains(".i_valid (n1_a_o_valid)"));
        assert!(tydi_rtl::check::check_verilog(top).is_empty());
    }

    #[test]
    fn feed_through_connection_assigns_directly() {
        let mut p = Project::new("wire");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        let mut top = Implementation::normal("wire_i", "pass_s");
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        let text =
            generate_to_string(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default()).unwrap();
        assert!(text.contains("o_valid <= i_valid;"));
        assert!(text.contains("o_data <= i_data;"));
        assert!(text.contains("i_ready <= o_ready;"));
    }

    #[test]
    fn invalid_project_refused() {
        let mut p = Project::new("bad");
        p.add_streamlet(Streamlet::new("s").with_port(Port::new(
            "i",
            PortDirection::In,
            stream8(),
        )))
        .unwrap();
        // Unused port i -> port usage violation.
        p.add_implementation(Implementation::normal("i_i", "s"))
            .unwrap();
        let err = generate_project(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default());
        assert!(matches!(err, Err(VhdlError::InvalidProject(_))));
    }

    #[test]
    fn unknown_builtin_surfaces() {
        let mut p = Project::new("x");
        p.add_streamlet(
            Streamlet::new("s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_implementation(Implementation::external("e_i", "s").with_builtin("std.not_a_thing"))
            .unwrap();
        let err = generate_project(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default());
        assert!(matches!(err, Err(VhdlError::UnknownBuiltin { .. })));
    }

    #[test]
    fn to_string_banners_every_file() {
        let p = chain_project();
        let text =
            generate_to_string(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default()).unwrap();
        assert!(text.contains("-- file: leaf_i.vhd\n"));
        assert!(text.contains("-- file: top_i.vhd\n"));
        let sv = generate_to_string_for(
            &p,
            &BuiltinRegistry::with_core(),
            &VhdlOptions::default(),
            Backend::SystemVerilog,
        )
        .unwrap();
        assert!(sv.contains("// file: leaf_i.sv\n"));
        assert!(sv.contains("// file: top_i.sv\n"));
    }

    #[test]
    fn comments_can_be_disabled() {
        let p = chain_project();
        let opts = VhdlOptions {
            emit_comments: false,
            validate: true,
        };
        let text = generate_to_string(&p, &BuiltinRegistry::with_core(), &opts).unwrap();
        // Only the `-- file:` banners remain; the generated code
        // itself carries no comments.
        for line in text.lines() {
            if line.trim_start().starts_with("--") {
                assert!(line.starts_with("-- file: "), "unexpected comment: {line}");
            }
        }
        assert!(text.contains("-- file: leaf_i.vhd"));
    }
}
