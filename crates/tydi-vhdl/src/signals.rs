//! Expansion of typed Tydi ports into VHDL signals.
//!
//! A Tydi port lowers to one or more physical streams; each physical
//! stream contributes a `valid`/`ready` handshake pair plus its payload
//! signals. `ready` always travels against the data direction.

use crate::error::VhdlError;
use tydi_ir::{Port, PortDirection, Streamlet};
use tydi_spec::{lower_cached_arc, ClockDomain, Direction};

/// Mode of a VHDL entity port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortMode {
    /// `in` from the entity's perspective.
    In,
    /// `out` from the entity's perspective.
    Out,
}

impl PortMode {
    fn flip(self) -> PortMode {
        match self {
            PortMode::In => PortMode::Out,
            PortMode::Out => PortMode::In,
        }
    }

    /// The VHDL keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            PortMode::In => "in",
            PortMode::Out => "out",
        }
    }
}

/// One scalar or vector VHDL signal derived from a Tydi port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VhdlSignal {
    /// Full signal name, e.g. `in0_chars_data`.
    pub name: String,
    /// Width in bits; width 1 renders as `std_logic`.
    pub width: u32,
    /// Entity port mode.
    pub mode: PortMode,
}

impl VhdlSignal {
    /// The VHDL type of this signal.
    pub fn vhdl_type(&self) -> String {
        vhdl_type(self.width)
    }
}

pub use tydi_rtl::vhdl::vhdl_type;

/// Joins non-empty name fragments with underscores.
pub fn join_name(parts: &[&str]) -> String {
    parts
        .iter()
        .filter(|p| !p.is_empty())
        .copied()
        .collect::<Vec<_>>()
        .join("_")
}

/// Expands a port into its VHDL signals, using `prefix` as the base
/// name (usually the port name; connection bundles pass a net name).
///
/// Physical expansion goes through the process-wide
/// [`lower_cached_arc`] memo: a port type is lowered once per process
/// and every later module that binds the same type (the common case —
/// every instantiation site re-expands its child's ports) reuses the
/// shared result. Ports carry the elaborator's canonical `Arc`, so a
/// hit is a pointer lookup — no tree walk, no structural compare.
pub fn expand_port_as(port: &Port, prefix: &str) -> Result<Vec<VhdlSignal>, VhdlError> {
    let physical = lower_cached_arc(&port.ty)?;
    let mut signals = Vec::new();
    for stream in physical.iter() {
        let suffix = stream.name_suffix();
        // The data direction of this physical stream from the entity's
        // perspective: the port direction, flipped for reverse streams.
        let data_mode = match (port.direction, stream.direction) {
            (PortDirection::In, Direction::Forward) | (PortDirection::Out, Direction::Reverse) => {
                PortMode::In
            }
            _ => PortMode::Out,
        };
        signals.push(VhdlSignal {
            name: join_name(&[prefix, &suffix, "valid"]),
            width: 1,
            mode: data_mode,
        });
        signals.push(VhdlSignal {
            name: join_name(&[prefix, &suffix, "ready"]),
            width: 1,
            mode: data_mode.flip(),
        });
        for (sig_name, width) in stream.signals().named_signals() {
            signals.push(VhdlSignal {
                name: join_name(&[prefix, &suffix, sig_name]),
                width,
                mode: data_mode,
            });
        }
    }
    Ok(signals)
}

/// Expands a port using its own name as prefix.
pub fn expand_port(port: &Port) -> Result<Vec<VhdlSignal>, VhdlError> {
    expand_port_as(port, &port.name)
}

/// The distinct clock domains of a streamlet, in first-use order, with
/// their VHDL clock/reset signal names.
pub fn clock_signals(streamlet: &Streamlet) -> Vec<(ClockDomain, String, String)> {
    let mut out: Vec<(ClockDomain, String, String)> = Vec::new();
    for port in &streamlet.ports {
        if out.iter().any(|(d, _, _)| *d == port.clock) {
            continue;
        }
        let (clk, rst) = if port.clock.is_default() {
            ("clk".to_string(), "rst".to_string())
        } else {
            (
                format!("clk_{}", port.clock.name()),
                format!("rst_{}", port.clock.name()),
            )
        };
        out.push((port.clock.clone(), clk, rst));
    }
    if out.is_empty() {
        out.push((ClockDomain::default(), "clk".to_string(), "rst".to_string()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_spec::{LogicalType, StreamParams};

    fn stream(width: u32, dim: u32) -> LogicalType {
        LogicalType::stream(
            LogicalType::Bit(width),
            StreamParams::new().with_dimension(dim),
        )
    }

    #[test]
    fn vhdl_types() {
        assert_eq!(vhdl_type(1), "std_logic");
        assert_eq!(vhdl_type(8), "std_logic_vector(7 downto 0)");
    }

    #[test]
    fn simple_in_port_expansion() {
        let p = Port::new("in0", PortDirection::In, stream(8, 0));
        let sigs = expand_port(&p).unwrap();
        let names: Vec<&str> = sigs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["in0_valid", "in0_ready", "in0_data"]);
        assert_eq!(sigs[0].mode, PortMode::In);
        assert_eq!(sigs[1].mode, PortMode::Out); // ready flows back
        assert_eq!(sigs[2].width, 8);
    }

    #[test]
    fn out_port_flips_modes() {
        let p = Port::new("o", PortDirection::Out, stream(8, 1));
        let sigs = expand_port(&p).unwrap();
        let valid = sigs.iter().find(|s| s.name == "o_valid").unwrap();
        let ready = sigs.iter().find(|s| s.name == "o_ready").unwrap();
        let last = sigs.iter().find(|s| s.name == "o_last").unwrap();
        assert_eq!(valid.mode, PortMode::Out);
        assert_eq!(ready.mode, PortMode::In);
        assert_eq!(last.mode, PortMode::Out);
        assert_eq!(last.width, 1);
    }

    #[test]
    fn nested_stream_gets_path_prefix() {
        let record =
            LogicalType::group(vec![("len", LogicalType::Bit(16)), ("chars", stream(8, 1))]);
        let p = Port::new(
            "rec",
            PortDirection::In,
            LogicalType::stream(record, StreamParams::new()),
        );
        let sigs = expand_port(&p).unwrap();
        let names: Vec<&str> = sigs.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"rec_valid"));
        assert!(names.contains(&"rec_chars_valid"));
        assert!(names.contains(&"rec_chars_data"));
    }

    #[test]
    fn custom_prefix_renames_all() {
        let p = Port::new("in0", PortDirection::In, stream(8, 0));
        let sigs = expand_port_as(&p, "c0_net").unwrap();
        assert_eq!(sigs[0].name, "c0_net_valid");
    }

    #[test]
    fn reverse_stream_flips_data_mode() {
        let resp = LogicalType::stream(
            LogicalType::Bit(8),
            StreamParams::new().with_direction(Direction::Reverse),
        );
        let req = LogicalType::group(vec![("q", LogicalType::Bit(4)), ("resp", resp)]);
        let p = Port::new(
            "ch",
            PortDirection::In,
            LogicalType::stream(req, StreamParams::new()),
        );
        let sigs = expand_port(&p).unwrap();
        let fwd_valid = sigs.iter().find(|s| s.name == "ch_valid").unwrap();
        let rev_valid = sigs.iter().find(|s| s.name == "ch_resp_valid").unwrap();
        assert_eq!(fwd_valid.mode, PortMode::In);
        assert_eq!(rev_valid.mode, PortMode::Out);
    }

    #[test]
    fn clock_signal_collection() {
        let s = Streamlet::new("s")
            .with_port(Port::new("a", PortDirection::In, stream(8, 0)))
            .with_port(
                Port::new("b", PortDirection::In, stream(8, 0)).with_clock(ClockDomain::new("mem")),
            )
            .with_port(Port::new("c", PortDirection::Out, stream(8, 0)));
        let clocks = clock_signals(&s);
        assert_eq!(clocks.len(), 2);
        assert_eq!(clocks[0].1, "clk");
        assert_eq!(clocks[1].1, "clk_mem");
        assert_eq!(clocks[1].2, "rst_mem");
    }

    #[test]
    fn portless_streamlet_still_has_clock() {
        let s = Streamlet::new("s");
        assert_eq!(clock_signals(&s).len(), 1);
    }

    #[test]
    fn join_name_skips_empty() {
        assert_eq!(join_name(&["a", "", "b"]), "a_b");
        assert_eq!(join_name(&["a"]), "a");
    }
}
