//! Line-of-code metrics.
//!
//! The paper's Table IV compares lines of Tydi-lang against lines of
//! generated VHDL. To make the comparison reproducible we define the
//! counting rule precisely: a line counts when it contains anything
//! other than whitespace and is not a pure comment line. The same rule
//! is applied to Tydi-lang sources (`//` comments) and VHDL output
//! (`--` comments) by choosing the comment prefix.

/// Counts lines that are neither blank nor pure comments.
pub fn count_loc_with_comment(text: &str, comment_prefix: &str) -> usize {
    text.lines()
        .filter(|line| {
            let trimmed = line.trim();
            !trimmed.is_empty() && !trimmed.starts_with(comment_prefix)
        })
        .count()
}

/// Counts VHDL lines of code (ignoring blank and `--` comment lines).
pub fn count_loc(text: &str) -> usize {
    count_loc_with_comment(text, "--")
}

/// Counts Tydi-lang lines of code (ignoring blank and `//` comment
/// lines).
pub fn count_tydi_loc(text: &str) -> usize {
    count_loc_with_comment(text, "//")
}

/// Counts raw physical lines, the loosest possible metric.
pub fn count_raw_lines(text: &str) -> usize {
    text.lines().count()
}

#[cfg(test)]
mod tests {
    use super::*;

    const VHDL: &str = "\n-- header\nentity x is\n  port (\n\n  );\nend entity;\n-- done\n";

    #[test]
    fn vhdl_loc_ignores_blank_and_comments() {
        assert_eq!(count_loc(VHDL), 4);
        assert_eq!(count_raw_lines(VHDL), 8);
    }

    #[test]
    fn tydi_loc_uses_slash_comments() {
        let src = "// doc\nstreamlet s {\n  a: T in,\n}\n\n";
        assert_eq!(count_tydi_loc(src), 3);
    }

    #[test]
    fn trailing_comment_lines_still_count() {
        // A code line with a trailing comment is code.
        assert_eq!(count_loc("x <= y; -- copy\n"), 1);
    }

    #[test]
    fn empty_input() {
        assert_eq!(count_loc(""), 0);
        assert_eq!(count_raw_lines(""), 0);
    }
}
