//! VHDL testbench generation from Tydi-IR testbenches.
//!
//! The Tydi simulator records handshaked transfers at the boundary of a
//! top-level implementation; this module lowers that recording to a
//! self-checking VHDL testbench (paper §V-C): one driver process per
//! stimulated input port, one checker process per observed output port,
//! and a free-running clock.
//!
//! Transfers address the *root* physical stream of each port; designs
//! whose top-level ports carry nested streams need one transfer entry
//! per physical stream, which the simulator emits with suffixed port
//! names.

use crate::error::VhdlError;
use crate::names::sanitize;
use crate::signals::{expand_port, vhdl_type};
use crate::VhdlOptions;
use std::fmt::Write as _;
use tydi_ir::{PortDirection, Project, Testbench, Transfer};

/// Generates a self-checking VHDL testbench for `testbench.top_impl`.
pub fn generate_testbench(
    project: &Project,
    testbench: &Testbench,
    options: &VhdlOptions,
) -> Result<String, VhdlError> {
    let implementation = project.implementation(&testbench.top_impl).ok_or_else(|| {
        VhdlError::Inconsistent(format!(
            "testbench references missing implementation `{}`",
            testbench.top_impl
        ))
    })?;
    let streamlet = project
        .streamlet(&implementation.streamlet)
        .ok_or_else(|| {
            VhdlError::Inconsistent(format!(
                "implementation `{}` references missing streamlet `{}`",
                implementation.name, implementation.streamlet
            ))
        })?;
    let entity = sanitize(&testbench.name);
    let uut_entity = sanitize(&implementation.name);

    let mut out = String::new();
    if options.emit_comments {
        let _ = writeln!(out, "-- Generated testbench for `{}`.", implementation.name);
        for line in testbench.comment.lines() {
            let _ = writeln!(out, "-- {line}");
        }
    }
    let _ = writeln!(out, "library ieee;");
    let _ = writeln!(out, "use ieee.std_logic_1164.all;");
    let _ = writeln!(out, "use ieee.numeric_std.all;");
    let _ = writeln!(out);
    let _ = writeln!(out, "entity {entity} is");
    let _ = writeln!(out, "end entity {entity};");
    let _ = writeln!(out);
    let _ = writeln!(out, "architecture sim of {entity} is");
    let _ = writeln!(out, "  signal clk : std_logic := '0';");
    let _ = writeln!(out, "  signal rst : std_logic := '1';");

    let mut all_signals = Vec::new();
    for port in &streamlet.ports {
        for sig in expand_port(port)? {
            let _ = writeln!(out, "  signal {} : {};", sig.name, vhdl_type(sig.width));
            all_signals.push(sig);
        }
    }
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  clk <= not clk after 5 ns;");
    let _ = writeln!(out, "  rst <= '0' after 20 ns;");
    let _ = writeln!(out);
    let _ = writeln!(out, "  uut : entity work.{uut_entity}");
    let _ = writeln!(out, "    port map (");
    let mut maps = vec![
        "      clk => clk".to_string(),
        "      rst => rst".to_string(),
    ];
    for sig in &all_signals {
        maps.push(format!("      {} => {}", sig.name, sig.name));
    }
    let _ = writeln!(out, "{}", maps.join(",\n"));
    let _ = writeln!(out, "    );");
    let _ = writeln!(out);

    // One driver process per stimulated input port.
    for port in &streamlet.ports {
        if port.direction != PortDirection::In {
            continue;
        }
        let transfers: Vec<&Transfer> = testbench
            .stimuli()
            .into_iter()
            .filter(|t| t.port == port.name)
            .collect();
        if transfers.is_empty() {
            continue;
        }
        let label = sanitize(&format!("drive_{}", port.name));
        let _ = writeln!(out, "  {label} : process");
        let _ = writeln!(out, "  begin");
        let _ = writeln!(out, "    {}_valid <= '0';", port.name);
        let _ = writeln!(out, "    wait until rst = '0';");
        for (i, transfer) in transfers.iter().enumerate() {
            if options.emit_comments {
                let _ = writeln!(
                    out,
                    "    -- transfer {i} (simulated cycle {})",
                    transfer.cycle
                );
            }
            let _ = writeln!(out, "    wait until rising_edge(clk);");
            let _ = writeln!(
                out,
                "    {}_data <= {};",
                port.name,
                literal(&transfer.data.to_bin_string())
            );
            if !transfer.last.is_empty() {
                let bits: String = transfer
                    .last
                    .iter()
                    .rev()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect();
                let _ = writeln!(out, "    {}_last <= {};", port.name, literal(&bits));
            }
            let _ = writeln!(out, "    {}_valid <= '1';", port.name);
            let _ = writeln!(
                out,
                "    wait until rising_edge(clk) and {}_ready = '1';",
                port.name
            );
            let _ = writeln!(out, "    {}_valid <= '0';", port.name);
        }
        let _ = writeln!(out, "    wait;");
        let _ = writeln!(out, "  end process;");
        let _ = writeln!(out);
    }

    // One checker process per observed output port.
    for port in &streamlet.ports {
        if port.direction != PortDirection::Out {
            continue;
        }
        let transfers: Vec<&Transfer> = testbench
            .expectations()
            .into_iter()
            .filter(|t| t.port == port.name)
            .collect();
        if transfers.is_empty() {
            continue;
        }
        let label = sanitize(&format!("check_{}", port.name));
        let _ = writeln!(out, "  {label} : process");
        let _ = writeln!(out, "  begin");
        let _ = writeln!(out, "    {}_ready <= '1';", port.name);
        let _ = writeln!(out, "    wait until rst = '0';");
        for (i, transfer) in transfers.iter().enumerate() {
            let _ = writeln!(
                out,
                "    wait until rising_edge(clk) and {}_valid = '1';",
                port.name
            );
            let _ = writeln!(
                out,
                "    assert {}_data = {} report \"{}: transfer {} data mismatch\" severity error;",
                port.name,
                literal(&transfer.data.to_bin_string()),
                port.name,
                i
            );
            if !transfer.last.is_empty() {
                let bits: String = transfer
                    .last
                    .iter()
                    .rev()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect();
                let _ = writeln!(
                    out,
                    "    assert {}_last = {} report \"{}: transfer {} last mismatch\" severity error;",
                    port.name,
                    literal(&bits),
                    port.name,
                    i
                );
            }
        }
        if options.emit_comments {
            let _ = writeln!(out, "    report \"{}: all expectations met\";", port.name);
        }
        let _ = writeln!(out, "    wait;");
        let _ = writeln!(out, "  end process;");
        let _ = writeln!(out);
    }

    let _ = writeln!(out, "end architecture sim;");
    Ok(out)
}

/// Renders a bit pattern as a VHDL literal: `'x'` for one bit,
/// `"xxxx"` for vectors.
fn literal(bits: &str) -> String {
    if bits.len() == 1 {
        format!("'{bits}'")
    } else {
        format!("\"{bits}\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_vhdl;
    use tydi_ir::{BitsValue, Implementation, Port, Streamlet};
    use tydi_spec::{LogicalType, StreamParams};

    fn project() -> Project {
        let stream =
            LogicalType::stream(LogicalType::Bit(8), StreamParams::new().with_dimension(1));
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream.clone()))
                .with_port(Port::new("o", PortDirection::Out, stream)),
        )
        .unwrap();
        p.add_implementation(
            Implementation::external("pass_i", "pass_s").with_builtin("std.passthrough"),
        )
        .unwrap();
        p
    }

    fn tb() -> Testbench {
        let mut tb = Testbench::new("pass_tb", "pass_i");
        tb.push(
            tydi_ir::Transfer::stimulus(0, "i", BitsValue::from_u64(0xAB, 8))
                .with_last(vec![false]),
        );
        tb.push(
            tydi_ir::Transfer::stimulus(1, "i", BitsValue::from_u64(0xCD, 8)).with_last(vec![true]),
        );
        tb.push(
            tydi_ir::Transfer::expectation(2, "o", BitsValue::from_u64(0xAB, 8))
                .with_last(vec![false]),
        );
        tb
    }

    #[test]
    fn testbench_structure() {
        let p = project();
        let text = generate_testbench(&p, &tb(), &VhdlOptions::default()).unwrap();
        assert!(text.contains("entity pass_tb is"));
        assert!(text.contains("uut : entity work.pass_i"));
        assert!(text.contains("drive_i : process"));
        assert!(text.contains("check_o : process"));
        assert!(text.contains("i_data <= \"10101011\";"));
        assert!(text.contains("i_last <= '0';"));
        assert!(text.contains("assert o_data = \"10101011\""));
        assert!(text.contains("wait until rising_edge(clk) and i_ready = '1';"));
    }

    #[test]
    fn testbench_passes_structural_check() {
        let p = project();
        let text = generate_testbench(&p, &tb(), &VhdlOptions::default()).unwrap();
        let issues = check_vhdl(&text);
        assert!(issues.is_empty(), "issues: {issues:?}");
    }

    #[test]
    fn missing_top_impl_errors() {
        let p = project();
        let bad = Testbench::new("x", "ghost_i");
        assert!(matches!(
            generate_testbench(&p, &bad, &VhdlOptions::default()),
            Err(VhdlError::Inconsistent(_))
        ));
    }

    #[test]
    fn literal_forms() {
        assert_eq!(literal("1"), "'1'");
        assert_eq!(literal("10"), "\"10\"");
    }
}
