//! VHDL identifier sanitization.
//!
//! Tydi-lang names (which may contain template mangling such as
//! `duplicator_i<Stream(Bit(8)),2>`) must map to legal, unique VHDL
//! basic identifiers: letters, digits and single underscores, starting
//! with a letter, case-insensitively unique, and not a reserved word.

use std::collections::HashSet;

/// VHDL-93 reserved words (lowercase).
const RESERVED: &[&str] = &[
    "abs",
    "access",
    "after",
    "alias",
    "all",
    "and",
    "architecture",
    "array",
    "assert",
    "attribute",
    "begin",
    "block",
    "body",
    "buffer",
    "bus",
    "case",
    "component",
    "configuration",
    "constant",
    "disconnect",
    "downto",
    "else",
    "elsif",
    "end",
    "entity",
    "exit",
    "file",
    "for",
    "function",
    "generate",
    "generic",
    "group",
    "guarded",
    "if",
    "impure",
    "in",
    "inertial",
    "inout",
    "is",
    "label",
    "library",
    "linkage",
    "literal",
    "loop",
    "map",
    "mod",
    "nand",
    "new",
    "next",
    "nor",
    "not",
    "null",
    "of",
    "on",
    "open",
    "or",
    "others",
    "out",
    "package",
    "port",
    "postponed",
    "procedure",
    "process",
    "pure",
    "range",
    "record",
    "register",
    "reject",
    "rem",
    "report",
    "return",
    "rol",
    "ror",
    "select",
    "severity",
    "signal",
    "shared",
    "sla",
    "sll",
    "sra",
    "srl",
    "subtype",
    "then",
    "to",
    "transport",
    "type",
    "unaffected",
    "units",
    "until",
    "use",
    "variable",
    "wait",
    "when",
    "while",
    "with",
    "xnor",
    "xor",
];

/// Sanitizes an arbitrary string into a legal VHDL basic identifier.
///
/// Illegal characters become underscores, runs of underscores collapse,
/// a leading digit gains a `v` prefix, and reserved words gain a `_v`
/// suffix. The empty string becomes `"anon"`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_underscore = true; // suppress leading underscores
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
            last_underscore = false;
        } else if !last_underscore {
            out.push('_');
            last_underscore = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    if out.is_empty() {
        return "anon".to_string();
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'v');
    }
    if RESERVED.contains(&out.to_ascii_lowercase().as_str()) {
        out.push_str("_v");
    }
    out
}

/// Allocates unique sanitized identifiers, case-insensitively.
#[derive(Debug, Default)]
pub struct NameAllocator {
    taken: HashSet<String>,
}

impl NameAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        NameAllocator::default()
    }

    /// Returns a sanitized identifier for `name`, appending `_2`, `_3`
    /// ... on collision.
    pub fn allocate(&mut self, name: &str) -> String {
        let base = sanitize(name);
        let mut candidate = base.clone();
        let mut counter = 1u32;
        while !self.taken.insert(candidate.to_ascii_lowercase()) {
            counter += 1;
            candidate = format!("{base}_{counter}");
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_legal_names_through() {
        assert_eq!(sanitize("adder_32"), "adder_32");
        assert_eq!(sanitize("TopLevel"), "TopLevel");
    }

    #[test]
    fn replaces_illegal_characters() {
        assert_eq!(
            sanitize("duplicator_i<Stream(Bit(8)),2>"),
            "duplicator_i_Stream_Bit_8_2"
        );
        assert_eq!(sanitize("a..b"), "a_b");
    }

    #[test]
    fn collapses_underscores_and_trims() {
        assert_eq!(sanitize("__a__b__"), "a_b");
        assert_eq!(sanitize("a---b"), "a_b");
    }

    #[test]
    fn fixes_leading_digit() {
        assert_eq!(sanitize("8bit"), "v8bit");
    }

    #[test]
    fn avoids_reserved_words() {
        assert_eq!(sanitize("signal"), "signal_v");
        assert_eq!(sanitize("Entity"), "Entity_v");
        assert_eq!(sanitize("out"), "out_v");
    }

    #[test]
    fn empty_becomes_anon() {
        assert_eq!(sanitize(""), "anon");
        assert_eq!(sanitize("<>"), "anon");
    }

    #[test]
    fn allocator_uniquifies_case_insensitively() {
        let mut a = NameAllocator::new();
        assert_eq!(a.allocate("x"), "x");
        assert_eq!(a.allocate("X"), "X_2");
        assert_eq!(a.allocate("x"), "x_3");
        assert_eq!(a.allocate("y"), "y");
    }
}
