//! Identifier sanitization (re-exported from [`tydi_rtl::names`]).
//!
//! Tydi-lang names (which may contain template mangling such as
//! `duplicator_i<Stream(Bit(8)),2>`) must map to legal, unique HDL
//! identifiers. Legalization lives in `tydi-rtl` with per-backend
//! keyword tables; the functions re-exported here are the
//! backend-*neutral* variants (avoid every backend's keywords,
//! uniquify case-insensitively) so one legalized name serves the VHDL
//! and SystemVerilog emitters alike. Backend-specific rules are
//! available as [`tydi_rtl::names::sanitize_for`] and
//! [`tydi_rtl::names::NameAllocator::for_backend`].

pub use tydi_rtl::names::{sanitize, NameAllocator};

#[cfg(test)]
mod tests {
    use super::*;

    // The historic VHDL-facing behaviour, pinned: the neutral rules
    // are a superset of VHDL's, so existing callers see no change for
    // VHDL-reserved or structurally illegal names.
    #[test]
    fn vhdl_reserved_words_still_suffixed() {
        assert_eq!(sanitize("signal"), "signal_v");
        assert_eq!(sanitize("Entity"), "Entity_v");
        assert_eq!(sanitize("out"), "out_v");
    }

    #[test]
    fn template_mangling_still_flattened() {
        assert_eq!(
            sanitize("duplicator_i<Stream(Bit(8)),2>"),
            "duplicator_i_Stream_Bit_8_2"
        );
    }

    #[test]
    fn allocator_still_uniquifies_case_insensitively() {
        let mut a = NameAllocator::new();
        assert_eq!(a.allocate("x"), "x");
        assert_eq!(a.allocate("X"), "X_2");
        assert_eq!(a.allocate("x"), "x_3");
        assert_eq!(a.allocate("y"), "y");
    }
}
