//! Builtin RTL generators.
//!
//! Standard-library components are "too elementary to be described as
//! instances and connections", so their RTL is produced by a hard-coded
//! generation process (paper §IV-C). This module provides the registry
//! that maps a builtin key (such as `std.duplicator`) to a generator
//! function, plus the handshake-layer generators the compiler itself
//! depends on. `tydi-stdlib` registers the data-processing generators
//! (arithmetic, comparison, filtering, ...) on top.

use crate::error::VhdlError;
use crate::signals::{expand_port, PortMode, VhdlSignal};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, RwLock};
use tydi_ir::{Implementation, Port, PortDirection, Project, Streamlet};

/// Everything a generator may inspect.
pub struct BuiltinCtx<'a> {
    /// The surrounding project (for cross-references).
    pub project: &'a Project,
    /// The streamlet whose ports the architecture must drive.
    pub streamlet: &'a Streamlet,
    /// The external implementation carrying the builtin key and any
    /// `param_*` attributes left by template instantiation.
    pub implementation: &'a Implementation,
}

impl BuiltinCtx<'_> {
    /// Input ports of the streamlet.
    pub fn inputs(&self) -> Vec<&Port> {
        self.streamlet
            .ports
            .iter()
            .filter(|p| p.direction == PortDirection::In)
            .collect()
    }

    /// Output ports of the streamlet.
    pub fn outputs(&self) -> Vec<&Port> {
        self.streamlet
            .ports
            .iter()
            .filter(|p| p.direction == PortDirection::Out)
            .collect()
    }

    /// Looks up a `param_<name>` attribute.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.implementation
            .attributes
            .get(&format!("param_{name}"))
            .map(String::as_str)
    }
}

/// The architecture body a generator produces: declarations go between
/// `architecture ... is` and `begin`; statements between `begin` and
/// `end architecture`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArchBody {
    /// Signal/constant declarations.
    pub decls: String,
    /// Concurrent statements and processes.
    pub stmts: String,
}

/// A builtin generator function.
pub type BuiltinFn = Arc<dyn Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> + Send + Sync>;

/// Thread-safe registry of builtin generators.
#[derive(Clone, Default)]
pub struct BuiltinRegistry {
    map: Arc<RwLock<HashMap<String, BuiltinFn>>>,
}

impl std::fmt::Debug for BuiltinRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let keys: Vec<String> = self.keys();
        f.debug_struct("BuiltinRegistry")
            .field("keys", &keys)
            .finish()
    }
}

impl BuiltinRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BuiltinRegistry::default()
    }

    /// A registry preloaded with the handshake-layer builtins the
    /// compiler's sugaring passes depend on: `std.passthrough`,
    /// `std.duplicator` and `std.voider`.
    pub fn with_core() -> Self {
        let reg = BuiltinRegistry::new();
        reg.register("std.passthrough", gen_passthrough);
        reg.register("std.duplicator", gen_duplicator);
        reg.register("std.voider", gen_voider);
        reg
    }

    /// Registers (or replaces) a generator under `key`.
    pub fn register(
        &self,
        key: impl Into<String>,
        generator: impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> + Send + Sync + 'static,
    ) {
        self.map
            .write()
            .expect("builtin registry poisoned")
            .insert(key.into(), Arc::new(generator));
    }

    /// True if `key` has a registered generator.
    pub fn contains(&self, key: &str) -> bool {
        self.map
            .read()
            .expect("builtin registry poisoned")
            .contains_key(key)
    }

    /// All registered keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .map
            .read()
            .expect("builtin registry poisoned")
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Runs the generator for `key`.
    pub fn generate(&self, key: &str, ctx: &BuiltinCtx<'_>) -> Result<ArchBody, VhdlError> {
        let generator = self
            .map
            .read()
            .expect("builtin registry poisoned")
            .get(key)
            .cloned();
        match generator {
            None => Err(VhdlError::UnknownBuiltin {
                implementation: ctx.implementation.name.clone(),
                key: key.to_string(),
            }),
            Some(g) => g(ctx).map_err(|message| VhdlError::BuiltinRejected {
                implementation: ctx.implementation.name.clone(),
                key: key.to_string(),
                message,
            }),
        }
    }
}

/// Pairs up the expanded signals of two ports (they must have the same
/// shape, which the DRC guarantees for connected ports).
fn paired_signals(a: &Port, b: &Port) -> Result<Vec<(VhdlSignal, VhdlSignal)>, String> {
    let sa = expand_port(a).map_err(|e| e.to_string())?;
    let sb = expand_port(b).map_err(|e| e.to_string())?;
    if sa.len() != sb.len() {
        return Err(format!(
            "ports `{}` and `{}` have different signal shapes",
            a.name, b.name
        ));
    }
    Ok(sa.into_iter().zip(sb).collect())
}

/// `std.passthrough`: forward every signal from the input port to the
/// output port; `ready` flows backward.
fn gen_passthrough(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let inputs = ctx.inputs();
    let outputs = ctx.outputs();
    let (Some(input), Some(output)) = (inputs.first(), outputs.first()) else {
        return Err("passthrough needs one input and one output port".into());
    };
    let mut stmts = String::new();
    for (si, so) in paired_signals(input, output)? {
        match si.mode {
            PortMode::In => {
                let _ = writeln!(stmts, "  {} <= {};", so.name, si.name);
            }
            PortMode::Out => {
                let _ = writeln!(stmts, "  {} <= {};", si.name, so.name);
            }
        }
    }
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

/// `std.duplicator`: copy the input packet to every output and only
/// acknowledge the input when *all* outputs acknowledged (paper §IV-C).
fn gen_duplicator(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let inputs = ctx.inputs();
    let outputs = ctx.outputs();
    let Some(input) = inputs.first() else {
        return Err("duplicator needs an input port".into());
    };
    if outputs.is_empty() {
        return Err("duplicator needs at least one output port".into());
    }
    let in_sigs = expand_port(input).map_err(|e| e.to_string())?;
    let mut decls = String::new();
    let mut stmts = String::new();

    // all_ready: every sink can accept.
    let ready_terms: Vec<String> = outputs
        .iter()
        .map(|o| format!("{}_ready", o.name))
        .collect();
    let _ = writeln!(decls, "  signal all_ready : std_logic;");
    let _ = writeln!(stmts, "  all_ready <= {};", ready_terms.join(" and "));
    let _ = writeln!(stmts, "  {}_ready <= all_ready;", input.name);

    for output in &outputs {
        let out_sigs = expand_port(output).map_err(|e| e.to_string())?;
        for (si, so) in in_sigs.iter().zip(out_sigs.iter()) {
            if si.name.ends_with("_valid") {
                let _ = writeln!(stmts, "  {} <= {} and all_ready;", so.name, si.name);
            } else if si.name.ends_with("_ready") {
                // Handled via all_ready above.
            } else {
                let _ = writeln!(stmts, "  {} <= {};", so.name, si.name);
            }
        }
    }
    Ok(ArchBody { decls, stmts })
}

/// `std.voider`: always acknowledge and drop the data (paper §IV-C).
fn gen_voider(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let inputs = ctx.inputs();
    let Some(input) = inputs.first() else {
        return Err("voider needs an input port".into());
    };
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  {}_ready <= '1';", input.name);
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_spec::{LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    fn ctx_project(
        streamlet: Streamlet,
        implementation: Implementation,
    ) -> (Project, String, String) {
        let mut p = Project::new("t");
        let s_name = streamlet.name.clone();
        let i_name = implementation.name.clone();
        p.add_streamlet(streamlet).unwrap();
        p.add_implementation(implementation).unwrap();
        (p, s_name, i_name)
    }

    #[test]
    fn registry_register_and_lookup() {
        let reg = BuiltinRegistry::with_core();
        assert!(reg.contains("std.duplicator"));
        assert!(!reg.contains("std.missing"));
        assert_eq!(
            reg.keys(),
            vec!["std.duplicator", "std.passthrough", "std.voider"]
        );
    }

    #[test]
    fn unknown_builtin_errors() {
        let reg = BuiltinRegistry::new();
        let s = Streamlet::new("s").with_port(Port::new("i", PortDirection::In, stream8()));
        let imp = Implementation::external("x_i", "s");
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        assert!(matches!(
            reg.generate("nope", &ctx),
            Err(VhdlError::UnknownBuiltin { .. })
        ));
    }

    #[test]
    fn passthrough_forwards_and_backwards() {
        let reg = BuiltinRegistry::with_core();
        let s = Streamlet::new("s")
            .with_port(Port::new("i", PortDirection::In, stream8()))
            .with_port(Port::new("o", PortDirection::Out, stream8()));
        let imp = Implementation::external("pass_i", "s");
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        let body = reg.generate("std.passthrough", &ctx).unwrap();
        assert!(body.stmts.contains("o_valid <= i_valid;"));
        assert!(body.stmts.contains("o_data <= i_data;"));
        assert!(body.stmts.contains("i_ready <= o_ready;"));
    }

    #[test]
    fn duplicator_acknowledges_when_all_ready() {
        let reg = BuiltinRegistry::with_core();
        let s = Streamlet::new("s")
            .with_port(Port::new("i", PortDirection::In, stream8()))
            .with_port(Port::new("o0", PortDirection::Out, stream8()))
            .with_port(Port::new("o1", PortDirection::Out, stream8()));
        let imp = Implementation::external("dup_i", "s");
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        let body = reg.generate("std.duplicator", &ctx).unwrap();
        assert!(body.stmts.contains("all_ready <= o0_ready and o1_ready;"));
        assert!(body.stmts.contains("i_ready <= all_ready;"));
        assert!(body.stmts.contains("o0_valid <= i_valid and all_ready;"));
        assert!(body.stmts.contains("o1_data <= i_data;"));
    }

    #[test]
    fn voider_always_ready() {
        let reg = BuiltinRegistry::with_core();
        let s = Streamlet::new("s").with_port(Port::new("i", PortDirection::In, stream8()));
        let imp = Implementation::external("void_i", "s");
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        let body = reg.generate("std.voider", &ctx).unwrap();
        assert_eq!(body.stmts.trim(), "i_ready <= '1';");
    }

    #[test]
    fn builtin_rejection_wraps_message() {
        let reg = BuiltinRegistry::with_core();
        let s = Streamlet::new("s"); // no ports at all
        let imp = Implementation::external("dup_i", "s");
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        match reg.generate("std.duplicator", &ctx) {
            Err(VhdlError::BuiltinRejected { message, .. }) => {
                assert!(message.contains("input"));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn param_lookup() {
        let s = Streamlet::new("s");
        let mut imp = Implementation::external("x", "s");
        imp.attributes.insert("param_outputs".into(), "4".into());
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        assert_eq!(ctx.param("outputs"), Some("4"));
        assert_eq!(ctx.param("missing"), None);
    }
}
