//! Builtin RTL generators.
//!
//! Standard-library components are "too elementary to be described as
//! instances and connections", so their RTL is produced by a hard-coded
//! generation process (paper §IV-C). This module provides the registry
//! that maps a builtin key (such as `std.duplicator`) to a generator
//! function *per backend*, plus the handshake-layer generators the
//! compiler itself depends on. `tydi-stdlib` registers the
//! data-processing generators (arithmetic, comparison, filtering, ...)
//! on top.
//!
//! A generator produces the opaque behavioral body the netlist carries
//! for its backend ([`ArchBody`]: declarations + statements, in that
//! backend's syntax). [`BuiltinRegistry::register`] keeps its historic
//! meaning — register for VHDL — while
//! [`BuiltinRegistry::register_for`] targets any backend; the lowering
//! collects one body per registered backend so a single netlist can be
//! rendered by every emitter.

use crate::error::VhdlError;
use crate::signals::{expand_port, PortMode, VhdlSignal};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, RwLock};
use tydi_ir::{Implementation, Port, PortDirection, Project, Streamlet};
use tydi_rtl::Backend;

/// Everything a generator may inspect.
pub struct BuiltinCtx<'a> {
    /// The surrounding project (for cross-references).
    pub project: &'a Project,
    /// The streamlet whose ports the architecture must drive.
    pub streamlet: &'a Streamlet,
    /// The external implementation carrying the builtin key and any
    /// `param_*` attributes left by template instantiation.
    pub implementation: &'a Implementation,
}

impl BuiltinCtx<'_> {
    /// Input ports of the streamlet.
    pub fn inputs(&self) -> Vec<&Port> {
        self.streamlet
            .ports
            .iter()
            .filter(|p| p.direction == PortDirection::In)
            .collect()
    }

    /// Output ports of the streamlet.
    pub fn outputs(&self) -> Vec<&Port> {
        self.streamlet
            .ports
            .iter()
            .filter(|p| p.direction == PortDirection::Out)
            .collect()
    }

    /// Looks up a `param_<name>` attribute.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.implementation
            .attributes
            .get(&format!("param_{name}"))
            .map(String::as_str)
    }
}

/// The behavioral body a generator produces, in its backend's syntax.
/// For VHDL, declarations go between `architecture ... is` and
/// `begin`, statements between `begin` and `end architecture`; for
/// SystemVerilog both sections land inside the `module` body,
/// declarations first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArchBody {
    /// Signal/constant declarations.
    pub decls: String,
    /// Concurrent statements and processes.
    pub stmts: String,
}

impl From<ArchBody> for tydi_rtl::netlist::BehavioralBody {
    fn from(body: ArchBody) -> Self {
        tydi_rtl::netlist::BehavioralBody {
            decls: body.decls,
            stmts: body.stmts,
        }
    }
}

/// A builtin generator function.
pub type BuiltinFn = Arc<dyn Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> + Send + Sync>;

/// Thread-safe registry of builtin generators, keyed by `(backend,
/// key)`.
#[derive(Clone, Default)]
pub struct BuiltinRegistry {
    map: Arc<RwLock<HashMap<(Backend, String), BuiltinFn>>>,
}

impl std::fmt::Debug for BuiltinRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let keys: Vec<String> = self.keys();
        f.debug_struct("BuiltinRegistry")
            .field("keys", &keys)
            .finish()
    }
}

impl BuiltinRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BuiltinRegistry::default()
    }

    /// A registry preloaded with the handshake-layer builtins the
    /// compiler's sugaring passes depend on — `std.passthrough`,
    /// `std.duplicator` and `std.voider` — for every backend.
    pub fn with_core() -> Self {
        let reg = BuiltinRegistry::new();
        reg.register("std.passthrough", gen_passthrough);
        reg.register("std.duplicator", gen_duplicator);
        reg.register("std.voider", gen_voider);
        reg.register_for(
            Backend::SystemVerilog,
            "std.passthrough",
            gen_passthrough_sv,
        );
        reg.register_for(Backend::SystemVerilog, "std.duplicator", gen_duplicator_sv);
        reg.register_for(Backend::SystemVerilog, "std.voider", gen_voider_sv);
        reg
    }

    /// Registers (or replaces) a VHDL generator under `key`.
    pub fn register(
        &self,
        key: impl Into<String>,
        generator: impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> + Send + Sync + 'static,
    ) {
        self.register_for(Backend::Vhdl, key, generator);
    }

    /// Registers (or replaces) a generator under `key` for one
    /// backend.
    pub fn register_for(
        &self,
        backend: Backend,
        key: impl Into<String>,
        generator: impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> + Send + Sync + 'static,
    ) {
        self.map
            .write()
            .expect("builtin registry poisoned")
            .insert((backend, key.into()), Arc::new(generator));
    }

    /// True if `key` has a registered generator for any backend.
    pub fn contains(&self, key: &str) -> bool {
        self.map
            .read()
            .expect("builtin registry poisoned")
            .keys()
            .any(|(_, k)| k == key)
    }

    /// True if `key` has a generator for `backend`.
    pub fn contains_for(&self, backend: Backend, key: &str) -> bool {
        self.map
            .read()
            .expect("builtin registry poisoned")
            .contains_key(&(backend, key.to_string()))
    }

    /// The backends `key` is registered for, in
    /// [`Backend::ALL`] order.
    pub fn backends_for(&self, key: &str) -> Vec<Backend> {
        Backend::ALL
            .into_iter()
            .filter(|b| self.contains_for(*b, key))
            .collect()
    }

    /// All registered keys (across backends), sorted and deduplicated.
    pub fn keys(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .map
            .read()
            .expect("builtin registry poisoned")
            .keys()
            .map(|(_, k)| k.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Runs the VHDL generator for `key`.
    pub fn generate(&self, key: &str, ctx: &BuiltinCtx<'_>) -> Result<ArchBody, VhdlError> {
        self.generate_for(Backend::Vhdl, key, ctx)
    }

    /// Runs the generator for `key` on one backend.
    pub fn generate_for(
        &self,
        backend: Backend,
        key: &str,
        ctx: &BuiltinCtx<'_>,
    ) -> Result<ArchBody, VhdlError> {
        let generator = self
            .map
            .read()
            .expect("builtin registry poisoned")
            .get(&(backend, key.to_string()))
            .cloned();
        match generator {
            None => Err(VhdlError::UnknownBuiltin {
                implementation: ctx.implementation.name.clone(),
                key: key.to_string(),
            }),
            Some(g) => g(ctx).map_err(|message| VhdlError::BuiltinRejected {
                implementation: ctx.implementation.name.clone(),
                key: key.to_string(),
                message,
            }),
        }
    }
}

/// Pairs up the expanded signals of two ports (they must have the same
/// shape, which the DRC guarantees for connected ports).
fn paired_signals(a: &Port, b: &Port) -> Result<Vec<(VhdlSignal, VhdlSignal)>, String> {
    let sa = expand_port(a).map_err(|e| e.to_string())?;
    let sb = expand_port(b).map_err(|e| e.to_string())?;
    if sa.len() != sb.len() {
        return Err(format!(
            "ports `{}` and `{}` have different signal shapes",
            a.name, b.name
        ));
    }
    Ok(sa.into_iter().zip(sb).collect())
}

fn one_in_one_out<'a>(ctx: &'a BuiltinCtx<'_>) -> Result<(&'a Port, &'a Port), String> {
    let inputs = ctx.inputs();
    let outputs = ctx.outputs();
    match (inputs.first(), outputs.first()) {
        (Some(i), Some(o)) => Ok((i, o)),
        _ => Err("passthrough needs one input and one output port".into()),
    }
}

/// `std.passthrough` (VHDL): forward every signal from the input port
/// to the output port; `ready` flows backward.
fn gen_passthrough(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let (input, output) = one_in_one_out(ctx)?;
    let mut stmts = String::new();
    for (si, so) in paired_signals(input, output)? {
        match si.mode {
            PortMode::In => {
                let _ = writeln!(stmts, "  {} <= {};", so.name, si.name);
            }
            PortMode::Out => {
                let _ = writeln!(stmts, "  {} <= {};", si.name, so.name);
            }
        }
    }
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

/// `std.passthrough` (SystemVerilog).
fn gen_passthrough_sv(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let (input, output) = one_in_one_out(ctx)?;
    let mut stmts = String::new();
    for (si, so) in paired_signals(input, output)? {
        match si.mode {
            PortMode::In => {
                let _ = writeln!(stmts, "  assign {} = {};", so.name, si.name);
            }
            PortMode::Out => {
                let _ = writeln!(stmts, "  assign {} = {};", si.name, so.name);
            }
        }
    }
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

fn duplicator_io<'a>(ctx: &'a BuiltinCtx<'_>) -> Result<(&'a Port, Vec<&'a Port>), String> {
    let inputs = ctx.inputs();
    let outputs = ctx.outputs();
    let Some(input) = inputs.first() else {
        return Err("duplicator needs an input port".into());
    };
    if outputs.is_empty() {
        return Err("duplicator needs at least one output port".into());
    }
    Ok((input, outputs))
}

/// `std.duplicator` (VHDL): copy the input packet to every output and
/// only acknowledge the input when *all* outputs acknowledged (paper
/// §IV-C).
fn gen_duplicator(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let (input, outputs) = duplicator_io(ctx)?;
    let in_sigs = expand_port(input).map_err(|e| e.to_string())?;
    let mut decls = String::new();
    let mut stmts = String::new();

    // all_ready: every sink can accept.
    let ready_terms: Vec<String> = outputs
        .iter()
        .map(|o| format!("{}_ready", o.name))
        .collect();
    let _ = writeln!(decls, "  signal all_ready : std_logic;");
    let _ = writeln!(stmts, "  all_ready <= {};", ready_terms.join(" and "));
    let _ = writeln!(stmts, "  {}_ready <= all_ready;", input.name);

    for output in &outputs {
        let out_sigs = expand_port(output).map_err(|e| e.to_string())?;
        for (si, so) in in_sigs.iter().zip(out_sigs.iter()) {
            if si.name.ends_with("_valid") {
                let _ = writeln!(stmts, "  {} <= {} and all_ready;", so.name, si.name);
            } else if si.name.ends_with("_ready") {
                // Handled via all_ready above.
            } else {
                let _ = writeln!(stmts, "  {} <= {};", so.name, si.name);
            }
        }
    }
    Ok(ArchBody { decls, stmts })
}

/// `std.duplicator` (SystemVerilog).
fn gen_duplicator_sv(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let (input, outputs) = duplicator_io(ctx)?;
    let in_sigs = expand_port(input).map_err(|e| e.to_string())?;
    let mut decls = String::new();
    let mut stmts = String::new();

    let ready_terms: Vec<String> = outputs
        .iter()
        .map(|o| format!("{}_ready", o.name))
        .collect();
    let _ = writeln!(decls, "  logic all_ready;");
    let _ = writeln!(stmts, "  assign all_ready = {};", ready_terms.join(" & "));
    let _ = writeln!(stmts, "  assign {}_ready = all_ready;", input.name);

    for output in &outputs {
        let out_sigs = expand_port(output).map_err(|e| e.to_string())?;
        for (si, so) in in_sigs.iter().zip(out_sigs.iter()) {
            if si.name.ends_with("_valid") {
                let _ = writeln!(stmts, "  assign {} = {} & all_ready;", so.name, si.name);
            } else if si.name.ends_with("_ready") {
                // Handled via all_ready above.
            } else {
                let _ = writeln!(stmts, "  assign {} = {};", so.name, si.name);
            }
        }
    }
    Ok(ArchBody { decls, stmts })
}

fn voider_input<'a>(ctx: &'a BuiltinCtx<'_>) -> Result<&'a Port, String> {
    ctx.inputs()
        .first()
        .copied()
        .ok_or_else(|| "voider needs an input port".into())
}

/// `std.voider` (VHDL): always acknowledge and drop the data (paper
/// §IV-C).
fn gen_voider(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let input = voider_input(ctx)?;
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  {}_ready <= '1';", input.name);
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

/// `std.voider` (SystemVerilog).
fn gen_voider_sv(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let input = voider_input(ctx)?;
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  assign {}_ready = 1'b1;", input.name);
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_spec::{LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    fn ctx_project(
        streamlet: Streamlet,
        implementation: Implementation,
    ) -> (Project, String, String) {
        let mut p = Project::new("t");
        let s_name = streamlet.name.clone();
        let i_name = implementation.name.clone();
        p.add_streamlet(streamlet).unwrap();
        p.add_implementation(implementation).unwrap();
        (p, s_name, i_name)
    }

    #[test]
    fn registry_register_and_lookup() {
        let reg = BuiltinRegistry::with_core();
        assert!(reg.contains("std.duplicator"));
        assert!(!reg.contains("std.missing"));
        assert_eq!(
            reg.keys(),
            vec!["std.duplicator", "std.passthrough", "std.voider"]
        );
    }

    #[test]
    fn core_builtins_cover_every_backend() {
        let reg = BuiltinRegistry::with_core();
        for key in ["std.duplicator", "std.passthrough", "std.voider"] {
            assert_eq!(reg.backends_for(key), Backend::ALL.to_vec(), "{key}");
        }
    }

    #[test]
    fn per_backend_registration_is_independent() {
        let reg = BuiltinRegistry::new();
        reg.register_for(Backend::SystemVerilog, "x.only_sv", |_| {
            Ok(ArchBody::default())
        });
        assert!(reg.contains("x.only_sv"));
        assert!(!reg.contains_for(Backend::Vhdl, "x.only_sv"));
        assert!(reg.contains_for(Backend::SystemVerilog, "x.only_sv"));
        assert_eq!(reg.backends_for("x.only_sv"), vec![Backend::SystemVerilog]);
    }

    #[test]
    fn unknown_builtin_errors() {
        let reg = BuiltinRegistry::new();
        let s = Streamlet::new("s").with_port(Port::new("i", PortDirection::In, stream8()));
        let imp = Implementation::external("x_i", "s");
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        assert!(matches!(
            reg.generate("nope", &ctx),
            Err(VhdlError::UnknownBuiltin { .. })
        ));
    }

    #[test]
    fn passthrough_forwards_and_backwards() {
        let reg = BuiltinRegistry::with_core();
        let s = Streamlet::new("s")
            .with_port(Port::new("i", PortDirection::In, stream8()))
            .with_port(Port::new("o", PortDirection::Out, stream8()));
        let imp = Implementation::external("pass_i", "s");
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        let body = reg.generate("std.passthrough", &ctx).unwrap();
        assert!(body.stmts.contains("o_valid <= i_valid;"));
        assert!(body.stmts.contains("o_data <= i_data;"));
        assert!(body.stmts.contains("i_ready <= o_ready;"));
        let sv = reg
            .generate_for(Backend::SystemVerilog, "std.passthrough", &ctx)
            .unwrap();
        assert!(sv.stmts.contains("assign o_valid = i_valid;"));
        assert!(sv.stmts.contains("assign o_data = i_data;"));
        assert!(sv.stmts.contains("assign i_ready = o_ready;"));
    }

    #[test]
    fn duplicator_acknowledges_when_all_ready() {
        let reg = BuiltinRegistry::with_core();
        let s = Streamlet::new("s")
            .with_port(Port::new("i", PortDirection::In, stream8()))
            .with_port(Port::new("o0", PortDirection::Out, stream8()))
            .with_port(Port::new("o1", PortDirection::Out, stream8()));
        let imp = Implementation::external("dup_i", "s");
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        let body = reg.generate("std.duplicator", &ctx).unwrap();
        assert!(body.stmts.contains("all_ready <= o0_ready and o1_ready;"));
        assert!(body.stmts.contains("i_ready <= all_ready;"));
        assert!(body.stmts.contains("o0_valid <= i_valid and all_ready;"));
        assert!(body.stmts.contains("o1_data <= i_data;"));
        let sv = reg
            .generate_for(Backend::SystemVerilog, "std.duplicator", &ctx)
            .unwrap();
        assert!(sv.decls.contains("logic all_ready;"));
        assert!(sv.stmts.contains("assign all_ready = o0_ready & o1_ready;"));
        assert!(sv.stmts.contains("assign o0_valid = i_valid & all_ready;"));
        assert!(sv.stmts.contains("assign o1_data = i_data;"));
    }

    #[test]
    fn voider_always_ready() {
        let reg = BuiltinRegistry::with_core();
        let s = Streamlet::new("s").with_port(Port::new("i", PortDirection::In, stream8()));
        let imp = Implementation::external("void_i", "s");
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        let body = reg.generate("std.voider", &ctx).unwrap();
        assert_eq!(body.stmts.trim(), "i_ready <= '1';");
        let sv = reg
            .generate_for(Backend::SystemVerilog, "std.voider", &ctx)
            .unwrap();
        assert_eq!(sv.stmts.trim(), "assign i_ready = 1'b1;");
    }

    #[test]
    fn builtin_rejection_wraps_message() {
        let reg = BuiltinRegistry::with_core();
        let s = Streamlet::new("s"); // no ports at all
        let imp = Implementation::external("dup_i", "s");
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        match reg.generate("std.duplicator", &ctx) {
            Err(VhdlError::BuiltinRejected { message, .. }) => {
                assert!(message.contains("input"));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn param_lookup() {
        let s = Streamlet::new("s");
        let mut imp = Implementation::external("x", "s");
        imp.attributes.insert("param_outputs".into(), "4".into());
        let (p, s_name, i_name) = ctx_project(s, imp);
        let ctx = BuiltinCtx {
            project: &p,
            streamlet: p.streamlet(&s_name).unwrap(),
            implementation: p.implementation(&i_name).unwrap(),
        };
        assert_eq!(ctx.param("outputs"), Some("4"));
        assert_eq!(ctx.param("missing"), None);
    }
}
