//! # tydi-vhdl
//!
//! The Tydi-IR RTL backend (the second compilation step of the
//! paper's toolchain, Fig. 1). Tydi-IR is lowered **once** to the
//! backend-neutral netlist of [`tydi_rtl`] ([`lower::lower_project`])
//! and then rendered by a per-backend emitter; [`generate_project`]
//! is the VHDL entry point and [`generate_project_for`] selects any
//! backend (VHDL or SystemVerilog). Every Tydi-IR implementation
//! becomes one netlist module and one generated file:
//!
//! * each port's logical stream type is lowered to its physical
//!   streams (via [`tydi_spec::lower`]) and each physical stream
//!   expands into `valid`/`ready`/`data`/`last`/`stai`/`endi`/`strb`/
//!   `user` signals ([`signals`]);
//! * *normal* implementations become structural bodies with direct
//!   instantiation and one intermediate signal bundle per connection;
//! * *external* implementations with a registered builtin key get one
//!   behavioral body per backend from the [`builtin`] registry — the
//!   "hard-coded RTL generation process" for standard-library
//!   components described in paper §IV-C;
//! * testbenches recorded by the simulator lower to VHDL testbenches
//!   (paper §V-C).
//!
//! The backend also exposes [`loc::count_loc`], the line-of-code metric
//! used to regenerate the paper's Table IV.

#![warn(missing_docs)]

pub mod backend;
pub mod builtin;
pub mod check;
pub mod error;
pub mod loc;
pub mod lower;
pub mod names;
pub mod signals;
pub mod testbench;

pub use backend::{
    files_to_string, generate_project, generate_project_cached, generate_project_cached_with,
    generate_project_for, generate_project_for_with, generate_to_string, generate_to_string_for,
    VhdlFile, VhdlOptions,
};
pub use builtin::BuiltinRegistry;
pub use error::VhdlError;
pub use loc::count_loc;
pub use lower::{
    lower_project, lower_project_cached, lower_project_cached_with, lower_project_with,
    CodegenCache, CodegenStats,
};
pub use testbench::generate_testbench;
pub use tydi_rtl::Backend;
