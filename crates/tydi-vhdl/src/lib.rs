//! # tydi-vhdl
//!
//! The Tydi-IR to VHDL backend (the second compilation step of the
//! paper's toolchain, Fig. 1). Every Tydi-IR implementation becomes a
//! VHDL entity/architecture pair:
//!
//! * each port's logical stream type is lowered to its physical
//!   streams (via [`tydi_spec::lower`]) and each physical stream
//!   expands into `valid`/`ready`/`data`/`last`/`stai`/`endi`/`strb`/
//!   `user` signals;
//! * *normal* implementations become structural architectures with
//!   direct entity instantiation and one intermediate signal bundle per
//!   connection;
//! * *external* implementations with a registered builtin key get a
//!   behavioral architecture from the [`builtin`] registry — the
//!   "hard-coded RTL generation process" for standard-library
//!   components described in paper §IV-C;
//! * testbenches recorded by the simulator lower to VHDL testbenches
//!   (paper §V-C).
//!
//! The backend also exposes [`loc::count_loc`], the line-of-code metric
//! used to regenerate the paper's Table IV.

#![warn(missing_docs)]

pub mod backend;
pub mod builtin;
pub mod check;
pub mod error;
pub mod loc;
pub mod names;
pub mod signals;
pub mod testbench;

pub use backend::{generate_project, VhdlFile, VhdlOptions};
pub use builtin::BuiltinRegistry;
pub use error::VhdlError;
pub use loc::count_loc;
pub use testbench::generate_testbench;
