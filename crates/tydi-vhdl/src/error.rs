//! Errors raised during VHDL code generation.

use std::fmt;
use tydi_ir::IrError;
use tydi_spec::SpecError;

/// Errors produced by the VHDL backend.
#[derive(Debug, Clone, PartialEq)]
pub enum VhdlError {
    /// The project failed IR validation; codegen refuses to run.
    InvalidProject(Vec<IrError>),
    /// An external implementation referenced a builtin generator that
    /// is not registered.
    UnknownBuiltin {
        /// The implementation carrying the key.
        implementation: String,
        /// The unregistered builtin key.
        key: String,
    },
    /// A builtin generator rejected the streamlet it was asked to
    /// implement (e.g. a duplicator without any output port).
    BuiltinRejected {
        /// The implementation being generated.
        implementation: String,
        /// The builtin key.
        key: String,
        /// The generator's complaint.
        message: String,
    },
    /// An underlying type error surfaced during lowering.
    Spec(SpecError),
    /// An IR inconsistency discovered mid-generation (should have been
    /// caught by validation; indicates a pass ordering bug).
    Inconsistent(String),
    /// The netlist emitter failed (e.g. a builtin registered for one
    /// backend was rendered by another).
    Emit(tydi_rtl::EmitError),
}

impl fmt::Display for VhdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VhdlError::InvalidProject(errors) => {
                writeln!(
                    f,
                    "project failed validation with {} error(s):",
                    errors.len()
                )?;
                for e in errors {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            VhdlError::UnknownBuiltin {
                implementation,
                key,
            } => write!(
                f,
                "implementation `{implementation}` references unregistered builtin `{key}`"
            ),
            VhdlError::BuiltinRejected {
                implementation,
                key,
                message,
            } => write!(
                f,
                "builtin `{key}` rejected implementation `{implementation}`: {message}"
            ),
            VhdlError::Spec(e) => write!(f, "{e}"),
            VhdlError::Inconsistent(msg) => write!(f, "internal IR inconsistency: {msg}"),
            VhdlError::Emit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VhdlError {}

impl From<SpecError> for VhdlError {
    fn from(e: SpecError) -> Self {
        VhdlError::Spec(e)
    }
}

impl From<tydi_rtl::EmitError> for VhdlError {
    fn from(e: tydi_rtl::EmitError) -> Self {
        VhdlError::Emit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = VhdlError::UnknownBuiltin {
            implementation: "dup_i".into(),
            key: "std.duplicator".into(),
        };
        assert!(e.to_string().contains("std.duplicator"));
        let e = VhdlError::InvalidProject(vec![]);
        assert!(e.to_string().contains("0 error"));
    }
}
