//! Lowering Tydi-IR to the backend-neutral netlist.
//!
//! This is the single structural step every backend shares: each
//! Tydi-IR implementation becomes one [`tydi_rtl::Module`] whose ports
//! are the expanded physical-stream signals of its streamlet
//! (via [`crate::signals`]), whose name is legalized for every backend
//! at once (via [`tydi_rtl::names`]), and whose body is structural
//! wiring, a per-backend behavioral block from the
//! [`crate::builtin::BuiltinRegistry`], or a black box. Emitters only
//! render; they never consult Tydi-IR.
//!
//! Per-implementation module construction fans out across the thread
//! pool: after entity names are allocated (a sequential, order-
//! dependent step), implementations are independent.

use crate::builtin::{BuiltinCtx, BuiltinRegistry};
use crate::error::VhdlError;
use crate::signals::{clock_signals, expand_port, expand_port_as, PortMode};
use crate::VhdlOptions;
use rayon::prelude::*;
use std::collections::HashMap;
use tydi_ir::{
    Connection, EndpointRef, Fingerprint, Fingerprinter, ImplId, ImplKind, Implementation, Project,
    ProjectIndex, Streamlet,
};
use tydi_rtl::names::{sanitize, NameAllocator};
use tydi_rtl::netlist::{
    AssignItem, Instance, Module, ModuleBody, ModulePort, NetDecl, NetItem, Netlist, PortDir,
    PortItem,
};
use tydi_rtl::Backend;

impl From<PortMode> for PortDir {
    fn from(mode: PortMode) -> Self {
        match mode {
            PortMode::In => PortDir::In,
            PortMode::Out => PortDir::Out,
        }
    }
}

/// Lowers a validated project to the netlist, once, for all backends,
/// building a fresh [`ProjectIndex`] for this run.
pub fn lower_project(
    project: &Project,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
) -> Result<Netlist, VhdlError> {
    lower_project_with(project, &ProjectIndex::build(project), registry, options)
}

/// Like [`lower_project`], but resolving every streamlet, instance
/// and port reference through the pipeline's shared [`ProjectIndex`]
/// instead of rebuilding per-pass lookup maps.
pub fn lower_project_with(
    project: &Project,
    index: &ProjectIndex,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
) -> Result<Netlist, VhdlError> {
    if options.validate {
        project
            .validate_with(index)
            .map_err(VhdlError::InvalidProject)?;
    }
    let module_names = allocate_module_names(project);

    // Implementations are independent once names are fixed; build
    // their modules in parallel, preserving definition order.
    let impls: Vec<(ImplId, &Implementation)> = project.implementations_with_ids().collect();
    let results: Vec<Result<Module, VhdlError>> = impls
        .par_iter()
        .map(|&(impl_id, implementation)| {
            let _span = tydi_obs::trace::span_named("tydi-vhdl", || {
                format!("lower:{}", implementation.name)
            });
            lower_implementation(
                project,
                index,
                registry,
                &module_names,
                impl_id,
                implementation,
                options,
            )
        })
        .collect();
    let modules = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(Netlist {
        name: project.name.clone(),
        emit_comments: options.emit_comments,
        modules,
    })
}

/// Allocates stable, unique module names for every implementation
/// (sequential: allocation order defines collision suffixes).
fn allocate_module_names(project: &Project) -> HashMap<&str, String> {
    let mut allocator = NameAllocator::new();
    let mut module_names: HashMap<&str, String> = HashMap::new();
    for implementation in project.implementations() {
        module_names.insert(
            implementation.name.as_str(),
            allocator.allocate(&implementation.name),
        );
    }
    module_names
}

/// The codegen cache key of one implementation: its content
/// fingerprint in context (see
/// [`tydi_ir::fingerprint::implementation_fingerprint`]) plus
/// everything else that shapes the lowered module — the allocated
/// module name, the allocated names of instantiated children (name
/// collisions elsewhere in the project can move them), the project
/// name and the comment option.
fn codegen_fingerprint(
    project: &Project,
    implementation: &Implementation,
    module_names: &HashMap<&str, String>,
    options: &VhdlOptions,
) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("codegen");
    fp.write_fingerprint(tydi_ir::fingerprint::implementation_fingerprint(
        project,
        implementation,
    ));
    fp.write_str(&project.name);
    fp.write_bool(options.emit_comments);
    fp.write_opt_str(
        module_names
            .get(implementation.name.as_str())
            .map(|s| s.as_str()),
    );
    for instance in implementation.instances() {
        fp.write_opt_str(
            module_names
                .get(instance.impl_name.as_str())
                .map(|s| s.as_str()),
        );
    }
    fp.finish()
}

/// Memoizes lowered modules and emitted files across compiles, keyed
/// by implementation content fingerprints — the codegen half of the
/// incremental pipeline. A cache instance is tied to one
/// [`BuiltinRegistry`] configuration: registering new builtins into
/// the registry after modules were cached does not invalidate them,
/// so build the registry once and reuse it with the cache.
#[derive(Debug, Default)]
pub struct CodegenCache {
    modules: HashMap<Fingerprint, Module>,
    emitted: HashMap<(Fingerprint, Backend), crate::VhdlFile>,
    stats: CodegenStats,
}

/// Cumulative reuse counters of a [`CodegenCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodegenStats {
    /// Modules served from the cache.
    pub modules_reused: usize,
    /// Modules lowered from scratch.
    pub modules_recomputed: usize,
    /// Emitted files served from the cache.
    pub files_reused: usize,
    /// Emitted files rendered from scratch.
    pub files_recomputed: usize,
}

impl CodegenCache {
    /// An empty cache.
    pub fn new() -> Self {
        CodegenCache::default()
    }

    /// Cumulative reuse counters.
    pub fn stats(&self) -> CodegenStats {
        self.stats
    }

    /// Number of memoized modules.
    pub fn module_entries(&self) -> usize {
        self.modules.len()
    }
}

/// Like [`lower_project`], but reusing per-module lowerings from the
/// cache. Only implementations whose codegen fingerprint is new are
/// lowered (in parallel); the returned keys align with the netlist's
/// modules and feed per-backend emission reuse.
pub fn lower_project_cached(
    project: &Project,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
    cache: &mut CodegenCache,
) -> Result<(Netlist, Vec<Fingerprint>), VhdlError> {
    lower_project_cached_with(
        project,
        &ProjectIndex::build(project),
        registry,
        options,
        cache,
    )
}

/// Like [`lower_project_cached`], but resolving references through
/// the pipeline's shared [`ProjectIndex`].
pub fn lower_project_cached_with(
    project: &Project,
    index: &ProjectIndex,
    registry: &BuiltinRegistry,
    options: &VhdlOptions,
    cache: &mut CodegenCache,
) -> Result<(Netlist, Vec<Fingerprint>), VhdlError> {
    if options.validate {
        project
            .validate_with(index)
            .map_err(VhdlError::InvalidProject)?;
    }
    let module_names = allocate_module_names(project);
    let impls: Vec<(ImplId, &Implementation)> = project.implementations_with_ids().collect();
    let keys: Vec<Fingerprint> = impls
        .iter()
        .map(|(_, implementation)| {
            codegen_fingerprint(project, implementation, &module_names, options)
        })
        .collect();
    let missing: Vec<usize> = keys
        .iter()
        .enumerate()
        .filter(|(_, key)| !cache.modules.contains_key(key))
        .map(|(position, _)| position)
        .collect();
    let lowered: Vec<(usize, Result<Module, VhdlError>)> = missing
        .par_iter()
        .map(|&position| {
            let (impl_id, implementation) = impls[position];
            let _span = tydi_obs::trace::span_named("tydi-vhdl", || {
                format!("lower:{}", implementation.name)
            });
            (
                position,
                lower_implementation(
                    project,
                    index,
                    registry,
                    &module_names,
                    impl_id,
                    implementation,
                    options,
                ),
            )
        })
        .collect();
    cache.stats.modules_reused += keys.len() - missing.len();
    cache.stats.modules_recomputed += missing.len();
    for (position, result) in lowered {
        cache.modules.insert(keys[position], result?);
    }
    let modules: Vec<Module> = keys.iter().map(|key| cache.modules[key].clone()).collect();
    Ok((
        Netlist {
            name: project.name.clone(),
            emit_comments: options.emit_comments,
            modules,
        },
        keys,
    ))
}

/// Renders a netlist produced by [`lower_project_cached`] for one
/// backend, reusing per-module emitted files keyed by the module's
/// codegen fingerprint.
pub fn emit_netlist_cached(
    netlist: &Netlist,
    keys: &[Fingerprint],
    backend: Backend,
    cache: &mut CodegenCache,
) -> Result<Vec<crate::VhdlFile>, VhdlError> {
    assert_eq!(
        netlist.modules.len(),
        keys.len(),
        "keys must come from the lowering that built this netlist"
    );
    let emitter = tydi_rtl::emitter_for(backend);
    let missing: Vec<usize> = keys
        .iter()
        .enumerate()
        .filter(|(_, key)| !cache.emitted.contains_key(&(**key, backend)))
        .map(|(index, _)| index)
        .collect();
    let rendered: Vec<(usize, Result<crate::VhdlFile, tydi_rtl::EmitError>)> = missing
        .par_iter()
        .map(|&index| {
            let module = &netlist.modules[index];
            let _span =
                tydi_obs::trace::span_named("tydi-vhdl", || format!("emit:{}", module.name));
            let result = emitter
                .emit_module(netlist, module)
                .map(|contents| crate::VhdlFile {
                    name: emitter.file_name(module),
                    contents,
                });
            (index, result)
        })
        .collect();
    cache.stats.files_reused += keys.len() - missing.len();
    cache.stats.files_recomputed += missing.len();
    for (index, result) in rendered {
        cache.emitted.insert((keys[index], backend), result?);
    }
    Ok(keys
        .iter()
        .map(|key| cache.emitted[&(*key, backend)].clone())
        .collect())
}

fn lower_implementation(
    project: &Project,
    index: &ProjectIndex,
    registry: &BuiltinRegistry,
    module_names: &HashMap<&str, String>,
    impl_id: ImplId,
    implementation: &Implementation,
    options: &VhdlOptions,
) -> Result<Module, VhdlError> {
    let streamlet = index
        .streamlet_of_impl(impl_id)
        .map(|sid| project.streamlet_by_id(sid))
        .ok_or_else(|| {
            VhdlError::Inconsistent(format!(
                "implementation `{}` references missing streamlet `{}`",
                implementation.name, implementation.streamlet
            ))
        })?;
    let name = module_names[implementation.name.as_str()].clone();

    let mut header = Vec::new();
    if options.emit_comments {
        header.push(format!("Implementation: {}", implementation.name));
        if !implementation.doc.is_empty() {
            header.extend(implementation.doc.lines().map(str::to_string));
        }
    }

    let ports = lower_ports(streamlet, options)?;
    let body = lower_body(
        project,
        index,
        registry,
        module_names,
        impl_id,
        implementation,
        streamlet,
        options,
    )?;
    Ok(Module {
        name,
        header,
        ports,
        body,
    })
}

/// Expands a streamlet's typed ports into the module port list:
/// clock/reset pairs per domain first, then each port's physical
/// signals behind an optional type comment.
fn lower_ports(streamlet: &Streamlet, options: &VhdlOptions) -> Result<Vec<PortItem>, VhdlError> {
    let mut items = Vec::new();
    for (_, clk, rst) in clock_signals(streamlet) {
        items.push(PortItem::Port(ModulePort {
            name: clk,
            dir: PortDir::In,
            width: 1,
        }));
        items.push(PortItem::Port(ModulePort {
            name: rst,
            dir: PortDir::In,
            width: 1,
        }));
    }
    for port in &streamlet.ports {
        if options.emit_comments {
            items.push(PortItem::Comment(format!(
                "port {} : {}",
                port.name, port.ty
            )));
        }
        for sig in expand_port(port)? {
            items.push(PortItem::Port(ModulePort {
                name: sig.name,
                dir: sig.mode.into(),
                width: sig.width,
            }));
        }
    }
    Ok(items)
}

#[allow(clippy::too_many_arguments)]
fn lower_body(
    project: &Project,
    index: &ProjectIndex,
    registry: &BuiltinRegistry,
    module_names: &HashMap<&str, String>,
    impl_id: ImplId,
    implementation: &Implementation,
    streamlet: &Streamlet,
    options: &VhdlOptions,
) -> Result<ModuleBody, VhdlError> {
    match &implementation.kind {
        ImplKind::External {
            builtin,
            sim_source,
        } => match builtin {
            Some(key) => {
                let ctx = BuiltinCtx {
                    project,
                    streamlet,
                    implementation,
                };
                let backends = registry.backends_for(key);
                if backends.is_empty() {
                    return Err(VhdlError::UnknownBuiltin {
                        implementation: implementation.name.clone(),
                        key: key.clone(),
                    });
                }
                let mut bodies = std::collections::BTreeMap::new();
                for backend in backends {
                    bodies.insert(backend, registry.generate_for(backend, key, &ctx)?.into());
                }
                Ok(ModuleBody::Behavioral { bodies })
            }
            None => {
                let mut comments = Vec::new();
                if options.emit_comments {
                    comments
                        .push("External implementation: body supplied by an external tool.".into());
                    if sim_source.is_some() {
                        comments
                            .push("Behaviour is specified by Tydi-lang simulation code.".into());
                    }
                }
                Ok(ModuleBody::BlackBox { comments })
            }
        },
        ImplKind::Normal {
            instances,
            connections,
        } => {
            // Net prefix for every endpoint, per the exactly-once DRC.
            let mut nets: HashMap<&EndpointRef, String> = HashMap::new();
            let mut net_items: Vec<NetItem> = Vec::new();
            let mut assign_items: Vec<AssignItem> = Vec::new();
            for (position, connection) in connections.iter().enumerate() {
                plan_connection(
                    project,
                    index,
                    impl_id,
                    streamlet,
                    position,
                    connection,
                    &mut nets,
                    &mut net_items,
                    &mut assign_items,
                    options,
                )?;
            }

            let mut lowered = Vec::with_capacity(instances.len());
            let parent_clocks = clock_signals(streamlet);
            for instance in instances {
                let child_id = project
                    .implementation_id(&instance.impl_name)
                    .ok_or_else(|| {
                        VhdlError::Inconsistent(format!(
                            "instance `{}` references missing implementation `{}`",
                            instance.name, instance.impl_name
                        ))
                    })?;
                let child_impl = project.implementation_by_id(child_id);
                let child_streamlet = index
                    .streamlet_of_impl(child_id)
                    .map(|sid| project.streamlet_by_id(sid))
                    .ok_or_else(|| {
                        VhdlError::Inconsistent(format!(
                            "implementation `{}` references missing streamlet `{}`",
                            child_impl.name, child_impl.streamlet
                        ))
                    })?;
                let child_module = module_names
                    .get(instance.impl_name.as_str())
                    .cloned()
                    .unwrap_or_else(|| sanitize(&instance.impl_name));
                let label = sanitize(&format!("u_{}", instance.name));
                let mut port_map: Vec<(String, String)> = Vec::new();
                for (domain, clk, rst) in clock_signals(child_streamlet) {
                    let (pclk, prst) = parent_clocks
                        .iter()
                        .find(|(d, _, _)| *d == domain)
                        .map(|(_, c, r)| (c.clone(), r.clone()))
                        .unwrap_or_else(|| ("clk".to_string(), "rst".to_string()));
                    port_map.push((clk, pclk));
                    port_map.push((rst, prst));
                }
                for port in &child_streamlet.ports {
                    let endpoint = EndpointRef::instance(instance.name.clone(), port.name.clone());
                    let net = nets.get(&endpoint).cloned().ok_or_else(|| {
                        VhdlError::Inconsistent(format!(
                            "no net planned for endpoint `{endpoint}` (port usage DRC should have caught this)"
                        ))
                    })?;
                    let child_sigs = expand_port(port)?;
                    let net_sigs = expand_port_as(port, &net)?;
                    for (child, netsig) in child_sigs.into_iter().zip(net_sigs) {
                        port_map.push((child.name, netsig.name));
                    }
                }
                lowered.push(Instance {
                    label,
                    module: child_module,
                    port_map,
                });
            }
            Ok(ModuleBody::Structural {
                nets: net_items,
                assigns: assign_items,
                instances: lowered,
            })
        }
    }
}

/// Decides the net name for one connection, emitting intermediate
/// net declarations and own-to-own assignments as needed.
#[allow(clippy::too_many_arguments)]
fn plan_connection<'c>(
    project: &Project,
    index: &ProjectIndex,
    impl_id: ImplId,
    streamlet: &Streamlet,
    position: usize,
    connection: &'c Connection,
    nets: &mut HashMap<&'c EndpointRef, String>,
    net_items: &mut Vec<NetItem>,
    assign_items: &mut Vec<AssignItem>,
    options: &VhdlOptions,
) -> Result<(), VhdlError> {
    let src_own = connection.source.instance.is_none();
    let sink_own = connection.sink.instance.is_none();
    match (src_own, sink_own) {
        (true, true) => {
            // Feed-through: direct concurrent assignments.
            let src_port = streamlet.port(&connection.source.port).ok_or_else(|| {
                VhdlError::Inconsistent(format!("missing port `{}`", connection.source.port))
            })?;
            let sink_port = streamlet.port(&connection.sink.port).ok_or_else(|| {
                VhdlError::Inconsistent(format!("missing port `{}`", connection.sink.port))
            })?;
            if options.emit_comments {
                assign_items.push(AssignItem::Comment(connection.describe()));
            }
            let src_sigs = expand_port(src_port)?;
            let sink_sigs = expand_port(sink_port)?;
            for (si, so) in src_sigs.iter().zip(sink_sigs.iter()) {
                let (target, source) = match si.mode {
                    PortMode::In => (so.name.clone(), si.name.clone()),
                    PortMode::Out => (si.name.clone(), so.name.clone()),
                };
                assign_items.push(AssignItem::Assign { target, source });
            }
        }
        (true, false) => {
            nets.insert(&connection.sink, connection.source.port.clone());
        }
        (false, true) => {
            nets.insert(&connection.source, connection.sink.port.clone());
        }
        (false, false) => {
            let src_port = instance_port(project, index, impl_id, &connection.source)?;
            let net = sanitize(&format!(
                "n{position}_{}_{}",
                connection.source.instance.as_deref().unwrap_or(""),
                connection.source.port
            ));
            if options.emit_comments {
                net_items.push(NetItem::Comment(connection.describe()));
            }
            for sig in expand_port_as(src_port, &net)? {
                net_items.push(NetItem::Net(NetDecl {
                    name: sig.name,
                    width: sig.width,
                }));
            }
            nets.insert(&connection.source, net.clone());
            nets.insert(&connection.sink, net);
        }
    }
    Ok(())
}

fn instance_port<'p>(
    project: &'p Project,
    index: &ProjectIndex,
    impl_id: ImplId,
    endpoint: &EndpointRef,
) -> Result<&'p tydi_ir::Port, VhdlError> {
    let instance_name = endpoint
        .instance
        .as_deref()
        .ok_or_else(|| VhdlError::Inconsistent("expected an instance endpoint".to_string()))?;
    let instance = index
        .instance(project, impl_id, instance_name)
        .ok_or_else(|| VhdlError::Inconsistent(format!("missing instance `{instance_name}`")))?;
    let sid = index
        .streamlet_of_impl_name(project, &instance.impl_name)
        .ok_or_else(|| {
            VhdlError::Inconsistent(format!(
                "missing streamlet for implementation `{}`",
                instance.impl_name
            ))
        })?;
    index
        .port(project, sid, &endpoint.port)
        .ok_or_else(|| VhdlError::Inconsistent(format!("missing port `{}`", endpoint.port)))
}

/// True when a backend can render every module of the netlist (i.e.
/// no behavioral module lacks a body for it).
pub fn backend_is_complete(netlist: &Netlist, backend: Backend) -> bool {
    netlist.modules.iter().all(|m| match &m.body {
        ModuleBody::Behavioral { bodies } => bodies.contains_key(&backend),
        _ => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_ir::{Instance as IrInstance, Port, PortDirection};
    use tydi_spec::{LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    fn chain_project() -> Project {
        let mut p = Project::new("chain");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_implementation(
            Implementation::external("leaf_i", "pass_s").with_builtin("std.passthrough"),
        )
        .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(IrInstance::new("a", "leaf_i"));
        top.add_instance(IrInstance::new("b", "leaf_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("a", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("a", "o"),
            EndpointRef::instance("b", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("b", "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        p
    }

    #[test]
    fn lowers_one_module_per_implementation_in_order() {
        let p = chain_project();
        let netlist =
            lower_project(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default()).unwrap();
        let names: Vec<&str> = netlist.modules.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["leaf_i", "top_i"]);
    }

    #[test]
    fn behavioral_module_carries_a_body_per_backend() {
        let p = chain_project();
        let netlist =
            lower_project(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default()).unwrap();
        let leaf = netlist.module("leaf_i").unwrap();
        let ModuleBody::Behavioral { bodies } = &leaf.body else {
            panic!("expected behavioral body");
        };
        assert_eq!(bodies.len(), Backend::ALL.len());
        assert!(bodies[&Backend::Vhdl].stmts.contains("o_data <= i_data;"));
        assert!(bodies[&Backend::SystemVerilog]
            .stmts
            .contains("assign o_data = i_data;"));
        for backend in Backend::ALL {
            assert!(backend_is_complete(&netlist, backend));
        }
    }

    #[test]
    fn structural_module_plans_nets_and_port_maps() {
        let p = chain_project();
        let netlist =
            lower_project(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default()).unwrap();
        let top = netlist.module("top_i").unwrap();
        let ModuleBody::Structural {
            nets, instances, ..
        } = &top.body
        else {
            panic!("expected structural body");
        };
        // One intermediate bundle for the instance-to-instance hop.
        let net_names: Vec<&str> = nets
            .iter()
            .filter_map(|n| match n {
                NetItem::Net(d) => Some(d.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(
            net_names,
            vec!["n1_a_o_valid", "n1_a_o_ready", "n1_a_o_data"]
        );
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].label, "u_a");
        assert_eq!(instances[0].module, "leaf_i");
        // clk/rst first, then the expanded port signals.
        assert_eq!(instances[0].port_map[0], ("clk".into(), "clk".into()));
        assert!(instances[0]
            .port_map
            .contains(&("o_valid".into(), "n1_a_o_valid".into())));
        assert!(instances[1]
            .port_map
            .contains(&("i_valid".into(), "n1_a_o_valid".into())));
    }

    #[test]
    fn comments_are_omitted_when_disabled() {
        let p = chain_project();
        let opts = VhdlOptions {
            emit_comments: false,
            validate: true,
        };
        let netlist = lower_project(&p, &BuiltinRegistry::with_core(), &opts).unwrap();
        assert!(!netlist.emit_comments);
        for module in &netlist.modules {
            assert!(module.header.is_empty());
            assert!(!module
                .ports
                .iter()
                .any(|i| matches!(i, PortItem::Comment(_))));
        }
    }

    #[test]
    fn cached_lowering_matches_uncached_and_reuses() {
        let p = chain_project();
        let registry = BuiltinRegistry::with_core();
        let options = VhdlOptions::default();
        let plain = lower_project(&p, &registry, &options).unwrap();
        let mut cache = CodegenCache::new();
        let (first, keys) = lower_project_cached(&p, &registry, &options, &mut cache).unwrap();
        assert_eq!(first, plain);
        assert_eq!(cache.stats().modules_recomputed, 2);
        assert_eq!(cache.stats().modules_reused, 0);
        // Second compile of the identical project: everything reuses.
        let (second, keys2) = lower_project_cached(&p, &registry, &options, &mut cache).unwrap();
        assert_eq!(second, plain);
        assert_eq!(keys, keys2);
        assert_eq!(cache.stats().modules_reused, 2);
        // Emission reuse, per backend.
        for backend in Backend::ALL {
            let plain_files = tydi_rtl::emitter_for(backend).emit_netlist(&plain).unwrap();
            let a = emit_netlist_cached(&second, &keys2, backend, &mut cache).unwrap();
            let b = emit_netlist_cached(&second, &keys2, backend, &mut cache).unwrap();
            assert_eq!(a, plain_files);
            assert_eq!(a, b);
        }
        assert_eq!(cache.stats().files_recomputed, 2 * Backend::ALL.len());
        assert_eq!(cache.stats().files_reused, 2 * Backend::ALL.len());
    }

    #[test]
    fn editing_one_impl_relowers_only_its_dirty_cone() {
        let p = chain_project();
        let registry = BuiltinRegistry::with_core();
        let options = VhdlOptions::default();
        let mut cache = CodegenCache::new();
        lower_project_cached(&p, &registry, &options, &mut cache).unwrap();
        // Rebuild the project with an extra connection comment-free
        // change in top_i only: leaf_i must reuse.
        let mut edited = Project::new("chain");
        edited
            .add_streamlet(
                Streamlet::new("pass_s")
                    .with_port(Port::new("i", PortDirection::In, stream8()))
                    .with_port(Port::new("o", PortDirection::Out, stream8())),
            )
            .unwrap();
        edited
            .add_implementation(
                Implementation::external("leaf_i", "pass_s").with_builtin("std.passthrough"),
            )
            .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(IrInstance::new("a", "leaf_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("a", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("a", "o"),
            EndpointRef::own("o"),
        ));
        edited.add_implementation(top).unwrap();
        let before = cache.stats();
        lower_project_cached(&edited, &registry, &options, &mut cache).unwrap();
        let after = cache.stats();
        assert_eq!(after.modules_reused - before.modules_reused, 1, "leaf_i");
        assert_eq!(
            after.modules_recomputed - before.modules_recomputed,
            1,
            "top_i changed shape"
        );
    }

    #[test]
    fn unknown_builtin_fails_lowering() {
        let mut p = Project::new("x");
        p.add_streamlet(
            Streamlet::new("s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_implementation(Implementation::external("e_i", "s").with_builtin("std.not_a_thing"))
            .unwrap();
        let err = lower_project(&p, &BuiltinRegistry::with_core(), &VhdlOptions::default());
        assert!(matches!(err, Err(VhdlError::UnknownBuiltin { .. })));
    }

    #[test]
    fn partially_registered_builtin_lowers_but_is_incomplete() {
        let registry = BuiltinRegistry::new();
        registry.register("x.vhdl_only", |_| Ok(crate::builtin::ArchBody::default()));
        let mut p = Project::new("x");
        p.add_streamlet(
            Streamlet::new("s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_implementation(Implementation::external("e_i", "s").with_builtin("x.vhdl_only"))
            .unwrap();
        let options = VhdlOptions {
            emit_comments: true,
            validate: false, // ports are unused; skip the usage DRC
        };
        let netlist = lower_project(&p, &registry, &options).unwrap();
        assert!(backend_is_complete(&netlist, Backend::Vhdl));
        assert!(!backend_is_complete(&netlist, Backend::SystemVerilog));
    }
}
