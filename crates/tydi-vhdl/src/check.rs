//! Lightweight structural checks on generated VHDL.
//!
//! This is not a VHDL parser; it is a tripwire used by the test suite
//! to catch codegen regressions: unbalanced design units, unbalanced
//! parentheses outside comments, and empty port maps.

/// A single issue found by [`check_vhdl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckIssue {
    /// 1-based line of the issue (0 when file-level).
    pub line: usize,
    /// Description.
    pub message: String,
}

/// Scans VHDL text for structural problems; returns all issues found.
pub fn check_vhdl(text: &str) -> Vec<CheckIssue> {
    let mut issues = Vec::new();
    let mut entities = 0usize;
    let mut entity_ends = 0usize;
    let mut architectures = 0usize;
    let mut architecture_ends = 0usize;
    let mut paren_depth: i64 = 0;

    for (i, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line);
        let lower = line.to_ascii_lowercase();
        let words: Vec<&str> = lower.split_whitespace().collect();
        if words.first() == Some(&"entity") && lower.contains(" is") {
            entities += 1;
        }
        if words.first() == Some(&"architecture") {
            architectures += 1;
        }
        if lower.starts_with("end entity") || lower.trim_start().starts_with("end entity") {
            entity_ends += 1;
        }
        if lower.trim_start().starts_with("end architecture") {
            architecture_ends += 1;
        }
        for c in line.chars() {
            match c {
                '(' => paren_depth += 1,
                ')' => {
                    paren_depth -= 1;
                    if paren_depth < 0 {
                        issues.push(CheckIssue {
                            line: i + 1,
                            message: "unbalanced closing parenthesis".into(),
                        });
                        paren_depth = 0;
                    }
                }
                _ => {}
            }
        }
        if lower.contains(";;") {
            issues.push(CheckIssue {
                line: i + 1,
                message: "double semicolon".into(),
            });
        }
        if lower.contains("port map ( )") || lower.contains("port map ()") {
            issues.push(CheckIssue {
                line: i + 1,
                message: "empty port map".into(),
            });
        }
    }
    if entities != entity_ends {
        issues.push(CheckIssue {
            line: 0,
            message: format!("{entities} entity(s) but {entity_ends} `end entity`"),
        });
    }
    if architectures != architecture_ends {
        issues.push(CheckIssue {
            line: 0,
            message: format!(
                "{architectures} architecture(s) but {architecture_ends} `end architecture`"
            ),
        });
    }
    if paren_depth != 0 {
        issues.push(CheckIssue {
            line: 0,
            message: format!("unbalanced parentheses (depth {paren_depth} at end of file)"),
        });
    }
    issues
}

fn strip_comment(line: &str) -> &str {
    match line.find("--") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_unit_passes() {
        let vhdl = "entity x is\n  port (\n    a : in std_logic\n  );\nend entity x;\narchitecture rtl of x is\nbegin\nend architecture rtl;\n";
        assert!(check_vhdl(vhdl).is_empty());
    }

    #[test]
    fn detects_missing_end() {
        let vhdl = "entity x is\n  port (a : in std_logic);\n";
        let issues = check_vhdl(vhdl);
        assert!(issues.iter().any(|i| i.message.contains("entity")));
    }

    #[test]
    fn detects_unbalanced_parens() {
        let vhdl = "entity x is\n  port ((a : in std_logic);\nend entity x;\n";
        let issues = check_vhdl(vhdl);
        assert!(issues.iter().any(|i| i.message.contains("parenthes")));
    }

    #[test]
    fn comments_do_not_confuse_paren_count() {
        let vhdl = "entity x is\n  port (a : in std_logic); -- note ) stray\nend entity x;\n";
        assert!(check_vhdl(vhdl).is_empty());
    }

    #[test]
    fn detects_double_semicolon() {
        let issues = check_vhdl("x <= y;;\n");
        assert!(issues.iter().any(|i| i.message.contains("semicolon")));
    }
}
