//! The component model: streamlets, ports, implementations, instances
//! and connections.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use tydi_spec::{ClockDomain, LogicalType};

/// Direction of a port as seen from outside the component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Data enters the component.
    In,
    /// Data leaves the component.
    Out,
}

impl PortDirection {
    /// The opposite direction.
    pub fn flip(self) -> PortDirection {
        match self {
            PortDirection::In => PortDirection::Out,
            PortDirection::Out => PortDirection::In,
        }
    }
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDirection::In => write!(f, "in"),
            PortDirection::Out => write!(f, "out"),
        }
    }
}

/// A typed hardware port (paper Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name, unique within its streamlet.
    pub name: String,
    /// Data direction.
    pub direction: PortDirection,
    /// The logical stream type carried by this port.
    pub ty: Arc<LogicalType>,
    /// Clock domain driving the port's handshake.
    pub clock: ClockDomain,
    /// The fully-qualified Tydi-lang declaration this type came from,
    /// used for the strict type equality design-rule check. `None` for
    /// anonymous types, which always compare structurally.
    pub type_origin: Option<String>,
}

impl Port {
    /// Creates a port on the default clock domain with no origin.
    pub fn new(name: impl Into<String>, direction: PortDirection, ty: LogicalType) -> Self {
        Port::from_arc(name, direction, Arc::new(ty))
    }

    /// Creates a port sharing an already-allocated type.
    ///
    /// The elaborator hands every port the canonical `Arc` from its
    /// hash-consed type store, so structurally equal ports share one
    /// allocation — which is what lets the DRC and the fingerprint
    /// layer use `Arc::ptr_eq` fast paths instead of deep compares.
    pub fn from_arc(
        name: impl Into<String>,
        direction: PortDirection,
        ty: Arc<LogicalType>,
    ) -> Self {
        Port {
            name: name.into(),
            direction,
            ty,
            clock: ClockDomain::default(),
            type_origin: None,
        }
    }

    /// Sets the clock domain.
    pub fn with_clock(mut self, clock: ClockDomain) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the declaration origin used for strict type equality.
    pub fn with_origin(mut self, origin: impl Into<String>) -> Self {
        self.type_origin = Some(origin.into());
        self
    }
}

/// A streamlet: the port map of a component (paper Table I; analogous
/// to a VHDL entity).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Streamlet {
    /// Streamlet name, unique within the project.
    pub name: String,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Documentation attached to the declaration.
    pub doc: String,
}

impl Streamlet {
    /// Creates an empty streamlet.
    pub fn new(name: impl Into<String>) -> Self {
        Streamlet {
            name: name.into(),
            ports: Vec::new(),
            doc: String::new(),
        }
    }

    /// Adds a port (builder style).
    pub fn with_port(mut self, port: Port) -> Self {
        self.ports.push(port);
        self
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }
}

/// A nested implementation instance (paper Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name, unique within the implementation.
    pub name: String,
    /// Name of the implementation being instantiated.
    pub impl_name: String,
    /// Documentation attached to the instance.
    pub doc: String,
}

impl Instance {
    /// Creates an instance.
    pub fn new(name: impl Into<String>, impl_name: impl Into<String>) -> Self {
        Instance {
            name: name.into(),
            impl_name: impl_name.into(),
            doc: String::new(),
        }
    }
}

/// One endpoint of a connection: either a port of the surrounding
/// implementation (`instance == None`) or a port of a nested instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointRef {
    /// The instance owning the port, or `None` for the implementation's
    /// own ports.
    pub instance: Option<String>,
    /// Port name.
    pub port: String,
}

impl EndpointRef {
    /// An endpoint on the implementation's own port map.
    pub fn own(port: impl Into<String>) -> Self {
        EndpointRef {
            instance: None,
            port: port.into(),
        }
    }

    /// An endpoint on a nested instance.
    pub fn instance(instance: impl Into<String>, port: impl Into<String>) -> Self {
        EndpointRef {
            instance: Some(instance.into()),
            port: port.into(),
        }
    }
}

impl fmt::Display for EndpointRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.instance {
            Some(inst) => write!(f, "{inst}.{}", self.port),
            None => write!(f, ".{}", self.port),
        }
    }
}

/// A connection between two compatible ports (paper Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    /// The data source endpoint.
    pub source: EndpointRef,
    /// The data sink endpoint.
    pub sink: EndpointRef,
    /// When true, the strict (by-declaration) type equality check is
    /// relaxed to structural equality (the paper's extra attribute for
    /// disabling strict checking).
    pub relax_type_check: bool,
    /// Marks connections synthesized by the sugaring passes, so reports
    /// can distinguish user code from inferred code.
    pub inserted_by_sugar: bool,
}

impl Connection {
    /// Creates a strict connection.
    pub fn new(source: EndpointRef, sink: EndpointRef) -> Self {
        Connection {
            source,
            sink,
            relax_type_check: false,
            inserted_by_sugar: false,
        }
    }

    /// Relaxes strict type checking on this connection.
    pub fn relaxed(mut self) -> Self {
        self.relax_type_check = true;
        self
    }

    /// A short display name used in diagnostics.
    pub fn describe(&self) -> String {
        format!("{} => {}", self.source, self.sink)
    }
}

/// The body of an implementation.
#[derive(Debug, Clone, PartialEq)]
pub enum ImplKind {
    /// A structural body: instances plus connections.
    Normal {
        /// Nested instances in declaration order.
        instances: Vec<Instance>,
        /// Connections in declaration order.
        connections: Vec<Connection>,
    },
    /// A black box. `builtin` names a registered RTL/behaviour
    /// generator (standard-library components, paper §IV-C);
    /// `sim_source` carries event-driven simulation code (paper §V-A).
    External {
        /// Builtin generator key, e.g. `"std.duplicator"`.
        builtin: Option<String>,
        /// Tydi-lang simulation source attached to the impl.
        sim_source: Option<String>,
    },
}

impl ImplKind {
    /// An empty normal body.
    pub fn empty_normal() -> Self {
        ImplKind::Normal {
            instances: Vec::new(),
            connections: Vec::new(),
        }
    }
}

/// An implementation: the inner structure of a component (paper
/// Table I; analogous to a VHDL architecture bound to its entity).
#[derive(Debug, Clone, PartialEq)]
pub struct Implementation {
    /// Implementation name, unique within the project.
    pub name: String,
    /// The streamlet whose port map this implementation realizes.
    pub streamlet: String,
    /// The body.
    pub kind: ImplKind,
    /// Documentation attached to the declaration.
    pub doc: String,
    /// Free-form attributes (e.g. `NoTypeCheck`).
    pub attributes: BTreeMap<String, String>,
}

impl Implementation {
    /// Creates a normal (structural) implementation with an empty body.
    pub fn normal(name: impl Into<String>, streamlet: impl Into<String>) -> Self {
        Implementation {
            name: name.into(),
            streamlet: streamlet.into(),
            kind: ImplKind::empty_normal(),
            doc: String::new(),
            attributes: BTreeMap::new(),
        }
    }

    /// Creates an external implementation.
    pub fn external(name: impl Into<String>, streamlet: impl Into<String>) -> Self {
        Implementation {
            name: name.into(),
            streamlet: streamlet.into(),
            kind: ImplKind::External {
                builtin: None,
                sim_source: None,
            },
            doc: String::new(),
            attributes: BTreeMap::new(),
        }
    }

    /// Sets the builtin generator key (external impls only).
    pub fn with_builtin(mut self, key: impl Into<String>) -> Self {
        if let ImplKind::External { builtin, .. } = &mut self.kind {
            *builtin = Some(key.into());
        }
        self
    }

    /// Sets the simulation source (external impls only).
    pub fn with_sim_source(mut self, src: impl Into<String>) -> Self {
        if let ImplKind::External { sim_source, .. } = &mut self.kind {
            *sim_source = Some(src.into());
        }
        self
    }

    /// Adds an instance to a normal implementation.
    ///
    /// # Panics
    /// Panics when called on an external implementation.
    pub fn add_instance(&mut self, instance: Instance) {
        match &mut self.kind {
            ImplKind::Normal { instances, .. } => instances.push(instance),
            ImplKind::External { .. } => panic!("cannot add instances to an external impl"),
        }
    }

    /// Adds a connection to a normal implementation.
    ///
    /// # Panics
    /// Panics when called on an external implementation.
    pub fn add_connection(&mut self, connection: Connection) {
        match &mut self.kind {
            ImplKind::Normal { connections, .. } => connections.push(connection),
            ImplKind::External { .. } => panic!("cannot add connections to an external impl"),
        }
    }

    /// Returns the instances of a normal body (empty for external).
    pub fn instances(&self) -> &[Instance] {
        match &self.kind {
            ImplKind::Normal { instances, .. } => instances,
            ImplKind::External { .. } => &[],
        }
    }

    /// Returns the connections of a normal body (empty for external).
    pub fn connections(&self) -> &[Connection] {
        match &self.kind {
            ImplKind::Normal { connections, .. } => connections,
            ImplKind::External { .. } => &[],
        }
    }

    /// True for external (black-box) implementations.
    pub fn is_external(&self) -> bool {
        matches!(self.kind, ImplKind::External { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_spec::StreamParams;

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    #[test]
    fn port_builder() {
        let p = Port::new("in0", PortDirection::In, stream8())
            .with_clock(ClockDomain::new("mem"))
            .with_origin("pack.Input");
        assert_eq!(p.clock.name(), "mem");
        assert_eq!(p.type_origin.as_deref(), Some("pack.Input"));
    }

    #[test]
    fn direction_flip() {
        assert_eq!(PortDirection::In.flip(), PortDirection::Out);
        assert_eq!(PortDirection::Out.flip(), PortDirection::In);
    }

    #[test]
    fn streamlet_port_lookup() {
        let s = Streamlet::new("s")
            .with_port(Port::new("a", PortDirection::In, stream8()))
            .with_port(Port::new("b", PortDirection::Out, stream8()));
        assert!(s.port("a").is_some());
        assert!(s.port("c").is_none());
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(EndpointRef::own("x").to_string(), ".x");
        assert_eq!(EndpointRef::instance("a", "x").to_string(), "a.x");
    }

    #[test]
    fn impl_body_accessors() {
        let mut i = Implementation::normal("top_i", "top_s");
        i.add_instance(Instance::new("a", "adder_i"));
        i.add_connection(Connection::new(
            EndpointRef::own("in0"),
            EndpointRef::instance("a", "in0"),
        ));
        assert_eq!(i.instances().len(), 1);
        assert_eq!(i.connections().len(), 1);
        assert!(!i.is_external());

        let e = Implementation::external("dup", "dup_s").with_builtin("std.duplicator");
        assert!(e.is_external());
        assert!(e.instances().is_empty());
        match &e.kind {
            ImplKind::External { builtin, .. } => {
                assert_eq!(builtin.as_deref(), Some("std.duplicator"))
            }
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "external")]
    fn external_rejects_instances() {
        let mut e = Implementation::external("x", "s");
        e.add_instance(Instance::new("a", "b"));
    }

    #[test]
    fn connection_describe() {
        let c = Connection::new(EndpointRef::own("a"), EndpointRef::instance("i", "b"));
        assert_eq!(c.describe(), ".a => i.b");
    }
}
