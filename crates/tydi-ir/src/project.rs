//! The project container: a named set of streamlets and
//! implementations with lookup and validation entry points.

use crate::component::{Implementation, Streamlet};
use crate::error::IrError;
use crate::intern::{ImplId, Interner, StreamletId, Symbol};
use crate::validate;
use std::collections::HashMap;

/// A complete Tydi-IR design.
///
/// Definition order is preserved (it determines VHDL emission order).
/// Every definition name is interned into a [`Symbol`]; the by-name
/// lookups hash the query string once against the symbol table, and
/// the by-id lookups ([`StreamletId`], [`ImplId`]) are plain array
/// accesses — the form the validator and backends use on hot paths.
#[derive(Debug, Clone, Default)]
pub struct Project {
    /// Project name; becomes the VHDL library/file prefix.
    pub name: String,
    symbols: Interner,
    streamlets: Vec<Streamlet>,
    streamlet_index: HashMap<Symbol, StreamletId>,
    impls: Vec<Implementation>,
    impl_index: HashMap<Symbol, ImplId>,
}

impl Project {
    /// Creates an empty project.
    pub fn new(name: impl Into<String>) -> Self {
        Project {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The project's symbol table.
    pub fn symbols(&self) -> &Interner {
        &self.symbols
    }

    /// Interns a name into the project's symbol table.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.symbols.intern(name)
    }

    /// Adds a streamlet definition, returning its id.
    pub fn add_streamlet(&mut self, streamlet: Streamlet) -> Result<StreamletId, IrError> {
        let sym = self.symbols.intern(&streamlet.name);
        if self.streamlet_index.contains_key(&sym) {
            return Err(IrError::DuplicateDefinition {
                kind: "streamlet",
                name: streamlet.name.clone(),
            });
        }
        let id = StreamletId(u32::try_from(self.streamlets.len()).expect("too many streamlets"));
        self.streamlet_index.insert(sym, id);
        self.streamlets.push(streamlet);
        Ok(id)
    }

    /// Adds an implementation definition, returning its id.
    pub fn add_implementation(
        &mut self,
        implementation: Implementation,
    ) -> Result<ImplId, IrError> {
        let sym = self.symbols.intern(&implementation.name);
        if self.impl_index.contains_key(&sym) {
            return Err(IrError::DuplicateDefinition {
                kind: "implementation",
                name: implementation.name.clone(),
            });
        }
        let id = ImplId(u32::try_from(self.impls.len()).expect("too many implementations"));
        self.impl_index.insert(sym, id);
        self.impls.push(implementation);
        Ok(id)
    }

    /// Resolves a streamlet name to its id.
    pub fn streamlet_id(&self, name: &str) -> Option<StreamletId> {
        self.streamlet_index.get(&self.symbols.get(name)?).copied()
    }

    /// Resolves an implementation name to its id.
    pub fn implementation_id(&self, name: &str) -> Option<ImplId> {
        self.impl_index.get(&self.symbols.get(name)?).copied()
    }

    /// A streamlet by id (array access; no hashing).
    pub fn streamlet_by_id(&self, id: StreamletId) -> &Streamlet {
        &self.streamlets[id.index()]
    }

    /// An implementation by id (array access; no hashing).
    pub fn implementation_by_id(&self, id: ImplId) -> &Implementation {
        &self.impls[id.index()]
    }

    /// Mutable access to an implementation by id.
    pub fn implementation_by_id_mut(&mut self, id: ImplId) -> &mut Implementation {
        &mut self.impls[id.index()]
    }

    /// Looks up a streamlet by name.
    pub fn streamlet(&self, name: &str) -> Option<&Streamlet> {
        self.streamlet_id(name).map(|id| self.streamlet_by_id(id))
    }

    /// Looks up an implementation by name.
    pub fn implementation(&self, name: &str) -> Option<&Implementation> {
        self.implementation_id(name)
            .map(|id| self.implementation_by_id(id))
    }

    /// Mutable lookup of an implementation by name.
    pub fn implementation_mut(&mut self, name: &str) -> Option<&mut Implementation> {
        let id = self.implementation_id(name)?;
        Some(&mut self.impls[id.index()])
    }

    /// All streamlets in definition order.
    pub fn streamlets(&self) -> &[Streamlet] {
        &self.streamlets
    }

    /// All implementations in definition order.
    pub fn implementations(&self) -> &[Implementation] {
        &self.impls
    }

    /// All implementations paired with their ids, in definition order.
    pub fn implementations_with_ids(&self) -> impl Iterator<Item = (ImplId, &Implementation)> {
        self.impls
            .iter()
            .enumerate()
            .map(|(i, imp)| (ImplId(i as u32), imp))
    }

    /// The id of the streamlet realized by the given implementation.
    pub fn streamlet_of_impl(&self, id: ImplId) -> Option<StreamletId> {
        self.streamlet_id(&self.implementation_by_id(id).streamlet)
    }

    /// The streamlet realized by the named implementation.
    pub fn streamlet_of(&self, impl_name: &str) -> Option<&Streamlet> {
        self.implementation(impl_name)
            .and_then(|i| self.streamlet(&i.streamlet))
    }

    /// Runs all design-rule checks (paper §III); returns every
    /// violation found rather than stopping at the first.
    pub fn validate(&self) -> Result<(), Vec<IrError>> {
        let errors = validate::validate_project(self);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Like [`Project::validate`], but over the pipeline's shared
    /// [`crate::index::ProjectIndex`] instead of building a fresh one.
    pub fn validate_with(&self, index: &crate::index::ProjectIndex) -> Result<(), Vec<IrError>> {
        let errors = validate::validate_project_with(self, index);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Names of the implementations no other implementation
    /// instantiates — the design's top-level candidates, sorted by
    /// name. Tools like `tydic analyze` default to these when the user
    /// gives no `--top`. Normal (structural) implementations are
    /// preferred; external leaves are listed only when nothing
    /// instantiates them *and* no structural top exists at all (a
    /// leaf-only project).
    pub fn top_level_candidates(&self) -> Vec<&str> {
        let mut instantiated: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for implementation in &self.impls {
            for instance in implementation.instances() {
                instantiated.insert(instance.impl_name.as_str());
            }
        }
        let uninstantiated = |external: bool| -> Vec<&str> {
            let mut tops: Vec<&str> = self
                .impls
                .iter()
                .filter(|i| i.is_external() == external && !instantiated.contains(i.name.as_str()))
                .map(|i| i.name.as_str())
                .collect();
            tops.sort_unstable();
            tops
        };
        let structural = uninstantiated(false);
        if structural.is_empty() {
            uninstantiated(true)
        } else {
            structural
        }
    }

    /// Project statistics for reports and compiler output.
    pub fn stats(&self) -> ProjectStats {
        let mut stats = ProjectStats {
            streamlets: self.streamlets.len(),
            implementations: self.impls.len(),
            ..Default::default()
        };
        for s in &self.streamlets {
            stats.ports += s.ports.len();
        }
        for i in &self.impls {
            stats.instances += i.instances().len();
            stats.connections += i.connections().len();
            stats.sugar_connections += i
                .connections()
                .iter()
                .filter(|c| c.inserted_by_sugar)
                .count();
            if i.is_external() {
                stats.externals += 1;
            }
        }
        stats
    }
}

/// Aggregate counts over a project.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProjectStats {
    /// Number of streamlet definitions.
    pub streamlets: usize,
    /// Number of implementation definitions.
    pub implementations: usize,
    /// Number of external implementations.
    pub externals: usize,
    /// Total ports across all streamlets.
    pub ports: usize,
    /// Total instances across all normal implementations.
    pub instances: usize,
    /// Total connections across all normal implementations.
    pub connections: usize,
    /// Connections synthesized by the sugaring passes.
    pub sugar_connections: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Connection, EndpointRef, Instance, Port, PortDirection};
    use tydi_spec::{LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    #[test]
    fn add_and_lookup() {
        let mut p = Project::new("demo");
        p.add_streamlet(Streamlet::new("a_s")).unwrap();
        p.add_implementation(Implementation::normal("a_i", "a_s"))
            .unwrap();
        assert!(p.streamlet("a_s").is_some());
        assert!(p.implementation("a_i").is_some());
        assert_eq!(p.streamlet_of("a_i").unwrap().name, "a_s");
        assert!(p.streamlet("missing").is_none());
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let mut p = Project::new("demo");
        p.add_streamlet(Streamlet::new("a")).unwrap();
        assert!(matches!(
            p.add_streamlet(Streamlet::new("a")),
            Err(IrError::DuplicateDefinition {
                kind: "streamlet",
                ..
            })
        ));
        p.add_implementation(Implementation::normal("i", "a"))
            .unwrap();
        assert!(p
            .add_implementation(Implementation::normal("i", "a"))
            .is_err());
    }

    #[test]
    fn id_lookups_match_name_lookups() {
        let mut p = Project::new("demo");
        let sid = p.add_streamlet(Streamlet::new("a_s")).unwrap();
        let iid = p
            .add_implementation(Implementation::normal("a_i", "a_s"))
            .unwrap();
        // By-id and by-name resolve to the same definitions.
        assert_eq!(p.streamlet_id("a_s"), Some(sid));
        assert_eq!(p.implementation_id("a_i"), Some(iid));
        assert!(std::ptr::eq(
            p.streamlet_by_id(sid),
            p.streamlet("a_s").unwrap()
        ));
        assert!(std::ptr::eq(
            p.implementation_by_id(iid),
            p.implementation("a_i").unwrap()
        ));
        assert_eq!(p.streamlet_of_impl(iid), Some(sid));
        // Unknown names resolve to no id without interning them.
        assert_eq!(p.streamlet_id("ghost"), None);
        assert_eq!(p.implementation_id("ghost"), None);
        assert_eq!(p.symbols().get("ghost"), None);
    }

    #[test]
    fn ids_are_stable_across_later_additions() {
        let mut p = Project::new("demo");
        let first = p.add_streamlet(Streamlet::new("s0")).unwrap();
        for k in 1..50 {
            p.add_streamlet(Streamlet::new(format!("s{k}"))).unwrap();
        }
        assert_eq!(p.streamlet_id("s0"), Some(first));
        assert_eq!(p.streamlet_by_id(first).name, "s0");
        assert_eq!(p.streamlet_id("s49").unwrap().index(), 49);
    }

    #[test]
    fn definition_names_share_interned_symbols() {
        let mut p = Project::new("demo");
        p.add_streamlet(Streamlet::new("shared")).unwrap();
        // The impl name `shared` would collide in the symbol table but
        // not in the per-kind indices.
        p.add_implementation(Implementation::normal("shared", "shared"))
            .unwrap();
        let sym = p.symbols().get("shared").unwrap();
        assert_eq!(p.symbols().resolve(sym), "shared");
        assert!(p.streamlet("shared").is_some());
        assert!(p.implementation("shared").is_some());
    }

    #[test]
    fn stats_count_everything() {
        let mut p = Project::new("demo");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_implementation(Implementation::external("leaf_i", "pass_s"))
            .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(Instance::new("l", "leaf_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("l", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("l", "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        let s = p.stats();
        assert_eq!(s.streamlets, 1);
        assert_eq!(s.implementations, 2);
        assert_eq!(s.externals, 1);
        assert_eq!(s.ports, 2);
        assert_eq!(s.instances, 1);
        assert_eq!(s.connections, 2);
    }

    #[test]
    fn top_level_candidates_prefer_uninstantiated_structural_impls() {
        let mut p = Project::new("demo");
        p.add_streamlet(Streamlet::new("s")).unwrap();
        p.add_implementation(Implementation::external("leaf_i", "s"))
            .unwrap();
        // An uninstantiated external leaf does not outrank a
        // structural top.
        p.add_implementation(Implementation::external("orphan_leaf_i", "s"))
            .unwrap();
        let mut mid = Implementation::normal("mid_i", "s");
        mid.add_instance(Instance::new("l", "leaf_i"));
        p.add_implementation(mid).unwrap();
        let mut top = Implementation::normal("top_i", "s");
        top.add_instance(Instance::new("m", "mid_i"));
        p.add_implementation(top).unwrap();
        assert_eq!(p.top_level_candidates(), vec!["top_i"]);

        // Leaf-only projects fall back to uninstantiated externals.
        let mut leaves = Project::new("leaves");
        leaves.add_streamlet(Streamlet::new("s")).unwrap();
        leaves
            .add_implementation(Implementation::external("b_i", "s"))
            .unwrap();
        leaves
            .add_implementation(Implementation::external("a_i", "s"))
            .unwrap();
        assert_eq!(leaves.top_level_candidates(), vec!["a_i", "b_i"]);
    }
}
