//! The project container: a named set of streamlets and
//! implementations with lookup and validation entry points.

use crate::component::{Implementation, Streamlet};
use crate::error::IrError;
use crate::validate;
use std::collections::HashMap;

/// A complete Tydi-IR design.
///
/// Definition order is preserved (it determines VHDL emission order);
/// name lookup is constant-time.
#[derive(Debug, Clone, Default)]
pub struct Project {
    /// Project name; becomes the VHDL library/file prefix.
    pub name: String,
    streamlets: Vec<Streamlet>,
    streamlet_index: HashMap<String, usize>,
    impls: Vec<Implementation>,
    impl_index: HashMap<String, usize>,
}

impl Project {
    /// Creates an empty project.
    pub fn new(name: impl Into<String>) -> Self {
        Project {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a streamlet definition.
    pub fn add_streamlet(&mut self, streamlet: Streamlet) -> Result<(), IrError> {
        if self.streamlet_index.contains_key(&streamlet.name) {
            return Err(IrError::DuplicateDefinition {
                kind: "streamlet",
                name: streamlet.name.clone(),
            });
        }
        self.streamlet_index
            .insert(streamlet.name.clone(), self.streamlets.len());
        self.streamlets.push(streamlet);
        Ok(())
    }

    /// Adds an implementation definition.
    pub fn add_implementation(&mut self, implementation: Implementation) -> Result<(), IrError> {
        if self.impl_index.contains_key(&implementation.name) {
            return Err(IrError::DuplicateDefinition {
                kind: "implementation",
                name: implementation.name.clone(),
            });
        }
        self.impl_index
            .insert(implementation.name.clone(), self.impls.len());
        self.impls.push(implementation);
        Ok(())
    }

    /// Looks up a streamlet by name.
    pub fn streamlet(&self, name: &str) -> Option<&Streamlet> {
        self.streamlet_index.get(name).map(|&i| &self.streamlets[i])
    }

    /// Looks up an implementation by name.
    pub fn implementation(&self, name: &str) -> Option<&Implementation> {
        self.impl_index.get(name).map(|&i| &self.impls[i])
    }

    /// Mutable lookup of an implementation by name.
    pub fn implementation_mut(&mut self, name: &str) -> Option<&mut Implementation> {
        let i = *self.impl_index.get(name)?;
        Some(&mut self.impls[i])
    }

    /// All streamlets in definition order.
    pub fn streamlets(&self) -> &[Streamlet] {
        &self.streamlets
    }

    /// All implementations in definition order.
    pub fn implementations(&self) -> &[Implementation] {
        &self.impls
    }

    /// The streamlet realized by the named implementation.
    pub fn streamlet_of(&self, impl_name: &str) -> Option<&Streamlet> {
        self.implementation(impl_name)
            .and_then(|i| self.streamlet(&i.streamlet))
    }

    /// Runs all design-rule checks (paper §III); returns every
    /// violation found rather than stopping at the first.
    pub fn validate(&self) -> Result<(), Vec<IrError>> {
        let errors = validate::validate_project(self);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Project statistics for reports and compiler output.
    pub fn stats(&self) -> ProjectStats {
        let mut stats = ProjectStats {
            streamlets: self.streamlets.len(),
            implementations: self.impls.len(),
            ..Default::default()
        };
        for s in &self.streamlets {
            stats.ports += s.ports.len();
        }
        for i in &self.impls {
            stats.instances += i.instances().len();
            stats.connections += i.connections().len();
            stats.sugar_connections += i
                .connections()
                .iter()
                .filter(|c| c.inserted_by_sugar)
                .count();
            if i.is_external() {
                stats.externals += 1;
            }
        }
        stats
    }
}

/// Aggregate counts over a project.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProjectStats {
    /// Number of streamlet definitions.
    pub streamlets: usize,
    /// Number of implementation definitions.
    pub implementations: usize,
    /// Number of external implementations.
    pub externals: usize,
    /// Total ports across all streamlets.
    pub ports: usize,
    /// Total instances across all normal implementations.
    pub instances: usize,
    /// Total connections across all normal implementations.
    pub connections: usize,
    /// Connections synthesized by the sugaring passes.
    pub sugar_connections: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Connection, EndpointRef, Instance, Port, PortDirection};
    use tydi_spec::{LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    #[test]
    fn add_and_lookup() {
        let mut p = Project::new("demo");
        p.add_streamlet(Streamlet::new("a_s")).unwrap();
        p.add_implementation(Implementation::normal("a_i", "a_s"))
            .unwrap();
        assert!(p.streamlet("a_s").is_some());
        assert!(p.implementation("a_i").is_some());
        assert_eq!(p.streamlet_of("a_i").unwrap().name, "a_s");
        assert!(p.streamlet("missing").is_none());
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let mut p = Project::new("demo");
        p.add_streamlet(Streamlet::new("a")).unwrap();
        assert!(matches!(
            p.add_streamlet(Streamlet::new("a")),
            Err(IrError::DuplicateDefinition { kind: "streamlet", .. })
        ));
        p.add_implementation(Implementation::normal("i", "a")).unwrap();
        assert!(p
            .add_implementation(Implementation::normal("i", "a"))
            .is_err());
    }

    #[test]
    fn stats_count_everything() {
        let mut p = Project::new("demo");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_implementation(Implementation::external("leaf_i", "pass_s"))
            .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(Instance::new("l", "leaf_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("l", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("l", "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        let s = p.stats();
        assert_eq!(s.streamlets, 1);
        assert_eq!(s.implementations, 2);
        assert_eq!(s.externals, 1);
        assert_eq!(s.ports, 2);
        assert_eq!(s.instances, 1);
        assert_eq!(s.connections, 2);
    }
}
