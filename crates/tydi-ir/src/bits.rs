//! Arbitrary-width bit values.
//!
//! Tydi data elements can be wider than any machine integer (a `Group`
//! of several 64-bit decimals, for instance), so testbenches and the
//! simulator carry element payloads as [`BitsValue`]: a little-endian
//! packed bit vector with an explicit width.

use std::fmt;

/// A fixed-width bit string. Bit 0 is the least significant bit and is
/// stored in the lowest bit of `words[0]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitsValue {
    width: u32,
    words: Vec<u64>,
}

impl BitsValue {
    /// Creates an all-zero value of the given width.
    pub fn zero(width: u32) -> Self {
        BitsValue {
            width,
            words: vec![0; words_for(width)],
        }
    }

    /// Creates a value from a `u64`, truncating to `width` bits.
    pub fn from_u64(value: u64, width: u32) -> Self {
        let mut v = BitsValue::zero(width);
        if width > 0 {
            v.words[0] = value & mask_u64(width.min(64));
            if width > 64 {
                // Upper words stay zero; value fits in one word.
            }
        }
        v
    }

    /// Creates a value from an `i64` using two's complement at `width`.
    pub fn from_i64(value: i64, width: u32) -> Self {
        let mut v = BitsValue {
            width,
            words: vec![if value < 0 { u64::MAX } else { 0 }; words_for(width)],
        };
        if !v.words.is_empty() {
            v.words[0] = value as u64;
        }
        v.truncate_top_word();
        v
    }

    /// The declared width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Reads a single bit.
    pub fn bit(&self, index: u32) -> bool {
        assert!(
            index < self.width,
            "bit index {index} out of width {}",
            self.width
        );
        (self.words[(index / 64) as usize] >> (index % 64)) & 1 == 1
    }

    /// Sets a single bit.
    pub fn set_bit(&mut self, index: u32, value: bool) {
        assert!(
            index < self.width,
            "bit index {index} out of width {}",
            self.width
        );
        let word = &mut self.words[(index / 64) as usize];
        if value {
            *word |= 1 << (index % 64);
        } else {
            *word &= !(1 << (index % 64));
        }
    }

    /// Interprets the value as an unsigned integer, if it fits in 64
    /// bits of significance.
    pub fn to_u64(&self) -> Option<u64> {
        if self.words.iter().skip(1).any(|&w| w != 0) {
            None
        } else {
            Some(self.words.first().copied().unwrap_or(0))
        }
    }

    /// Interprets the value as a two's-complement signed integer.
    pub fn to_i64(&self) -> Option<i64> {
        if self.width == 0 {
            return Some(0);
        }
        if self.width <= 64 {
            let raw = self.words[0];
            let shift = 64 - self.width;
            Some(((raw << shift) as i64) >> shift)
        } else {
            // Only representable if the top words are a sign extension.
            let negative = self.bit(self.width - 1);
            let ext = if negative { u64::MAX } else { 0 };
            let top_ok = self.words.iter().skip(1).enumerate().all(|(i, &w)| {
                let word_index = (i + 1) as u32;
                let bits_in_word = (self.width - word_index * 64).min(64);
                w == ext & mask_u64(bits_in_word)
            });
            if top_ok {
                let raw = self.words[0];
                if negative || raw <= i64::MAX as u64 {
                    Some(raw as i64)
                } else {
                    None
                }
            } else {
                None
            }
        }
    }

    /// Writes another value into a bit range of this one. Used to pack
    /// group fields into a single element payload.
    pub fn splice(&mut self, offset: u32, value: &BitsValue) {
        assert!(
            offset + value.width <= self.width,
            "splice of {} bits at offset {offset} exceeds width {}",
            value.width,
            self.width
        );
        for i in 0..value.width {
            self.set_bit(offset + i, value.bit(i));
        }
    }

    /// Extracts `width` bits starting at `offset` into a new value.
    pub fn extract(&self, offset: u32, width: u32) -> BitsValue {
        assert!(
            offset + width <= self.width,
            "extract of {width} bits at offset {offset} exceeds width {}",
            self.width
        );
        let mut out = BitsValue::zero(width);
        for i in 0..width {
            out.set_bit(i, self.bit(offset + i));
        }
        out
    }

    /// Concatenates `other` above `self` (other occupies the most
    /// significant bits of the result).
    pub fn concat(&self, other: &BitsValue) -> BitsValue {
        let mut out = BitsValue::zero(self.width + other.width);
        out.splice(0, self);
        out.splice(self.width, other);
        out
    }

    /// Renders as a binary string, most significant bit first, as used
    /// by VHDL literals (`"0101"`).
    pub fn to_bin_string(&self) -> String {
        (0..self.width)
            .rev()
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }

    /// Parses a binary string (most significant bit first).
    pub fn from_bin_string(s: &str) -> Option<BitsValue> {
        let mut v = BitsValue::zero(s.len() as u32);
        for (i, c) in s.chars().rev().enumerate() {
            match c {
                '0' => {}
                '1' => v.set_bit(i as u32, true),
                _ => return None,
            }
        }
        Some(v)
    }

    fn truncate_top_word(&mut self) {
        if !self.width.is_multiple_of(64) {
            if let Some(top) = self.words.last_mut() {
                *top &= mask_u64(self.width % 64);
            }
        }
    }
}

fn words_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

fn mask_u64(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

impl fmt::Display for BitsValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_u64() {
            Some(v) => write!(f, "{v}:{}", self.width),
            None => write!(f, "0b{}:{}", self.to_bin_string(), self.width),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_width() {
        let v = BitsValue::zero(130);
        assert_eq!(v.width(), 130);
        assert_eq!(v.to_u64(), Some(0));
    }

    #[test]
    fn from_u64_truncates() {
        let v = BitsValue::from_u64(0xFF, 4);
        assert_eq!(v.to_u64(), Some(0xF));
        assert_eq!(v.width(), 4);
    }

    #[test]
    fn from_i64_sign_extends() {
        let v = BitsValue::from_i64(-1, 8);
        assert_eq!(v.to_u64(), Some(0xFF));
        assert_eq!(v.to_i64(), Some(-1));
        let v = BitsValue::from_i64(-2, 128);
        assert_eq!(v.to_i64(), Some(-2));
        let v = BitsValue::from_i64(5, 128);
        assert_eq!(v.to_i64(), Some(5));
    }

    #[test]
    fn bit_twiddling() {
        let mut v = BitsValue::zero(70);
        v.set_bit(0, true);
        v.set_bit(69, true);
        assert!(v.bit(0));
        assert!(v.bit(69));
        assert!(!v.bit(35));
        v.set_bit(69, false);
        assert!(!v.bit(69));
        assert_eq!(v.to_u64(), Some(1));
    }

    #[test]
    fn to_u64_none_when_wide() {
        let mut v = BitsValue::zero(70);
        v.set_bit(65, true);
        assert_eq!(v.to_u64(), None);
    }

    #[test]
    fn splice_and_extract() {
        let mut v = BitsValue::zero(64);
        v.splice(0, &BitsValue::from_u64(0xAB, 8));
        v.splice(8, &BitsValue::from_u64(0xCD, 8));
        assert_eq!(v.to_u64(), Some(0xCDAB));
        assert_eq!(v.extract(8, 8).to_u64(), Some(0xCD));
        assert_eq!(v.extract(0, 16).to_u64(), Some(0xCDAB));
    }

    #[test]
    fn splice_across_word_boundary() {
        let mut v = BitsValue::zero(128);
        v.splice(60, &BitsValue::from_u64(0xFF, 8));
        assert_eq!(v.extract(60, 8).to_u64(), Some(0xFF));
        assert_eq!(v.extract(0, 60).to_u64(), Some(0));
        assert_eq!(v.extract(68, 60).to_u64(), Some(0));
    }

    #[test]
    fn concat_orders_operands() {
        let lo = BitsValue::from_u64(0x1, 4);
        let hi = BitsValue::from_u64(0xF, 4);
        let v = lo.concat(&hi);
        assert_eq!(v.width(), 8);
        assert_eq!(v.to_u64(), Some(0xF1));
    }

    #[test]
    fn bin_string_round_trip() {
        let v = BitsValue::from_u64(0b1011, 6);
        assert_eq!(v.to_bin_string(), "001011");
        assert_eq!(BitsValue::from_bin_string("001011").unwrap(), v);
        assert!(BitsValue::from_bin_string("10x1").is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(BitsValue::from_u64(42, 8).to_string(), "42:8");
    }

    #[test]
    #[should_panic(expected = "out of width")]
    fn bit_out_of_range_panics() {
        BitsValue::zero(4).bit(4);
    }
}
