//! Stable content fingerprints over the interned IR.
//!
//! The incremental compilation pipeline keys every memoized artifact
//! by a [`Fingerprint`]: a 64-bit FNV-1a hash that is **stable across
//! processes and runs** (unlike `std::collections::hash_map`'s
//! `RandomState`), so fingerprints can be persisted to the on-disk
//! artifact cache and compared against a later compiler invocation.
//!
//! Structured data is hashed through a [`Fingerprinter`], which
//! length-prefixes strings and tags fields so that adjacent values
//! cannot alias (`("ab", "c")` and `("a", "bc")` hash differently).
//! The IR-level entry points — [`streamlet_fingerprint`],
//! [`implementation_fingerprint`] and [`project_fingerprint`] — hash
//! definitions by *content* (names resolved, types via
//! [`tydi_spec::structural_fingerprint`]), so two projects with
//! identical definitions produce identical fingerprints regardless of
//! interner state.
//!
//! Port types are hashed through [`shared_type_fingerprint`], a
//! process-wide memo keyed by the type's `Arc` identity: the
//! elaborator's hash-consed store hands every structurally equal port
//! the *same* allocation, so fingerprinting a streamlet does not
//! re-walk (or stringify) its type trees — it reuses the per-type
//! hash computed the first time that allocation was seen.

use crate::component::{ImplKind, Implementation, Streamlet};
use crate::project::Project;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, Weak};
use tydi_spec::LogicalType;

/// A stable 64-bit content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// The fingerprint of a byte string.
    pub fn of_bytes(bytes: &[u8]) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        fp.write_bytes(bytes);
        fp.finish()
    }

    /// The fingerprint of a string.
    pub fn of_str(text: &str) -> Fingerprint {
        Fingerprint::of_bytes(text.as_bytes())
    }

    /// Parses the hex form produced by `Display` (for cache manifests).
    pub fn parse(text: &str) -> Option<Fingerprint> {
        u64::from_str_radix(text, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_0193;

/// Incrementally builds a [`Fingerprint`] from tagged fields.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter { state: FNV_OFFSET }
    }
}

impl Fingerprinter {
    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Fingerprinter::default()
    }

    /// Hashes raw bytes (no framing; prefer the typed writers).
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Hashes an integer as 8 fixed bytes.
    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        self.write_bytes(&value.to_le_bytes())
    }

    /// Hashes a string, length-prefixed so adjacent strings cannot
    /// alias.
    pub fn write_str(&mut self, text: &str) -> &mut Self {
        self.write_u64(text.len() as u64);
        self.write_bytes(text.as_bytes())
    }

    /// Hashes an optional string (distinguishing `None` from `""`).
    pub fn write_opt_str(&mut self, text: Option<&str>) -> &mut Self {
        match text {
            Some(t) => {
                self.write_u64(1);
                self.write_str(t)
            }
            None => self.write_u64(0),
        }
    }

    /// Hashes a boolean.
    pub fn write_bool(&mut self, value: bool) -> &mut Self {
        self.write_u64(u64::from(value))
    }

    /// Folds another fingerprint into this one.
    pub fn write_fingerprint(&mut self, fp: Fingerprint) -> &mut Self {
        self.write_u64(fp.0)
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// The stable structural fingerprint of a shared type, memoized
/// process-wide by `Arc` identity.
///
/// The memo entry stores a [`Weak`] next to the hash; a lookup only
/// counts when upgrading the weak yields the *same* `Arc`, which
/// makes address reuse after deallocation (the classic pointer-memo
/// ABA hazard) impossible to observe. Stale entries are purged when
/// the table grows.
pub fn shared_type_fingerprint(ty: &Arc<LogicalType>) -> u64 {
    type Memo = Mutex<HashMap<usize, (Weak<LogicalType>, u64)>>;
    static MEMO: OnceLock<Memo> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let key = Arc::as_ptr(ty) as usize;
    {
        let map = memo.lock().expect("type fingerprint memo poisoned");
        if let Some((weak, hash)) = map.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, ty) {
                    return *hash;
                }
            }
        }
    }
    let hash = tydi_spec::structural_fingerprint(ty);
    let mut map = memo.lock().expect("type fingerprint memo poisoned");
    if map.len() >= 65_536 {
        map.retain(|_, (weak, _)| weak.strong_count() > 0);
    }
    map.insert(key, (Arc::downgrade(ty), hash));
    hash
}

/// The content fingerprint of a streamlet: name, documentation and
/// every port (name, direction, clock domain, the logical type's
/// structural fingerprint, declaration origin).
pub fn streamlet_fingerprint(streamlet: &Streamlet) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("streamlet");
    fp.write_str(&streamlet.name);
    fp.write_str(&streamlet.doc);
    fp.write_u64(streamlet.ports.len() as u64);
    for port in &streamlet.ports {
        fp.write_str(&port.name);
        fp.write_str(match port.direction {
            crate::component::PortDirection::In => "in",
            crate::component::PortDirection::Out => "out",
        });
        fp.write_str(port.clock.name());
        fp.write_u64(shared_type_fingerprint(&port.ty));
        fp.write_opt_str(port.type_origin.as_deref());
    }
    fp.finish()
}

/// The content fingerprint of one implementation **in context**: its
/// own definition, the streamlet it realizes, and — for structural
/// bodies — the name and streamlet signature of every instantiated
/// child implementation (a child's port list shapes this module's
/// port maps, so changing a child's interface must invalidate the
/// parent's lowering).
pub fn implementation_fingerprint(
    project: &Project,
    implementation: &Implementation,
) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("impl");
    fp.write_str(&implementation.name);
    fp.write_str(&implementation.doc);
    fp.write_u64(implementation.attributes.len() as u64);
    for (key, value) in &implementation.attributes {
        fp.write_str(key);
        fp.write_str(value);
    }
    fp.write_str(&implementation.streamlet);
    if let Some(streamlet) = project.streamlet(&implementation.streamlet) {
        fp.write_fingerprint(streamlet_fingerprint(streamlet));
    }
    match &implementation.kind {
        ImplKind::External {
            builtin,
            sim_source,
        } => {
            fp.write_str("external");
            fp.write_opt_str(builtin.as_deref());
            fp.write_opt_str(sim_source.as_deref());
        }
        ImplKind::Normal {
            instances,
            connections,
        } => {
            fp.write_str("normal");
            fp.write_u64(instances.len() as u64);
            for instance in instances {
                fp.write_str(&instance.name);
                fp.write_str(&instance.impl_name);
                fp.write_str(&instance.doc);
                // The child's interface shapes this module's port maps.
                if let Some(child) = project.streamlet_of(&instance.impl_name) {
                    fp.write_fingerprint(streamlet_fingerprint(child));
                }
            }
            fp.write_u64(connections.len() as u64);
            for connection in connections {
                fp.write_opt_str(connection.source.instance.as_deref());
                fp.write_str(&connection.source.port);
                fp.write_opt_str(connection.sink.instance.as_deref());
                fp.write_str(&connection.sink.port);
                fp.write_bool(connection.relax_type_check);
                fp.write_bool(connection.inserted_by_sugar);
            }
        }
    }
    fp.finish()
}

/// The content fingerprint of a whole project (name plus every
/// definition in order).
pub fn project_fingerprint(project: &Project) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("project");
    fp.write_str(&project.name);
    fp.write_u64(project.streamlets().len() as u64);
    for streamlet in project.streamlets() {
        fp.write_fingerprint(streamlet_fingerprint(streamlet));
    }
    fp.write_u64(project.implementations().len() as u64);
    for implementation in project.implementations() {
        fp.write_fingerprint(implementation_fingerprint(project, implementation));
    }
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Connection, EndpointRef, Instance, Port, PortDirection};
    use tydi_spec::{LogicalType, StreamParams};

    fn stream(width: u32) -> LogicalType {
        LogicalType::stream(LogicalType::Bit(width), StreamParams::new())
    }

    fn sample_project(width: u32) -> Project {
        let mut p = Project::new("demo");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream(width)))
                .with_port(Port::new("o", PortDirection::Out, stream(width))),
        )
        .unwrap();
        p.add_implementation(
            Implementation::external("leaf_i", "pass_s").with_builtin("std.passthrough"),
        )
        .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(Instance::new("a", "leaf_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("a", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("a", "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        p
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let a = sample_project(8);
        let b = sample_project(8);
        assert_eq!(project_fingerprint(&a), project_fingerprint(&b));
        for (x, y) in a.implementations().iter().zip(b.implementations()) {
            assert_eq!(
                implementation_fingerprint(&a, x),
                implementation_fingerprint(&b, y)
            );
        }
    }

    #[test]
    fn content_changes_change_fingerprints() {
        let a = sample_project(8);
        let b = sample_project(16);
        assert_ne!(project_fingerprint(&a), project_fingerprint(&b));
        // The leaf's own definition did not change textually, but its
        // streamlet type did — its fingerprint must move too.
        assert_ne!(
            implementation_fingerprint(&a, a.implementation("leaf_i").unwrap()),
            implementation_fingerprint(&b, b.implementation("leaf_i").unwrap()),
        );
    }

    #[test]
    fn child_interface_invalidates_parent() {
        let mut a = sample_project(8);
        let mut b = sample_project(8);
        // Same top_i text; different child interface via pass_s width.
        let top_a = implementation_fingerprint(&a, a.implementation("top_i").unwrap());
        let _ = &mut a;
        let streamlet = Streamlet::new("pass2_s")
            .with_port(Port::new("i", PortDirection::In, stream(9)))
            .with_port(Port::new("o", PortDirection::Out, stream(9)));
        b.add_streamlet(streamlet).unwrap();
        let top_b = implementation_fingerprint(&b, b.implementation("top_i").unwrap());
        // Unrelated addition: parent fingerprint unchanged.
        assert_eq!(top_a, top_b);
    }

    #[test]
    fn strings_do_not_alias_across_boundaries() {
        let mut a = Fingerprinter::new();
        a.write_str("ab").write_str("c");
        let mut b = Fingerprinter::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn display_parses_back() {
        let fp = Fingerprint::of_str("hello");
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("not hex"), None);
    }

    #[test]
    fn option_none_differs_from_empty() {
        let mut a = Fingerprinter::new();
        a.write_opt_str(None);
        let mut b = Fingerprinter::new();
        b.write_opt_str(Some(""));
        assert_ne!(a.finish(), b.finish());
    }
}
