//! The Tydi-IR text format.
//!
//! The frontend "compiles Tydi-lang to Tydi-IR" (paper Fig. 1); this
//! module defines the stable, human-readable serialization of that IR
//! so the two compiler halves can be developed and tested separately.
//! [`emit_project`] and [`parse_project`] round-trip.
//!
//! ```text
//! project demo {
//!   streamlet pass_s {
//!     port i in !default : Stream(Bit(8));
//!     port o out !default : Stream(Bit(8));
//!   }
//!   impl top_i of pass_s {
//!     instance l of leaf_i;
//!     connect .i => l.i;
//!     connect l.o => .o;
//!   }
//!   impl leaf_i of pass_s external builtin "std.passthrough";
//! }
//! ```

use crate::component::{
    Connection, EndpointRef, ImplKind, Implementation, Instance, Port, PortDirection, Streamlet,
};
use crate::error::IrError;
use crate::project::Project;
use std::fmt::Write as _;
use tydi_spec::{parse_logical_type, ClockDomain};

/// Serializes a project to the text format.
pub fn emit_project(project: &Project) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "project {} {{", project.name);
    for streamlet in project.streamlets() {
        if !streamlet.doc.is_empty() {
            for line in streamlet.doc.lines() {
                let _ = writeln!(out, "  // {line}");
            }
        }
        let _ = writeln!(out, "  streamlet {} {{", streamlet.name);
        for port in &streamlet.ports {
            let _ = write!(
                out,
                "    port {} {} !{}",
                port.name,
                port.direction,
                port.clock.name()
            );
            if let Some(origin) = &port.type_origin {
                let _ = write!(out, " origin \"{origin}\"");
            }
            let _ = writeln!(out, " : {};", port.ty);
        }
        let _ = writeln!(out, "  }}");
    }
    for implementation in project.implementations() {
        if !implementation.doc.is_empty() {
            for line in implementation.doc.lines() {
                let _ = writeln!(out, "  // {line}");
            }
        }
        let _ = write!(
            out,
            "  impl {} of {}",
            implementation.name, implementation.streamlet
        );
        match &implementation.kind {
            ImplKind::External {
                builtin,
                sim_source,
            } => {
                let _ = write!(out, " external");
                if let Some(key) = builtin {
                    let _ = write!(out, " builtin \"{key}\"");
                }
                if let Some(sim) = sim_source {
                    let _ = write!(out, " sim \"{}\"", escape(sim));
                }
                for (attr, value) in &implementation.attributes {
                    let _ = write!(out, " attr {attr} \"{}\"", escape(value));
                }
                let _ = writeln!(out, ";");
            }
            ImplKind::Normal {
                instances,
                connections,
            } => {
                let _ = writeln!(out, " {{");
                for (attr, value) in &implementation.attributes {
                    let _ = writeln!(out, "    attr {attr} \"{}\";", escape(value));
                }
                for instance in instances {
                    let _ = writeln!(
                        out,
                        "    instance {} of {};",
                        instance.name, instance.impl_name
                    );
                }
                for connection in connections {
                    let _ = write!(
                        out,
                        "    connect {} => {}",
                        connection.source, connection.sink
                    );
                    if connection.relax_type_check {
                        let _ = write!(out, " relaxed");
                    }
                    if connection.inserted_by_sugar {
                        let _ = write!(out, " sugar");
                    }
                    let _ = writeln!(out, ";");
                }
                let _ = writeln!(out, "  }}");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Parses the text format back into a [`Project`].
pub fn parse_project(input: &str) -> Result<Project, IrError> {
    let mut p = TextParser::new(input);
    p.parse()
}

struct TextParser<'a> {
    lines: Vec<&'a str>,
    index: usize,
}

impl<'a> TextParser<'a> {
    fn new(input: &'a str) -> Self {
        TextParser {
            lines: input.lines().collect(),
            index: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> IrError {
        IrError::Parse {
            line: self.index + 1,
            message: message.into(),
        }
    }

    fn next_line(&mut self) -> Option<&'a str> {
        while self.index < self.lines.len() {
            let line = self.lines[self.index].trim();
            self.index += 1;
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            return Some(line);
        }
        None
    }

    /// Like [`TextParser::next_line`], but collects `//` comment lines
    /// into `doc` instead of discarding them — the emitter writes
    /// streamlet/implementation documentation as comments immediately
    /// before the declaration, so the top-level loop reattaches them.
    fn next_line_with_doc(&mut self, doc: &mut Vec<&'a str>) -> Option<&'a str> {
        while self.index < self.lines.len() {
            let line = self.lines[self.index].trim();
            self.index += 1;
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix("//") {
                doc.push(comment.strip_prefix(' ').unwrap_or(comment));
                continue;
            }
            return Some(line);
        }
        None
    }

    fn parse(&mut self) -> Result<Project, IrError> {
        let header = self.next_line().ok_or_else(|| self.err("empty input"))?;
        let name = header
            .strip_prefix("project ")
            .and_then(|r| r.strip_suffix('{'))
            .map(str::trim)
            .ok_or_else(|| self.err("expected `project <name> {`"))?;
        let mut project = Project::new(name);
        let mut doc: Vec<&str> = Vec::new();
        loop {
            let line = self
                .next_line_with_doc(&mut doc)
                .ok_or_else(|| self.err("unexpected end of input, expected `}`"))?;
            if line == "}" {
                return Ok(project);
            }
            if let Some(rest) = line.strip_prefix("streamlet ") {
                let name = rest
                    .strip_suffix('{')
                    .map(str::trim)
                    .ok_or_else(|| self.err("expected `streamlet <name> {`"))?;
                let mut streamlet = self.parse_streamlet_body(name)?;
                streamlet.doc = doc.join("\n");
                doc.clear();
                project.add_streamlet(streamlet)?;
            } else if let Some(rest) = line.strip_prefix("impl ") {
                let mut implementation = self.parse_impl(rest)?;
                implementation.doc = doc.join("\n");
                doc.clear();
                project.add_implementation(implementation)?;
            } else {
                return Err(self.err(format!("unexpected line `{line}`")));
            }
        }
    }

    fn parse_streamlet_body(&mut self, name: &str) -> Result<Streamlet, IrError> {
        let mut streamlet = Streamlet::new(name);
        loop {
            let line = self
                .next_line()
                .ok_or_else(|| self.err("unexpected end of streamlet body"))?;
            if line == "}" {
                return Ok(streamlet);
            }
            let rest = line
                .strip_prefix("port ")
                .ok_or_else(|| self.err(format!("expected `port ...;` got `{line}`")))?;
            let rest = rest
                .strip_suffix(';')
                .ok_or_else(|| self.err("port line must end with `;`"))?;
            let (head, ty_text) = rest
                .split_once(" : ")
                .ok_or_else(|| self.err("port line must contain ` : <type>`"))?;
            let mut words = head.split_whitespace();
            let port_name = words.next().ok_or_else(|| self.err("missing port name"))?;
            let direction = match words.next() {
                Some("in") => PortDirection::In,
                Some("out") => PortDirection::Out,
                other => return Err(self.err(format!("bad port direction {other:?}"))),
            };
            let clock = match words.next() {
                Some(c) if c.starts_with('!') => ClockDomain::new(&c[1..]),
                other => return Err(self.err(format!("expected `!<clock>`, got {other:?}"))),
            };
            let mut origin = None;
            if let Some(word) = words.next() {
                if word == "origin" {
                    let quoted: String = words.collect::<Vec<_>>().join(" ");
                    origin = Some(quoted.trim().trim_matches('"').to_string());
                } else {
                    return Err(self.err(format!("unexpected token `{word}` in port line")));
                }
            }
            let ty = parse_logical_type(ty_text.trim()).map_err(IrError::Spec)?;
            let mut port = Port::new(port_name, direction, ty).with_clock(clock);
            port.type_origin = origin;
            streamlet.ports.push(port);
        }
    }

    fn parse_impl(&mut self, header_rest: &str) -> Result<Implementation, IrError> {
        // header_rest: `<name> of <streamlet> {` or `<name> of <streamlet> external ...;`
        let (name, rest) = header_rest
            .split_once(" of ")
            .ok_or_else(|| self.err("expected `impl <name> of <streamlet>`"))?;
        let rest = rest.trim();
        if let Some(body_head) = rest.strip_suffix('{') {
            let streamlet = body_head.trim();
            let mut implementation = Implementation::normal(name.trim(), streamlet);
            loop {
                let line = self
                    .next_line()
                    .ok_or_else(|| self.err("unexpected end of impl body"))?;
                if line == "}" {
                    return Ok(implementation);
                }
                let line = line
                    .strip_suffix(';')
                    .ok_or_else(|| self.err("impl body lines must end with `;`"))?;
                if let Some(rest) = line.strip_prefix("instance ") {
                    let (inst_name, impl_name) = rest
                        .split_once(" of ")
                        .ok_or_else(|| self.err("expected `instance <name> of <impl>`"))?;
                    implementation.add_instance(Instance::new(inst_name.trim(), impl_name.trim()));
                } else if let Some(rest) = line.strip_prefix("connect ") {
                    let (src, rest) = rest
                        .split_once("=>")
                        .ok_or_else(|| self.err("expected `connect <src> => <sink>`"))?;
                    let mut words = rest.split_whitespace();
                    let sink = words.next().ok_or_else(|| self.err("missing sink"))?;
                    let mut connection = Connection::new(
                        parse_endpoint(src.trim())
                            .ok_or_else(|| self.err("bad source endpoint"))?,
                        parse_endpoint(sink).ok_or_else(|| self.err("bad sink endpoint"))?,
                    );
                    for word in words {
                        match word {
                            "relaxed" => connection.relax_type_check = true,
                            "sugar" => connection.inserted_by_sugar = true,
                            other => {
                                return Err(self.err(format!("unknown connect flag `{other}`")))
                            }
                        }
                    }
                    implementation.add_connection(connection);
                } else if let Some(rest) = line.strip_prefix("attr ") {
                    let (key, value) = parse_attr(rest.trim())
                        .ok_or_else(|| self.err("expected `attr <key> \"<value>\"`"))?;
                    implementation.attributes.insert(key, value);
                } else {
                    return Err(self.err(format!("unexpected impl body line `{line}`")));
                }
            }
        } else {
            let rest = rest
                .strip_suffix(';')
                .ok_or_else(|| self.err("external impl must end with `;`"))?;
            let mut parts = rest.splitn(2, " external");
            let streamlet = parts.next().unwrap_or("").trim();
            let tail = parts
                .next()
                .ok_or_else(|| self.err("expected `external` in impl header"))?
                .trim();
            let mut implementation = Implementation::external(name.trim(), streamlet);
            let mut remaining = tail;
            while !remaining.is_empty() {
                if let Some(rest) = remaining.strip_prefix("builtin ") {
                    let (value, after) = read_quoted(rest)
                        .ok_or_else(|| self.err("expected quoted value after `builtin`"))?;
                    implementation = implementation.with_builtin(value);
                    remaining = after.trim_start();
                } else if let Some(rest) = remaining.strip_prefix("sim ") {
                    let (value, after) = read_quoted(rest)
                        .ok_or_else(|| self.err("expected quoted value after `sim`"))?;
                    implementation = implementation.with_sim_source(value);
                    remaining = after.trim_start();
                } else if let Some(rest) = remaining.strip_prefix("attr ") {
                    let (key, after_key) = rest
                        .trim_start()
                        .split_once(' ')
                        .ok_or_else(|| self.err("expected `attr <key> \"<value>\"`"))?;
                    let (value, after) = read_quoted(after_key)
                        .ok_or_else(|| self.err("expected quoted value after attr key"))?;
                    implementation.attributes.insert(key.to_string(), value);
                    remaining = after.trim_start();
                } else {
                    return Err(self.err(format!("unexpected external clause `{remaining}`")));
                }
            }
            Ok(implementation)
        }
    }
}

/// Parses `key "value"` (also tolerating the legacy value-less `key`
/// form written by older emitters).
fn parse_attr(s: &str) -> Option<(String, String)> {
    match s.split_once(' ') {
        Some((key, rest)) => {
            let (value, _after) = read_quoted(rest)?;
            Some((key.to_string(), value))
        }
        None => Some((s.to_string(), String::new())),
    }
}

fn parse_endpoint(s: &str) -> Option<EndpointRef> {
    if let Some(port) = s.strip_prefix('.') {
        if port.is_empty() {
            return None;
        }
        Some(EndpointRef::own(port))
    } else {
        let (instance, port) = s.split_once('.')?;
        if instance.is_empty() || port.is_empty() {
            return None;
        }
        Some(EndpointRef::instance(instance, port))
    }
}

/// Reads a leading `"..."` (with escapes) and returns (content, rest).
fn read_quoted(s: &str) -> Option<(String, &str)> {
    let s = s.trim_start();
    let rest = s.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => {
                let (_, next) = chars.next()?;
                out.push(if next == 'n' { '\n' } else { next });
            }
            '"' => return Some((out, &rest[i + 1..])),
            other => out.push(other),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_spec::{LogicalType, StreamParams};

    fn demo_project() -> Project {
        let stream8 = LogicalType::stream(LogicalType::Bit(8), StreamParams::new());
        let mut p = Project::new("demo");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream8.clone()).with_origin("pack.T"))
                .with_port(Port::new("o", PortDirection::Out, stream8)),
        )
        .unwrap();
        p.add_implementation(
            Implementation::external("leaf_i", "pass_s")
                .with_builtin("std.passthrough")
                .with_sim_source("state s = \"idle\";\non (i.recv) { ack(i); }"),
        )
        .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(Instance::new("l", "leaf_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("l", "i"),
        ));
        let mut back = Connection::new(EndpointRef::instance("l", "o"), EndpointRef::own("o"));
        back.inserted_by_sugar = true;
        back.relax_type_check = true;
        top.add_connection(back);
        p.add_implementation(top).unwrap();
        p
    }

    #[test]
    fn round_trip() {
        let p = demo_project();
        let text = emit_project(&p);
        let q = parse_project(&text).expect(&text);
        assert_eq!(q.name, "demo");
        assert_eq!(q.streamlets().len(), 1);
        assert_eq!(q.implementations().len(), 2);
        let leaf = q.implementation("leaf_i").unwrap();
        match &leaf.kind {
            ImplKind::External {
                builtin,
                sim_source,
            } => {
                assert_eq!(builtin.as_deref(), Some("std.passthrough"));
                assert!(sim_source.as_deref().unwrap().contains("state s"));
                assert!(sim_source.as_deref().unwrap().contains('\n'));
            }
            _ => panic!("expected external"),
        }
        let top = q.implementation("top_i").unwrap();
        assert_eq!(top.connections().len(), 2);
        assert!(top.connections()[1].inserted_by_sugar);
        assert!(top.connections()[1].relax_type_check);
        let port = q.streamlet("pass_s").unwrap().port("i").unwrap();
        assert_eq!(port.type_origin.as_deref(), Some("pack.T"));
        // Second round trip is a fixed point.
        assert_eq!(emit_project(&q), text);
    }

    #[test]
    fn attributes_and_docs_round_trip() {
        let stream8 = LogicalType::stream(LogicalType::Bit(8), StreamParams::new());
        let mut p = Project::new("attrs");
        let mut s = Streamlet::new("s")
            .with_port(Port::new("i", PortDirection::In, stream8.clone()))
            .with_port(Port::new("o", PortDirection::Out, stream8));
        s.doc = "a documented streamlet\nwith two lines".to_string();
        p.add_streamlet(s).unwrap();
        // External impl with template-binding attributes (the shape
        // builtin RTL generators read back at codegen time).
        let mut ext = Implementation::external("lt_i", "s").with_builtin("std.lt_const");
        ext.attributes.insert("v".to_string(), "100".to_string());
        ext.attributes
            .insert("T".to_string(), "Stream(Bit(32), d=1)".to_string());
        ext.doc = "compares against a constant".to_string();
        p.add_implementation(ext).unwrap();
        // Normal impl with a valued and a valueless attribute.
        let mut top = Implementation::normal("top_i", "s");
        top.attributes
            .insert("NoStrictType".to_string(), String::new());
        top.attributes.insert(
            "note".to_string(),
            "with \"quotes\"\nand newline".to_string(),
        );
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();

        let text = emit_project(&p);
        let q = parse_project(&text).expect(&text);
        let ext = q.implementation("lt_i").unwrap();
        assert_eq!(ext.attributes.get("v").map(String::as_str), Some("100"));
        assert_eq!(
            ext.attributes.get("T").map(String::as_str),
            Some("Stream(Bit(32), d=1)")
        );
        assert_eq!(ext.doc, "compares against a constant");
        let top = q.implementation("top_i").unwrap();
        assert_eq!(
            top.attributes.get("NoStrictType").map(String::as_str),
            Some("")
        );
        assert_eq!(
            top.attributes.get("note").map(String::as_str),
            Some("with \"quotes\"\nand newline")
        );
        assert_eq!(
            q.streamlet("s").unwrap().doc,
            "a documented streamlet\nwith two lines"
        );
        // Second round trip is a fixed point.
        assert_eq!(emit_project(&q), text);
    }

    #[test]
    fn legacy_valueless_attr_lines_still_parse() {
        let text =
            "project x {\n  streamlet s {\n  }\n  impl i of s {\n    attr NoStrictType;\n  }\n}\n";
        let p = parse_project(text).unwrap();
        assert!(p
            .implementation("i")
            .unwrap()
            .attributes
            .contains_key("NoStrictType"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_project("").is_err());
        assert!(parse_project("project x {").is_err());
        assert!(parse_project("project x {\n garbage;\n}").is_err());
        assert!(
            parse_project("project x {\n streamlet s {\n port a sideways !d : Bit(1);\n }\n}")
                .is_err()
        );
    }

    #[test]
    fn endpoint_parsing() {
        assert_eq!(parse_endpoint(".a"), Some(EndpointRef::own("a")));
        assert_eq!(parse_endpoint("x.a"), Some(EndpointRef::instance("x", "a")));
        assert_eq!(parse_endpoint("."), None);
        assert_eq!(parse_endpoint("noport"), None);
    }

    #[test]
    fn quoted_reader_handles_escapes() {
        let (v, rest) = read_quoted("\"a\\\"b\" tail").unwrap();
        assert_eq!(v, "a\"b");
        assert_eq!(rest, " tail");
        assert!(read_quoted("no quote").is_none());
        assert!(read_quoted("\"unterminated").is_none());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "\n// header\nproject x {\n\n  // a streamlet\n  streamlet s {\n  }\n}\n";
        let p = parse_project(text).unwrap();
        assert_eq!(p.name, "x");
        assert_eq!(p.streamlets().len(), 1);
    }
}
