//! Testbench representation.
//!
//! The Tydi simulator records the data entering and leaving a top-level
//! implementation and emits the trace as a *Tydi-IR testbench*; the
//! VHDL backend then lowers that testbench into a VHDL process that
//! drives the stimuli and checks the expectations (paper §V-C, the
//! "input – current state – output" testing system).

use crate::bits::BitsValue;
use std::fmt;
use tydi_spec::ClockDomain;

/// Whether a transfer is driven into the design or expected out of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferDirection {
    /// Driven into an input port of the top-level design.
    Stimulus,
    /// Expected on an output port of the top-level design.
    Expectation,
}

impl fmt::Display for TransferDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferDirection::Stimulus => write!(f, "stimulus"),
            TransferDirection::Expectation => write!(f, "expect"),
        }
    }
}

/// One handshaked transfer on a port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Cycle (in the testbench clock domain) at which the transfer is
    /// driven / by which it is expected.
    pub cycle: u64,
    /// Port of the top-level streamlet.
    pub port: String,
    /// Element payload bits.
    pub data: BitsValue,
    /// `last` flags, innermost dimension first (index 0 maps to bit 0
    /// of the `last` signal; empty for dimension 0).
    pub last: Vec<bool>,
    /// Stimulus or expectation.
    pub direction: TransferDirection,
}

impl Transfer {
    /// Creates a stimulus transfer.
    pub fn stimulus(cycle: u64, port: impl Into<String>, data: BitsValue) -> Self {
        Transfer {
            cycle,
            port: port.into(),
            data,
            last: Vec::new(),
            direction: TransferDirection::Stimulus,
        }
    }

    /// Creates an expectation transfer.
    pub fn expectation(cycle: u64, port: impl Into<String>, data: BitsValue) -> Self {
        Transfer {
            cycle,
            port: port.into(),
            data,
            last: Vec::new(),
            direction: TransferDirection::Expectation,
        }
    }

    /// Attaches `last` flags (innermost dimension first).
    pub fn with_last(mut self, last: Vec<bool>) -> Self {
        self.last = last;
        self
    }
}

impl fmt::Display for Transfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{} {} {} = {}",
            self.cycle, self.direction, self.port, self.data
        )?;
        if !self.last.is_empty() {
            let flags: String = self
                .last
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect();
            write!(f, " last={flags}")?;
        }
        Ok(())
    }
}

/// A complete testbench for one top-level implementation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Testbench {
    /// Testbench name; becomes the VHDL entity name suffixed `_tb`.
    pub name: String,
    /// The implementation under test.
    pub top_impl: String,
    /// Clock domain the cycle counts refer to.
    pub clock: ClockDomain,
    /// All transfers, in insertion order.
    pub transfers: Vec<Transfer>,
    /// Free-form description embedded as a comment in generated VHDL.
    pub comment: String,
}

impl Testbench {
    /// Creates an empty testbench.
    pub fn new(name: impl Into<String>, top_impl: impl Into<String>) -> Self {
        Testbench {
            name: name.into(),
            top_impl: top_impl.into(),
            clock: ClockDomain::default(),
            transfers: Vec::new(),
            comment: String::new(),
        }
    }

    /// Adds a transfer.
    pub fn push(&mut self, transfer: Transfer) {
        self.transfers.push(transfer);
    }

    /// All stimuli, ordered by cycle (stable for equal cycles).
    pub fn stimuli(&self) -> Vec<&Transfer> {
        self.sorted(TransferDirection::Stimulus)
    }

    /// All expectations, ordered by cycle.
    pub fn expectations(&self) -> Vec<&Transfer> {
        self.sorted(TransferDirection::Expectation)
    }

    fn sorted(&self, direction: TransferDirection) -> Vec<&Transfer> {
        let mut v: Vec<&Transfer> = self
            .transfers
            .iter()
            .filter(|t| t.direction == direction)
            .collect();
        v.sort_by_key(|t| t.cycle);
        v
    }

    /// The last cycle that appears in the testbench (simulation length).
    pub fn horizon(&self) -> u64 {
        self.transfers.iter().map(|t| t.cycle).max().unwrap_or(0)
    }

    /// Ports touched by any transfer, deduplicated in first-seen order.
    pub fn ports(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for t in &self.transfers {
            if !out.contains(&t.port.as_str()) {
                out.push(&t.port);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb() -> Testbench {
        let mut tb = Testbench::new("adder_tb", "adder_i");
        tb.push(Transfer::stimulus(0, "in0", BitsValue::from_u64(1, 32)));
        tb.push(Transfer::stimulus(0, "in1", BitsValue::from_u64(2, 32)));
        tb.push(Transfer::expectation(8, "out", BitsValue::from_u64(3, 32)).with_last(vec![true]));
        tb.push(Transfer::stimulus(1, "in0", BitsValue::from_u64(5, 32)));
        tb
    }

    #[test]
    fn stimuli_and_expectations_partition() {
        let tb = tb();
        assert_eq!(tb.stimuli().len(), 3);
        assert_eq!(tb.expectations().len(), 1);
        assert_eq!(tb.horizon(), 8);
    }

    #[test]
    fn stimuli_sorted_by_cycle() {
        let tb = tb();
        let cycles: Vec<u64> = tb.stimuli().iter().map(|t| t.cycle).collect();
        assert_eq!(cycles, vec![0, 0, 1]);
    }

    #[test]
    fn ports_deduplicated_in_order() {
        let tb = tb();
        assert_eq!(tb.ports(), vec!["in0", "in1", "out"]);
    }

    #[test]
    fn transfer_display() {
        let t = Transfer::expectation(8, "out", BitsValue::from_u64(3, 32))
            .with_last(vec![true, false]);
        assert_eq!(t.to_string(), "@8 expect out = 3:32 last=10");
    }

    #[test]
    fn empty_testbench_horizon() {
        assert_eq!(Testbench::new("x", "y").horizon(), 0);
    }
}
