//! The Tydi-IR binary format (`.tirb`).
//!
//! The artifact cache historically persisted elaborated projects as
//! `.tir` text and re-parsed them on every warm start — re-lexing
//! every type expression and re-hash-consing every port type. The
//! binary format removes that tax: a versioned header is followed by
//! a **type table** of interned type references — each distinct
//! logical type is stored once, in canonical text, and every port
//! refers to it by index — so the decoder parses each distinct type
//! exactly once and all ports sharing a type share one `Arc` again
//! after the round trip, exactly as the elaborator's hash-consed
//! store produced them.
//!
//! The format is little-endian throughout: `u32` lengths/counts,
//! length-prefixed UTF-8 strings, and single-byte tags. The decoder
//! is fully bounds-checked and returns [`IrError::Binary`] on any
//! truncated, corrupt or foreign input — it must never panic, since
//! cache files on disk are outside the compiler's control.

use crate::component::{
    Connection, EndpointRef, ImplKind, Implementation, Instance, Port, PortDirection, Streamlet,
};
use crate::error::IrError;
use crate::project::Project;
use std::collections::HashMap;
use std::sync::Arc;
use tydi_spec::{parse_logical_type, ClockDomain, LogicalType};

/// File magic: identifies `.tirb` payloads.
pub const MAGIC: &[u8; 4] = b"TIRB";

/// Current format version. Bump on any layout change; the decoder
/// rejects other versions so stale caches rebuild cold instead of
/// being misread.
pub const VERSION: u16 = 1;

const KIND_NORMAL: u8 = 0;
const KIND_EXTERNAL: u8 = 1;

/// Serializes a project to the binary format.
pub fn encode_project(project: &Project) -> Vec<u8> {
    let mut w = Writer::default();
    w.bytes.extend_from_slice(MAGIC);
    w.u16(VERSION);
    w.str(&project.name);

    // Type table: every distinct port type once, in first-use order.
    // Deduplication is by canonical text, which also collapses types
    // that are structurally equal but separately allocated.
    let mut table: Vec<String> = Vec::new();
    let mut by_text: HashMap<String, u32> = HashMap::new();
    let mut port_types: Vec<u32> = Vec::new();
    for streamlet in project.streamlets() {
        for port in &streamlet.ports {
            let text = port.ty.to_string();
            let index = *by_text.entry(text.clone()).or_insert_with(|| {
                table.push(text);
                (table.len() - 1) as u32
            });
            port_types.push(index);
        }
    }
    w.u32(table.len() as u32);
    for entry in &table {
        w.str(entry);
    }

    let mut next_port = port_types.iter().copied();
    w.u32(project.streamlets().len() as u32);
    for streamlet in project.streamlets() {
        w.str(&streamlet.name);
        w.str(&streamlet.doc);
        w.u32(streamlet.ports.len() as u32);
        for port in &streamlet.ports {
            w.str(&port.name);
            w.u8(match port.direction {
                PortDirection::In => 0,
                PortDirection::Out => 1,
            });
            w.str(port.clock.name());
            w.opt_str(port.type_origin.as_deref());
            w.u32(next_port.next().expect("port count matches type table"));
        }
    }

    w.u32(project.implementations().len() as u32);
    for implementation in project.implementations() {
        w.str(&implementation.name);
        w.str(&implementation.streamlet);
        w.str(&implementation.doc);
        w.u32(implementation.attributes.len() as u32);
        for (key, value) in &implementation.attributes {
            w.str(key);
            w.str(value);
        }
        match &implementation.kind {
            ImplKind::Normal {
                instances,
                connections,
            } => {
                w.u8(KIND_NORMAL);
                w.u32(instances.len() as u32);
                for instance in instances {
                    w.str(&instance.name);
                    w.str(&instance.impl_name);
                    w.str(&instance.doc);
                }
                w.u32(connections.len() as u32);
                for connection in connections {
                    w.endpoint(&connection.source);
                    w.endpoint(&connection.sink);
                    let mut flags = 0u8;
                    if connection.relax_type_check {
                        flags |= 1;
                    }
                    if connection.inserted_by_sugar {
                        flags |= 2;
                    }
                    w.u8(flags);
                }
            }
            ImplKind::External {
                builtin,
                sim_source,
            } => {
                w.u8(KIND_EXTERNAL);
                w.opt_str(builtin.as_deref());
                w.opt_str(sim_source.as_deref());
            }
        }
    }
    w.bytes
}

/// Deserializes a project from the binary format.
///
/// Any malformed input — wrong magic, unknown version, truncation,
/// out-of-range type reference, invalid UTF-8 — yields
/// [`IrError::Binary`]; the decoder never panics.
pub fn decode_project(bytes: &[u8]) -> Result<Project, IrError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(err("bad magic (not a .tirb file)"));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(err(format!(
            "unsupported format version {version} (expected {VERSION})"
        )));
    }
    let name = r.str()?;
    let mut project = Project::new(name);

    let ntypes = r.count(4)?;
    let mut types: Vec<Arc<LogicalType>> = Vec::with_capacity(ntypes);
    for _ in 0..ntypes {
        let text = r.str()?;
        let ty = parse_logical_type(&text).map_err(IrError::Spec)?;
        types.push(Arc::new(ty));
    }

    let nstreamlets = r.count(8)?;
    for _ in 0..nstreamlets {
        let mut streamlet = Streamlet::new(r.str()?);
        streamlet.doc = r.str()?;
        let nports = r.count(14)?;
        for _ in 0..nports {
            let port_name = r.str()?;
            let direction = match r.u8()? {
                0 => PortDirection::In,
                1 => PortDirection::Out,
                other => return Err(err(format!("bad port direction tag {other}"))),
            };
            let clock = ClockDomain::new(r.str()?);
            let origin = r.opt_str()?;
            let ty_index = r.u32()? as usize;
            let ty = types
                .get(ty_index)
                .ok_or_else(|| err(format!("type reference {ty_index} out of range")))?;
            let mut port = Port::from_arc(port_name, direction, Arc::clone(ty)).with_clock(clock);
            port.type_origin = origin;
            streamlet.ports.push(port);
        }
        project.add_streamlet(streamlet)?;
    }

    let nimpls = r.count(13)?;
    for _ in 0..nimpls {
        let impl_name = r.str()?;
        let streamlet_name = r.str()?;
        let doc = r.str()?;
        let nattrs = r.count(8)?;
        let mut attributes = std::collections::BTreeMap::new();
        for _ in 0..nattrs {
            let key = r.str()?;
            let value = r.str()?;
            attributes.insert(key, value);
        }
        let mut implementation = match r.u8()? {
            KIND_NORMAL => {
                let mut implementation = Implementation::normal(impl_name, streamlet_name);
                let ninstances = r.count(12)?;
                for _ in 0..ninstances {
                    let mut instance = Instance::new(r.str()?, r.str()?);
                    instance.doc = r.str()?;
                    implementation.add_instance(instance);
                }
                let nconnections = r.count(11)?;
                for _ in 0..nconnections {
                    let source = r.endpoint()?;
                    let sink = r.endpoint()?;
                    let flags = r.u8()?;
                    if flags & !3 != 0 {
                        return Err(err(format!("unknown connection flags {flags:#x}")));
                    }
                    let mut connection = Connection::new(source, sink);
                    connection.relax_type_check = flags & 1 != 0;
                    connection.inserted_by_sugar = flags & 2 != 0;
                    implementation.add_connection(connection);
                }
                implementation
            }
            KIND_EXTERNAL => {
                let mut implementation = Implementation::external(impl_name, streamlet_name);
                if let Some(builtin) = r.opt_str()? {
                    implementation = implementation.with_builtin(builtin);
                }
                if let Some(sim) = r.opt_str()? {
                    implementation = implementation.with_sim_source(sim);
                }
                implementation
            }
            other => return Err(err(format!("bad implementation kind tag {other}"))),
        };
        implementation.doc = doc;
        implementation.attributes = attributes;
        project.add_implementation(implementation)?;
    }
    if r.pos != bytes.len() {
        return Err(err(format!(
            "{} trailing byte(s) after project",
            bytes.len() - r.pos
        )));
    }
    Ok(project)
}

fn err(message: impl Into<String>) -> IrError {
    IrError::Binary {
        message: message.into(),
    }
}

#[derive(Default)]
struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes.extend_from_slice(s.as_bytes());
    }

    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }

    fn endpoint(&mut self, e: &EndpointRef) {
        self.opt_str(e.instance.as_deref());
        self.str(&e.port);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], IrError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| err("unexpected end of input"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, IrError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, IrError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, IrError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads an element count whose elements each occupy at least
    /// `min_elem_size` bytes, rejecting counts the remaining input
    /// cannot possibly hold (guards allocation on corrupt files).
    fn count(&mut self, min_elem_size: usize) -> Result<usize, IrError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(min_elem_size) > remaining {
            return Err(err(format!("count {n} exceeds remaining input")));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, IrError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("invalid UTF-8 in string"))
    }

    fn opt_str(&mut self) -> Result<Option<String>, IrError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            other => Err(err(format!("bad option tag {other}"))),
        }
    }

    fn endpoint(&mut self) -> Result<EndpointRef, IrError> {
        let instance = self.opt_str()?;
        let port = self.str()?;
        Ok(match instance {
            Some(instance) => EndpointRef::instance(instance, port),
            None => EndpointRef::own(port),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::emit_project;
    use tydi_spec::{LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    fn demo_project() -> Project {
        let mut p = Project::new("demo");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(
                    Port::new("i", PortDirection::In, stream8())
                        .with_origin("pack.T")
                        .with_clock(ClockDomain::new("fast")),
                )
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_implementation(
            Implementation::external("leaf_i", "pass_s")
                .with_builtin("std.passthrough")
                .with_sim_source("state s = \"idle\";\non (i.recv) { ack(i); }"),
        )
        .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.doc = "the top level\nacross two lines".to_string();
        top.attributes
            .insert("NoStrictType".to_string(), String::new());
        top.add_instance(Instance::new("l", "leaf_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("l", "i"),
        ));
        let mut back = Connection::new(EndpointRef::instance("l", "o"), EndpointRef::own("o"));
        back.inserted_by_sugar = true;
        back.relax_type_check = true;
        top.add_connection(back);
        p.add_implementation(top).unwrap();
        p
    }

    #[test]
    fn round_trips_byte_identically() {
        let p = demo_project();
        let encoded = encode_project(&p);
        let q = decode_project(&encoded).unwrap();
        // The canonical text render pins full structural equality.
        assert_eq!(emit_project(&q), emit_project(&p));
        // Re-encoding the decoded project is a fixed point.
        assert_eq!(encode_project(&q), encoded);
    }

    #[test]
    fn type_table_restores_arc_sharing() {
        let p = demo_project();
        let q = decode_project(&encode_project(&p)).unwrap();
        let s = q.streamlet("pass_s").unwrap();
        // Both ports carry the same logical type: one table entry,
        // one allocation after decoding.
        assert!(Arc::ptr_eq(&s.ports[0].ty, &s.ports[1].ty));
    }

    #[test]
    fn header_is_versioned() {
        let p = demo_project();
        let mut encoded = encode_project(&p);
        assert_eq!(&encoded[..4], MAGIC);
        // Wrong magic.
        let mut bad = encoded.clone();
        bad[0] = b'X';
        assert!(matches!(decode_project(&bad), Err(IrError::Binary { .. })));
        // Future version.
        encoded[4] = 0xff;
        assert!(matches!(
            decode_project(&encoded),
            Err(IrError::Binary { .. })
        ));
    }

    #[test]
    fn every_truncation_errors_without_panicking() {
        let encoded = encode_project(&demo_project());
        for len in 0..encoded.len() {
            assert!(
                decode_project(&encoded[..len]).is_err(),
                "truncation at {len} must not decode"
            );
        }
    }

    #[test]
    fn corrupt_bytes_never_panic() {
        let encoded = encode_project(&demo_project());
        // Flip each byte through a few values; decoding may fail or
        // (for free-text bytes) still succeed, but must never panic.
        for pos in 0..encoded.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut corrupt = encoded.clone();
                corrupt[pos] ^= flip;
                let _ = decode_project(&corrupt);
            }
        }
    }

    #[test]
    fn oversized_counts_are_rejected_early() {
        // A type-table count far beyond the payload must fail fast
        // instead of attempting a giant allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // name len 1
        bytes.push(b'x');
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // ntypes
        assert!(matches!(
            decode_project(&bytes),
            Err(IrError::Binary { .. })
        ));
    }
}
