//! # tydi-ir
//!
//! The Tydi intermediate representation ("A toolchain for streaming
//! dataflow accelerator designs for big data analytics: defining an IR
//! for composable typed streaming dataflow designs", ADMS 2023), the
//! layer between the Tydi-lang frontend and hardware backends.
//!
//! A Tydi-IR [`Project`] contains:
//!
//! * [`Streamlet`]s — port maps, the analogue of VHDL entities. Every
//!   port binds a Tydi logical *stream* type and a clock domain.
//! * [`Implementation`]s — the inner structure of a component, either
//!   *normal* (a set of [`Instance`]s plus [`Connection`]s, the
//!   analogue of a structural VHDL architecture) or *external*
//!   (a black box provided by another tool or by the builtin RTL
//!   generators of the standard library).
//!
//! The IR enforces the paper's design rules on [`Project::validate`]:
//! connected ports must have identical logical types (strict,
//! by-declaration equality unless relaxed), compatible protocol
//! complexities, legal directions, matching clock domains, and every
//! port must be used exactly once.
//!
//! The IR also has a stable text format ([`text::emit_project`] /
//! [`text::parse_project`]), a versioned binary format with an
//! interned type table ([`binary::encode_project`] /
//! [`binary::decode_project`]) used by the artifact cache, and a
//! [`testbench`] representation that the simulator fills in and the
//! VHDL backend lowers to a VHDL testbench.

#![warn(missing_docs)]

pub mod binary;
pub mod bits;
pub mod component;
pub mod error;
pub mod fingerprint;
pub mod index;
pub mod intern;
pub mod project;
pub mod testbench;
pub mod text;
pub mod validate;

pub use bits::BitsValue;
pub use component::{
    Connection, EndpointRef, ImplKind, Implementation, Instance, Port, PortDirection, Streamlet,
};
pub use error::IrError;
pub use fingerprint::{shared_type_fingerprint, Fingerprint, Fingerprinter};
pub use index::ProjectIndex;
pub use intern::{ImplId, Interner, StreamletId, Symbol};
pub use project::Project;
pub use testbench::{Testbench, Transfer, TransferDirection};
