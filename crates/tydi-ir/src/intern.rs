//! Symbol interning and typed indices.
//!
//! Every definition name in a [`Project`](crate::Project) is interned
//! once into a [`Symbol`]; lookups, duplicate detection and span
//! tables then work on compact integer ids instead of owned strings.
//! [`StreamletId`] and [`ImplId`] index straight into the project's
//! definition vectors, so resolving a reference is an array access —
//! no hashing, no string compares — which is what lets the DRC fan
//! out per-implementation work across threads cheaply.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned name.
///
/// Two symbols from the *same* interner are equal exactly when their
/// strings are equal; comparing symbols from different interners is
/// meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The position of this symbol in its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a streamlet definition within its project.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamletId(pub(crate) u32);

impl StreamletId {
    /// The position in [`Project::streamlets`](crate::Project::streamlets).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of an implementation definition within its project.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImplId(pub(crate) u32);

impl ImplId {
    /// The position in
    /// [`Project::implementations`](crate::Project::implementations).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner: each distinct string is stored once and handed
/// out as a [`Symbol`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<Arc<str>>,
    map: HashMap<Arc<str>, Symbol>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `name`, returning its symbol. Interning the same string
    /// twice returns the same symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("interner overflow"));
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.map.insert(shared, sym);
        sym
    }

    /// Returns the symbol of an already-interned string, without
    /// interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The string behind a symbol.
    ///
    /// # Panics
    /// Panics when the symbol comes from a different interner and is
    /// out of range.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_round_trip() {
        let mut i = Interner::new();
        let a = i.intern("wire_i");
        let b = i.intern("adder_i");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "wire_i");
        assert_eq!(i.resolve(b), "adder_i");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("x");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("missing"), None);
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
