//! The shared project index: every name-resolution table the middle
//! of the pipeline needs, built **once** after elaboration.
//!
//! Historically each pass rebuilt its own lookup maps: the sugaring
//! pass re-resolved `implementation → streamlet` per instance, the
//! DRC built a fresh borrowed port index per validation run, and the
//! netlist lowering scanned instance lists linearly per endpoint. A
//! [`ProjectIndex`] replaces all of those with one owned, cheaply
//! clonable structure that is built right after elaboration and
//! threaded through `apply_sugaring` → DRC → lowering.
//!
//! The index is positional: entry `i` of each table describes the
//! definition with id `i`, so it stays valid as long as definitions
//! are only *appended* (which is the only mutation the pipeline
//! performs — the sugaring pass appends helper components and then
//! registers them with [`ProjectIndex::register_streamlet`] /
//! [`ProjectIndex::register_implementation`], and refreshes an
//! implementation's instance table after splicing instances into it).

use crate::component::{Instance, Port};
use crate::intern::{ImplId, StreamletId};
use crate::project::Project;
use std::collections::HashMap;

/// Owned name-resolution tables over one [`Project`].
///
/// All lookups are O(1): a hash over the queried name at most, plus
/// array accesses. Accessors that return borrowed definitions take
/// the project as an argument, so the index itself stays `'static`
/// and can be shared (e.g. behind an `Arc`) across pipeline stages
/// and worker threads.
#[derive(Debug, Clone, Default)]
pub struct ProjectIndex {
    /// Port name → position in `streamlet.ports`, per [`StreamletId`].
    port_maps: Vec<HashMap<String, usize>>,
    /// Resolved streamlet of each implementation, per [`ImplId`]
    /// (`None` when the reference does not resolve; the DRC reports
    /// that).
    impl_streamlets: Vec<Option<StreamletId>>,
    /// Instance name → position in the implementation's instance
    /// list, per [`ImplId`]. First declaration wins on duplicates,
    /// matching endpoint-resolution semantics in the DRC.
    instance_maps: Vec<HashMap<String, usize>>,
}

impl ProjectIndex {
    /// Builds the index for every definition currently in `project`.
    pub fn build(project: &Project) -> Self {
        let mut index = ProjectIndex::default();
        for id in 0..project.streamlets().len() {
            index.push_streamlet(project, id);
        }
        for id in 0..project.implementations().len() {
            index.push_implementation(project, id);
        }
        index
    }

    /// Number of streamlets indexed.
    pub fn streamlets_indexed(&self) -> usize {
        self.port_maps.len()
    }

    /// Number of implementations indexed.
    pub fn implementations_indexed(&self) -> usize {
        self.impl_streamlets.len()
    }

    /// True when the index covers every definition of `project` — the
    /// invariant every pass relies on.
    pub fn covers(&self, project: &Project) -> bool {
        self.port_maps.len() == project.streamlets().len()
            && self.impl_streamlets.len() == project.implementations().len()
    }

    fn push_streamlet(&mut self, project: &Project, position: usize) {
        let streamlet = &project.streamlets()[position];
        let mut ports = HashMap::with_capacity(streamlet.ports.len());
        for (k, port) in streamlet.ports.iter().enumerate() {
            // First declaration wins; duplicate ports are a DRC error.
            ports.entry(port.name.clone()).or_insert(k);
        }
        self.port_maps.push(ports);
    }

    fn push_implementation(&mut self, project: &Project, position: usize) {
        let implementation = &project.implementations()[position];
        self.impl_streamlets
            .push(project.streamlet_id(&implementation.streamlet));
        self.instance_maps
            .push(Self::instance_map(implementation.instances()));
    }

    fn instance_map(instances: &[Instance]) -> HashMap<String, usize> {
        let mut map = HashMap::with_capacity(instances.len());
        for (k, instance) in instances.iter().enumerate() {
            // First declaration wins; duplicates are a DRC error.
            map.entry(instance.name.clone()).or_insert(k);
        }
        map
    }

    /// Registers a streamlet appended to the project after the index
    /// was built (used by the sugaring pass for helper components).
    ///
    /// # Panics
    /// Panics when `id` is not the next unindexed streamlet:
    /// registrations must mirror append order.
    pub fn register_streamlet(&mut self, project: &Project, id: StreamletId) {
        assert_eq!(
            id.index(),
            self.port_maps.len(),
            "streamlets must be registered in append order"
        );
        self.push_streamlet(project, id.index());
    }

    /// Registers an implementation appended to the project after the
    /// index was built.
    ///
    /// # Panics
    /// Panics when `id` is not the next unindexed implementation.
    pub fn register_implementation(&mut self, project: &Project, id: ImplId) {
        assert_eq!(
            id.index(),
            self.impl_streamlets.len(),
            "implementations must be registered in append order"
        );
        self.push_implementation(project, id.index());
    }

    /// Rebuilds one implementation's instance table after instances
    /// were spliced into it (the sugaring pass does this when it adds
    /// duplicator/voider instances).
    pub fn refresh_implementation(&mut self, project: &Project, id: ImplId) {
        self.instance_maps[id.index()] =
            Self::instance_map(project.implementation_by_id(id).instances());
    }

    /// The streamlet realized by implementation `id`, when resolvable.
    pub fn streamlet_of_impl(&self, id: ImplId) -> Option<StreamletId> {
        self.impl_streamlets[id.index()]
    }

    /// The streamlet realized by the named implementation.
    pub fn streamlet_of_impl_name(
        &self,
        project: &Project,
        impl_name: &str,
    ) -> Option<StreamletId> {
        self.streamlet_of_impl(project.implementation_id(impl_name)?)
    }

    /// A port of streamlet `id` by name.
    pub fn port<'p>(&self, project: &'p Project, id: StreamletId, name: &str) -> Option<&'p Port> {
        let position = *self.port_maps[id.index()].get(name)?;
        Some(&project.streamlet_by_id(id).ports[position])
    }

    /// The position of the named instance in implementation `id`'s
    /// instance list (first declaration wins on duplicates).
    pub fn instance_position(&self, id: ImplId, name: &str) -> Option<usize> {
        self.instance_maps[id.index()].get(name).copied()
    }

    /// The named instance of implementation `id`.
    pub fn instance<'p>(
        &self,
        project: &'p Project,
        id: ImplId,
        name: &str,
    ) -> Option<&'p Instance> {
        let position = self.instance_position(id, name)?;
        Some(&project.implementation_by_id(id).instances()[position])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Implementation, Instance, Port, PortDirection, Streamlet};
    use tydi_spec::{LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    fn project() -> Project {
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_implementation(Implementation::external("leaf_i", "pass_s"))
            .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(Instance::new("a", "leaf_i"));
        top.add_instance(Instance::new("b", "leaf_i"));
        p.add_implementation(top).unwrap();
        p
    }

    #[test]
    fn build_resolves_everything() {
        let p = project();
        let index = ProjectIndex::build(&p);
        assert!(index.covers(&p));
        let sid = p.streamlet_id("pass_s").unwrap();
        assert_eq!(index.port(&p, sid, "i").unwrap().name, "i");
        assert_eq!(index.port(&p, sid, "ghost"), None);
        let top = p.implementation_id("top_i").unwrap();
        assert_eq!(index.streamlet_of_impl(top), Some(sid));
        assert_eq!(index.streamlet_of_impl_name(&p, "leaf_i"), Some(sid));
        assert_eq!(index.streamlet_of_impl_name(&p, "ghost"), None);
        assert_eq!(index.instance(&p, top, "b").unwrap().impl_name, "leaf_i");
        assert_eq!(index.instance_position(top, "a"), Some(0));
        assert_eq!(index.instance_position(top, "zzz"), None);
    }

    #[test]
    fn unresolved_impl_streamlet_is_none() {
        let mut p = Project::new("t");
        p.add_implementation(Implementation::normal("ghost_i", "missing_s"))
            .unwrap();
        let index = ProjectIndex::build(&p);
        let id = p.implementation_id("ghost_i").unwrap();
        assert_eq!(index.streamlet_of_impl(id), None);
    }

    #[test]
    fn incremental_registration_tracks_appends() {
        let mut p = project();
        let mut index = ProjectIndex::build(&p);
        let sid = p
            .add_streamlet(Streamlet::new("helper_s").with_port(Port::new(
                "i",
                PortDirection::In,
                stream8(),
            )))
            .unwrap();
        index.register_streamlet(&p, sid);
        let iid = p
            .add_implementation(Implementation::external("helper_i", "helper_s"))
            .unwrap();
        index.register_implementation(&p, iid);
        assert!(index.covers(&p));
        assert_eq!(index.streamlet_of_impl(iid), Some(sid));
        assert_eq!(index.port(&p, sid, "i").unwrap().name, "i");

        // Splicing an instance into an existing implementation and
        // refreshing keeps lookups current.
        let top = p.implementation_id("top_i").unwrap();
        p.implementation_by_id_mut(top)
            .add_instance(Instance::new("h", "helper_i"));
        assert_eq!(index.instance_position(top, "h"), None);
        index.refresh_implementation(&p, top);
        assert_eq!(index.instance_position(top, "h"), Some(2));
    }

    #[test]
    fn duplicate_names_resolve_to_first_declaration() {
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("s")
                .with_port(Port::new("x", PortDirection::In, stream8()))
                .with_port(Port::new("x", PortDirection::Out, stream8())),
        )
        .unwrap();
        let index = ProjectIndex::build(&p);
        let sid = p.streamlet_id("s").unwrap();
        assert_eq!(
            index.port(&p, sid, "x").unwrap().direction,
            PortDirection::In
        );
    }
}
