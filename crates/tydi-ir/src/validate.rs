//! Design-rule checks on Tydi-IR projects.
//!
//! These re-verify, at the IR level, the rules the Tydi-lang frontend
//! already enforces (paper §III): connected ports carry identical
//! logical types (strict by-declaration equality unless relaxed),
//! protocol complexities are compatible, directions are legal, clock
//! domains match, and every port is used exactly once.
//!
//! The checks run over the shared [`ProjectIndex`]: streamlet and
//! implementation references are resolved to
//! [`StreamletId`]/[`ImplId`] array indices and every port map gets a
//! name→port hash index, so no check walks a definition list
//! linearly. The pipeline builds that index once right after
//! elaboration and passes it in via [`validate_project_with`];
//! [`validate_project`] builds a fresh one for standalone callers.
//! Implementations are independent of each other, which lets the
//! per-implementation checks fan out across threads (rayon;
//! sequential fallback on single-core machines) while keeping the
//! error order deterministic.

use crate::component::{Connection, EndpointRef, ImplKind, Implementation, PortDirection};
use crate::error::IrError;
use crate::index::ProjectIndex;
use crate::intern::{ImplId, StreamletId};
use crate::project::Project;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use tydi_spec::{Complexity, LogicalType};

/// Runs every check and collects all violations, building a fresh
/// [`ProjectIndex`] for this run.
pub fn validate_project(project: &Project) -> Vec<IrError> {
    validate_project_with(project, &ProjectIndex::build(project))
}

/// Runs every check over an already-built [`ProjectIndex`] (the
/// pipeline's shared one) and collects all violations.
///
/// # Panics
/// Panics when the index does not cover every definition of the
/// project (a stale index would silently mis-resolve references).
pub fn validate_project_with(project: &Project, index: &ProjectIndex) -> Vec<IrError> {
    assert!(
        index.covers(project),
        "stale ProjectIndex: register definitions appended after build"
    );
    let mut errors = Vec::new();
    for streamlet in project.streamlets() {
        validate_streamlet(streamlet, &mut errors);
    }
    // Implementations are checked independently; fan out and splice
    // the per-implementation errors back in definition order.
    let impls: Vec<(ImplId, &Implementation)> = project.implementations_with_ids().collect();
    let per_impl: Vec<Vec<IrError>> = impls
        .par_iter()
        .map(|&(impl_id, implementation)| {
            let _span =
                tydi_obs::trace::span_named("tydi-ir", || format!("drc:{}", implementation.name));
            let mut errs = Vec::new();
            validate_implementation(project, index, impl_id, implementation, &mut errs);
            errs
        })
        .collect();
    for errs in per_impl {
        errors.extend(errs);
    }
    errors
}

fn validate_streamlet(streamlet: &crate::component::Streamlet, errors: &mut Vec<IrError>) {
    let mut seen: HashMap<&str, ()> = HashMap::new();
    for port in &streamlet.ports {
        if seen.insert(&port.name, ()).is_some() {
            errors.push(IrError::DuplicateDefinition {
                kind: "port",
                name: format!("{}.{}", streamlet.name, port.name),
            });
        }
        if !matches!(*port.ty, LogicalType::Stream { .. }) {
            errors.push(IrError::PortNotStream {
                streamlet: streamlet.name.clone(),
                port: port.name.clone(),
            });
        }
        if let Err(e) = port.ty.validate() {
            errors.push(e.into());
        }
    }
}

/// Per-implementation context: the shared index plus this
/// implementation's resolved ids, so endpoint resolution never scans.
struct ImplCtx<'a> {
    project: &'a Project,
    index: &'a ProjectIndex,
    implementation: &'a Implementation,
    /// Id of this implementation (keys the index's instance table).
    impl_id: ImplId,
    /// Id of the streamlet this implementation realizes.
    own: StreamletId,
}

/// The resolved view of one connection endpoint.
struct ResolvedEndpoint<'a> {
    port: &'a crate::component::Port,
    /// True when this endpoint produces data *inside* the
    /// implementation body (own `in` ports and instance `out` ports).
    acts_as_source: bool,
}

fn resolve_endpoint<'a>(
    ctx: &ImplCtx<'a>,
    endpoint: &EndpointRef,
    errors: &mut Vec<IrError>,
) -> Option<ResolvedEndpoint<'a>> {
    match &endpoint.instance {
        None => match ctx.index.port(ctx.project, ctx.own, &endpoint.port) {
            Some(port) => Some(ResolvedEndpoint {
                port,
                // An `in` port of the enclosing streamlet supplies
                // data to the body.
                acts_as_source: port.direction == PortDirection::In,
            }),
            None => {
                errors.push(IrError::Unresolved {
                    kind: "port",
                    name: endpoint.to_string(),
                    context: format!("implementation `{}`", ctx.implementation.name),
                });
                None
            }
        },
        Some(instance_name) => {
            let Some(instance) = ctx.index.instance(ctx.project, ctx.impl_id, instance_name) else {
                errors.push(IrError::Unresolved {
                    kind: "instance",
                    name: instance_name.clone(),
                    context: format!("implementation `{}`", ctx.implementation.name),
                });
                return None;
            };
            // Missing impl reported separately by instance checks.
            let streamlet = ctx
                .index
                .streamlet_of_impl_name(ctx.project, &instance.impl_name)?;
            match ctx.index.port(ctx.project, streamlet, &endpoint.port) {
                Some(port) => Some(ResolvedEndpoint {
                    port,
                    // An instance's `out` port supplies data to the body.
                    acts_as_source: port.direction == PortDirection::Out,
                }),
                None => {
                    errors.push(IrError::Unresolved {
                        kind: "port",
                        name: endpoint.to_string(),
                        context: format!("implementation `{}`", ctx.implementation.name),
                    });
                    None
                }
            }
        }
    }
}

fn top_complexity(ty: &LogicalType) -> Option<Complexity> {
    match ty {
        LogicalType::Stream { params, .. } => Some(params.complexity),
        _ => None,
    }
}

fn validate_implementation(
    project: &Project,
    index: &ProjectIndex,
    impl_id: ImplId,
    implementation: &Implementation,
    errors: &mut Vec<IrError>,
) {
    let Some(own) = index.streamlet_of_impl(impl_id) else {
        errors.push(IrError::Unresolved {
            kind: "streamlet",
            name: implementation.streamlet.clone(),
            context: format!("implementation `{}`", implementation.name),
        });
        return;
    };
    let ImplKind::Normal {
        instances,
        connections,
    } = &implementation.kind
    else {
        return;
    };

    // Instance names unique, implementation references resolvable;
    // the shared index then backs every endpoint resolution (first
    // declaration wins on duplicate names).
    let ctx = ImplCtx {
        project,
        index,
        implementation,
        impl_id,
        own,
    };
    for (position, instance) in instances.iter().enumerate() {
        if index.instance_position(impl_id, &instance.name) != Some(position) {
            errors.push(IrError::DuplicateDefinition {
                kind: "instance",
                name: format!("{}.{}", implementation.name, instance.name),
            });
        }
        if project.implementation_id(&instance.impl_name).is_none() {
            errors.push(IrError::Unresolved {
                kind: "implementation",
                name: instance.impl_name.clone(),
                context: format!(
                    "instance `{}` of implementation `{}`",
                    instance.name, implementation.name
                ),
            });
        }
    }

    let relax_all = implementation.attributes.contains_key("NoStrictType");
    let mut usage: HashMap<&EndpointRef, usize> = HashMap::with_capacity(connections.len() * 2);

    for connection in connections {
        validate_connection(&ctx, connection, relax_all, errors);
        *usage.entry(&connection.source).or_insert(0) += 1;
        *usage.entry(&connection.sink).or_insert(0) += 1;
    }

    // Port usage rule: every own port and every instance port must be
    // used exactly once (paper DRC rule 2). Sugaring must already have
    // inserted duplicators/voiders before this check.
    if !implementation.attributes.contains_key("NoPortUsageCheck") {
        let check = |endpoint: EndpointRef, errors: &mut Vec<IrError>| {
            let uses = usage.get(&endpoint).copied().unwrap_or(0);
            if uses != 1 {
                errors.push(IrError::PortUsage {
                    implementation: implementation.name.clone(),
                    endpoint: endpoint.to_string(),
                    uses,
                });
            }
        };
        for port in &project.streamlet_by_id(own).ports {
            check(EndpointRef::own(port.name.clone()), errors);
        }
        for instance in instances {
            // Resolve through the first-declared instance of this
            // name, mirroring endpoint resolution on duplicates.
            let Some(canonical) = index.instance(project, impl_id, &instance.name) else {
                continue;
            };
            let Some(streamlet) = index.streamlet_of_impl_name(project, &canonical.impl_name)
            else {
                continue;
            };
            for port in &project.streamlet_by_id(streamlet).ports {
                check(
                    EndpointRef::instance(instance.name.clone(), port.name.clone()),
                    errors,
                );
            }
        }
    }
}

fn validate_connection(
    ctx: &ImplCtx<'_>,
    connection: &Connection,
    relax_all: bool,
    errors: &mut Vec<IrError>,
) {
    let implementation = ctx.implementation;
    let before = errors.len();
    let source = resolve_endpoint(ctx, &connection.source, errors);
    let sink = resolve_endpoint(ctx, &connection.sink, errors);
    if errors.len() > before {
        return;
    }
    let (Some(source), Some(sink)) = (source, sink) else {
        return;
    };

    if !source.acts_as_source || sink.acts_as_source {
        let message = match (source.acts_as_source, sink.acts_as_source) {
            (false, true) => "connection is reversed: swap source and sink".to_string(),
            (false, false) => format!(
                "`{}` cannot drive data (it is a sink inside this body)",
                connection.source
            ),
            _ => format!(
                "`{}` cannot receive data (it is a source inside this body)",
                connection.sink
            ),
        };
        errors.push(IrError::DirectionError {
            implementation: implementation.name.clone(),
            connection: connection.describe(),
            message,
        });
        return;
    }

    // Rule 1: identical logical types. Ports built by the elaborator
    // share the canonical `Arc` of their hash-consed type, so the
    // common (equal) case is a pointer compare; the deep structural
    // compare only runs for ports from other producers (e.g. projects
    // re-parsed from the IR text format) or on the failure path.
    if !Arc::ptr_eq(&source.port.ty, &sink.port.ty) && source.port.ty != sink.port.ty {
        errors.push(IrError::TypeMismatch {
            implementation: implementation.name.clone(),
            connection: connection.describe(),
            source_type: source.port.ty.to_string(),
            sink_type: sink.port.ty.to_string(),
        });
        return;
    }

    // Strict (by-declaration) equality, unless relaxed.
    if !connection.relax_type_check && !relax_all {
        if let (Some(src_origin), Some(dst_origin)) =
            (&source.port.type_origin, &sink.port.type_origin)
        {
            if src_origin != dst_origin {
                errors.push(IrError::StrictTypeMismatch {
                    implementation: implementation.name.clone(),
                    connection: connection.describe(),
                    source_origin: src_origin.clone(),
                    sink_origin: dst_origin.clone(),
                });
            }
        }
    }

    // Compatible protocol complexities.
    if let (Some(sc), Some(kc)) = (
        top_complexity(&source.port.ty),
        top_complexity(&sink.port.ty),
    ) {
        if !sc.compatible_with_sink(kc) {
            errors.push(IrError::ComplexityMismatch {
                implementation: implementation.name.clone(),
                connection: connection.describe(),
                source_complexity: sc.level(),
                sink_complexity: kc.level(),
            });
        }
    }

    // Same clock domain.
    if source.port.clock != sink.port.clock {
        errors.push(IrError::ClockDomainMismatch {
            implementation: implementation.name.clone(),
            connection: connection.describe(),
            source_domain: source.port.clock.name().to_string(),
            sink_domain: sink.port.clock.name().to_string(),
        });
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Instance, Port, Streamlet};
    use tydi_spec::{ClockDomain, StreamParams};

    fn stream(width: u32) -> LogicalType {
        LogicalType::stream(LogicalType::Bit(width), StreamParams::new())
    }

    fn stream_c(width: u32, c: u8) -> LogicalType {
        LogicalType::stream(
            LogicalType::Bit(width),
            StreamParams::new().with_complexity(Complexity::new(c).unwrap()),
        )
    }

    /// A pass-through streamlet and an external leaf impl.
    fn base_project() -> Project {
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream(8)))
                .with_port(Port::new("o", PortDirection::Out, stream(8))),
        )
        .unwrap();
        p.add_implementation(Implementation::external("leaf_i", "pass_s"))
            .unwrap();
        p
    }

    fn wire_through(p: &mut Project) {
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(Instance::new("l", "leaf_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("l", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("l", "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
    }

    #[test]
    fn valid_project_passes() {
        let mut p = base_project();
        wire_through(&mut p);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn non_stream_port_rejected() {
        let mut p = Project::new("t");
        p.add_streamlet(Streamlet::new("bad_s").with_port(Port::new(
            "x",
            PortDirection::In,
            LogicalType::Bit(8),
        )))
        .unwrap();
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, IrError::PortNotStream { .. })));
    }

    #[test]
    fn type_mismatch_detected() {
        let mut p = base_project();
        p.add_streamlet(
            Streamlet::new("wide_s")
                .with_port(Port::new("i", PortDirection::In, stream(16)))
                .with_port(Port::new("o", PortDirection::Out, stream(16))),
        )
        .unwrap();
        p.add_implementation(Implementation::external("wide_i", "wide_s"))
            .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.attributes
            .insert("NoPortUsageCheck".into(), String::new());
        top.add_instance(Instance::new("w", "wide_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("w", "i"),
        ));
        p.add_implementation(top).unwrap();
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, IrError::TypeMismatch { .. })));
    }

    #[test]
    fn strict_type_origin_mismatch_detected_and_relaxable() {
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("s")
                .with_port(Port::new("i", PortDirection::In, stream(8)).with_origin("pack.TypeA"))
                .with_port(Port::new("o", PortDirection::Out, stream(8)).with_origin("pack.TypeB")),
        )
        .unwrap();
        let mut top = Implementation::normal("top_i", "s");
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, IrError::StrictTypeMismatch { .. })));

        // Same design with a relaxed connection is clean.
        let mut p2 = Project::new("t");
        p2.add_streamlet(
            Streamlet::new("s")
                .with_port(Port::new("i", PortDirection::In, stream(8)).with_origin("pack.TypeA"))
                .with_port(Port::new("o", PortDirection::Out, stream(8)).with_origin("pack.TypeB")),
        )
        .unwrap();
        let mut top2 = Implementation::normal("top_i", "s");
        top2.add_connection(
            Connection::new(EndpointRef::own("i"), EndpointRef::own("o")).relaxed(),
        );
        p2.add_implementation(top2).unwrap();
        assert_eq!(p2.validate(), Ok(()));
    }

    #[test]
    fn complexity_incompatibility_detected() {
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("s")
                .with_port(Port::new("i", PortDirection::In, stream_c(8, 7)))
                .with_port(Port::new("o", PortDirection::Out, stream_c(8, 7))),
        )
        .unwrap();
        p.add_streamlet(
            Streamlet::new("lo_s")
                .with_port(Port::new("i", PortDirection::In, stream_c(8, 2)))
                .with_port(Port::new("o", PortDirection::Out, stream_c(8, 2))),
        )
        .unwrap();
        p.add_implementation(Implementation::external("lo_i", "lo_s"))
            .unwrap();
        let mut top = Implementation::normal("top_i", "s");
        top.attributes
            .insert("NoPortUsageCheck".into(), String::new());
        top.add_instance(Instance::new("l", "lo_i"));
        // C=7 source into C=2 sink: illegal, but types also differ, so
        // use identical types with different complexity via sink port.
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("l", "i"),
        ));
        p.add_implementation(top).unwrap();
        let errs = p.validate().unwrap_err();
        // Types differ (complexity is part of the type), so expect a
        // type mismatch; the dedicated complexity check fires when the
        // frontend relaxes types but keeps complexity metadata.
        assert!(errs
            .iter()
            .any(|e| matches!(e, IrError::TypeMismatch { .. })));
    }

    #[test]
    fn clock_domain_mismatch_detected() {
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("s")
                .with_port(Port::new("i", PortDirection::In, stream(8)))
                .with_port(
                    Port::new("o", PortDirection::Out, stream(8))
                        .with_clock(ClockDomain::new("mem")),
                ),
        )
        .unwrap();
        let mut top = Implementation::normal("top_i", "s");
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, IrError::ClockDomainMismatch { .. })));
    }

    #[test]
    fn reversed_connection_detected() {
        let mut p = base_project();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(Instance::new("l", "leaf_i"));
        // Reversed: instance input as source, own input as sink.
        top.add_connection(Connection::new(
            EndpointRef::instance("l", "i"),
            EndpointRef::own("i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("l", "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, IrError::DirectionError { .. })));
    }

    #[test]
    fn unused_port_detected() {
        let mut p = base_project();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(Instance::new("l", "leaf_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("l", "i"),
        ));
        // l.o and own o never used.
        p.add_implementation(top).unwrap();
        let errs = p.validate().unwrap_err();
        let usage_errors: Vec<_> = errs
            .iter()
            .filter(|e| matches!(e, IrError::PortUsage { .. }))
            .collect();
        assert_eq!(usage_errors.len(), 2);
    }

    #[test]
    fn double_use_detected() {
        let mut p = base_project();
        p.add_streamlet(
            Streamlet::new("two_s")
                .with_port(Port::new("i", PortDirection::In, stream(8)))
                .with_port(Port::new("o1", PortDirection::Out, stream(8)))
                .with_port(Port::new("o2", PortDirection::Out, stream(8))),
        )
        .unwrap();
        let mut top = Implementation::normal("fan_i", "two_s");
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o1"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o2"),
        ));
        p.add_implementation(top).unwrap();
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, IrError::PortUsage { uses: 2, .. })));
    }

    #[test]
    fn unresolved_references_detected() {
        let mut p = Project::new("t");
        p.add_implementation(Implementation::normal("i", "ghost_s"))
            .unwrap();
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            IrError::Unresolved {
                kind: "streamlet",
                ..
            }
        )));

        let mut p2 = base_project();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.attributes
            .insert("NoPortUsageCheck".into(), String::new());
        top.add_instance(Instance::new("g", "ghost_i"));
        p2.add_implementation(top).unwrap();
        let errs = p2.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            IrError::Unresolved {
                kind: "implementation",
                ..
            }
        )));
    }
}
