//! IR-level errors: structural problems and design-rule violations.

use std::fmt;
use tydi_spec::SpecError;

/// Errors produced while building, validating or parsing Tydi-IR.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// An entity name was defined twice in the same project.
    DuplicateDefinition {
        /// What was duplicated ("streamlet", "implementation", ...).
        kind: &'static str,
        /// The clashing name.
        name: String,
    },
    /// A reference to an undefined streamlet/implementation/port.
    Unresolved {
        /// What kind of entity was referenced.
        kind: &'static str,
        /// The missing name.
        name: String,
        /// Where the reference occurred.
        context: String,
    },
    /// A port type that is not a stream (every Tydi-IR port must bind a
    /// stream type, paper Table I).
    PortNotStream {
        /// The declaring streamlet.
        streamlet: String,
        /// The offending port.
        port: String,
    },
    /// An underlying logical-type error.
    Spec(SpecError),
    /// Connection design-rule violation: logical types differ.
    TypeMismatch {
        /// The implementation containing the connection.
        implementation: String,
        /// The connection, as `src => sink`.
        connection: String,
        /// Canonical text of the source port type.
        source_type: String,
        /// Canonical text of the sink port type.
        sink_type: String,
    },
    /// Connection design-rule violation: strict (by-declaration) type
    /// equality failed even though the structures match.
    StrictTypeMismatch {
        /// The implementation containing the connection.
        implementation: String,
        /// The connection, as `src => sink`.
        connection: String,
        /// Declaration the source type came from.
        source_origin: String,
        /// Declaration the sink type came from.
        sink_origin: String,
    },
    /// Connection design-rule violation: protocol complexities are
    /// incompatible (source must not exceed sink).
    ComplexityMismatch {
        /// The implementation containing the connection.
        implementation: String,
        /// The connection, as `src => sink`.
        connection: String,
        /// Source protocol complexity level.
        source_complexity: u8,
        /// Sink protocol complexity level.
        sink_complexity: u8,
    },
    /// Connection design-rule violation: clock domains differ.
    ClockDomainMismatch {
        /// The implementation containing the connection.
        implementation: String,
        /// The connection, as `src => sink`.
        connection: String,
        /// Source clock domain name.
        source_domain: String,
        /// Sink clock domain name.
        sink_domain: String,
    },
    /// Connection endpoints have illegal directions (e.g. two sources).
    DirectionError {
        /// The implementation containing the connection.
        implementation: String,
        /// The connection, as `src => sink`.
        connection: String,
        /// What is wrong with the directions.
        message: String,
    },
    /// A port was used more or fewer times than exactly once
    /// (paper DRC rule 2).
    PortUsage {
        /// The implementation violating the rule.
        implementation: String,
        /// The under- or over-used endpoint.
        endpoint: String,
        /// How many times the endpoint was used.
        uses: usize,
    },
    /// Text-format parse error.
    Parse {
        /// 1-based line in the IR text.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Binary-format (`.tirb`) decode error.
    Binary {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DuplicateDefinition { kind, name } => {
                write!(f, "duplicate {kind} definition `{name}`")
            }
            IrError::Unresolved { kind, name, context } => {
                write!(f, "unresolved {kind} `{name}` referenced from {context}")
            }
            IrError::PortNotStream { streamlet, port } => write!(
                f,
                "port `{port}` of streamlet `{streamlet}` must bind a Stream type"
            ),
            IrError::Spec(e) => write!(f, "{e}"),
            IrError::TypeMismatch {
                implementation,
                connection,
                source_type,
                sink_type,
            } => write!(
                f,
                "type mismatch in `{implementation}` on `{connection}`: source is `{source_type}` but sink is `{sink_type}`"
            ),
            IrError::StrictTypeMismatch {
                implementation,
                connection,
                source_origin,
                sink_origin,
            } => write!(
                f,
                "strict type equality failed in `{implementation}` on `{connection}`: source declared as `{source_origin}` but sink declared as `{sink_origin}` (add @NoStrictType to compare structure instead)"
            ),
            IrError::ComplexityMismatch {
                implementation,
                connection,
                source_complexity,
                sink_complexity,
            } => write!(
                f,
                "complexity mismatch in `{implementation}` on `{connection}`: source C={source_complexity} may not drive sink C={sink_complexity}"
            ),
            IrError::ClockDomainMismatch {
                implementation,
                connection,
                source_domain,
                sink_domain,
            } => write!(
                f,
                "clock domain mismatch in `{implementation}` on `{connection}`: `!{source_domain}` vs `!{sink_domain}`"
            ),
            IrError::DirectionError {
                implementation,
                connection,
                message,
            } => write!(f, "direction error in `{implementation}` on `{connection}`: {message}"),
            IrError::PortUsage {
                implementation,
                endpoint,
                uses,
            } => write!(
                f,
                "port usage violation in `{implementation}`: `{endpoint}` is used {uses} times but every port must be used exactly once"
            ),
            IrError::Parse { line, message } => write!(f, "IR parse error at line {line}: {message}"),
            IrError::Binary { message } => write!(f, "binary IR decode error: {message}"),
        }
    }
}

impl std::error::Error for IrError {}

impl From<SpecError> for IrError {
    fn from(e: SpecError) -> Self {
        IrError::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_facts() {
        let e = IrError::PortUsage {
            implementation: "top_i".into(),
            endpoint: "a.out".into(),
            uses: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("top_i") && msg.contains("a.out") && msg.contains('2'));

        let e = IrError::ComplexityMismatch {
            implementation: "x".into(),
            connection: "c".into(),
            source_complexity: 7,
            sink_complexity: 2,
        };
        assert!(e.to_string().contains("C=7"));
    }

    #[test]
    fn spec_errors_convert() {
        let e: IrError = SpecError::ZeroWidthBit.into();
        assert!(matches!(e, IrError::Spec(_)));
    }
}
