//! The warm compiler daemon: a unix-socket server holding one
//! resident [`ArtifactCache`] and serving newline-delimited JSON jobs
//! to concurrent clients.
//!
//! Each accepted connection gets its own worker thread; a connection
//! carries any number of requests, answered in order. Compile jobs
//! serialize on the cache mutex (the cache is the shared warm state —
//! letting two compiles interleave on it would trade determinism for
//! nothing, since elaboration itself already fans out on the rayon
//! pool), while `status` requests only touch cheap atomics plus a
//! short cache lock for the entry counts.
//!
//! Lifecycle: the socket lives under the cache directory
//! ([`crate::socket_path`]), so one daemon serves one cache. On
//! `shutdown` the daemon answers the request, persists the cache
//! (merge-on-save through the cross-process [`CacheLock`]), removes
//! its socket and pid files, and exits. A daemon killed without
//! `shutdown` leaves a stale socket behind; the next `serve` detects
//! it by failing to connect and rebinds.
//!
//! [`CacheLock`]: tydi_lang::CacheLock

use crate::execute;
use crate::protocol::{JobKind, JobRequest, JobResponse, StatusInfo};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tydi_lang::ArtifactCache;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The artifact cache directory the daemon owns (and the default
    /// home of its socket).
    pub cache_dir: PathBuf,
    /// Socket path override (tests bind in scratch directories).
    pub socket: Option<PathBuf>,
    /// Exit after serving this many compile jobs (testing hook).
    pub max_requests: Option<u64>,
}

impl ServeOptions {
    /// Options for a daemon owning `cache_dir`.
    pub fn new(cache_dir: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            cache_dir: cache_dir.into(),
            socket: None,
            max_requests: None,
        }
    }
}

/// Shared daemon state.
struct ServerState {
    cache: Mutex<ArtifactCache>,
    cache_dir: PathBuf,
    socket: PathBuf,
    started: Instant,
    /// Compile jobs served (status/shutdown excluded).
    requests: AtomicU64,
    /// Monotonic per-request metric-scope sequence (client-chosen ids
    /// may collide across connections; this cannot).
    sequence: AtomicU64,
}

/// Runs the daemon until a `shutdown` job arrives (this call does not
/// return then: the handler persists the cache and exits the
/// process), the `max_requests` testing hook trips, or accepting
/// fails.
pub fn serve(options: &ServeOptions) -> io::Result<()> {
    std::fs::create_dir_all(&options.cache_dir)?;
    let socket = options
        .socket
        .clone()
        .unwrap_or_else(|| crate::socket_path(&options.cache_dir));
    let listener = bind_socket(&socket)?;
    let _ = std::fs::write(
        options.cache_dir.join(crate::PID_FILE_NAME),
        format!("{}\n", std::process::id()),
    );
    let state = Arc::new(ServerState {
        cache: Mutex::new(ArtifactCache::load(&options.cache_dir)),
        cache_dir: options.cache_dir.clone(),
        socket: socket.clone(),
        started: Instant::now(),
        requests: AtomicU64::new(0),
        sequence: AtomicU64::new(0),
    });
    eprintln!(
        "tydic serve: listening on {} (pid {})",
        socket.display(),
        std::process::id()
    );
    for connection in listener.incoming() {
        let Ok(stream) = connection else { continue };
        let worker_state = Arc::clone(&state);
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &worker_state);
        });
        if let Some(limit) = options.max_requests {
            if state.requests.load(Ordering::SeqCst) >= limit {
                break;
            }
        }
    }
    cleanup(&state);
    Ok(())
}

/// Binds the listening socket, taking over a stale socket file left
/// by a daemon that died without `shutdown` (detected by a refused
/// connection). A live daemon on the socket is an error: two daemons
/// on one cache would fight over the warm state.
fn bind_socket(socket: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(socket) {
        Ok(listener) => Ok(listener),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(socket).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving {}", socket.display()),
                ));
            }
            std::fs::remove_file(socket)?;
            UnixListener::bind(socket)
        }
        Err(e) => Err(e),
    }
}

fn handle_connection(stream: UnixStream, state: &ServerState) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = match JobRequest::parse(&line) {
            Err(message) => (JobResponse::failure(0, 2, message), false),
            Ok(request) => dispatch(&request, state),
        };
        writeln!(writer, "{}", response.to_json())?;
        writer.flush()?;
        if shutdown {
            cleanup(state);
            // Exit from the worker thread: the acceptor is blocked in
            // `incoming()` and holds no state worth unwinding.
            std::process::exit(0);
        }
    }
}

/// Runs one request; the flag asks the caller to shut the daemon down
/// after the response is flushed.
fn dispatch(request: &JobRequest, state: &ServerState) -> (JobResponse, bool) {
    match request.kind {
        JobKind::Status => {
            let (parse_entries, elab_entries) = {
                let cache = lock(&state.cache);
                (cache.parse_entries() as u64, cache.elab_entries() as u64)
            };
            let mut response = JobResponse::new(request.id);
            response.status = Some(StatusInfo {
                pid: std::process::id() as u64,
                uptime_ms: state.started.elapsed().as_secs_f64() * 1e3,
                requests: state.requests.load(Ordering::SeqCst),
                parse_entries,
                elab_entries,
            });
            (response, false)
        }
        JobKind::Shutdown => (JobResponse::new(request.id), true),
        JobKind::Check | JobKind::Build | JobKind::Analyze => {
            let sequence = state.sequence.fetch_add(1, Ordering::SeqCst);
            let scope = format!("req.{sequence}.");
            let mut cache = lock(&state.cache);
            let response = execute::run_job(request, &mut cache, &scope);
            // Persist after every job that changed the cache, so cold
            // `tydic` runs and other daemons see this daemon's work;
            // the dirty flag makes fully-warm jobs skip the disk.
            if cache.is_dirty() {
                if let Err(e) = cache.save(&state.cache_dir) {
                    eprintln!(
                        "warning: cannot persist cache to `{}`: {e}",
                        state.cache_dir.display()
                    );
                }
            }
            drop(cache);
            state.requests.fetch_add(1, Ordering::SeqCst);
            (response, false)
        }
    }
}

/// Persists the cache and removes the daemon's socket and pid files.
fn cleanup(state: &ServerState) {
    let mut cache = lock(&state.cache);
    if cache.is_dirty() {
        let _ = cache.save(&state.cache_dir);
    }
    drop(cache);
    let _ = std::fs::remove_file(&state.socket);
    let _ = std::fs::remove_file(state.cache_dir.join(crate::PID_FILE_NAME));
}

fn lock(cache: &Mutex<ArtifactCache>) -> std::sync::MutexGuard<'_, ArtifactCache> {
    match cache.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
