//! The warm compiler daemon: a unix-socket server holding one
//! resident [`ArtifactCache`] and serving newline-delimited JSON jobs
//! to concurrent clients.
//!
//! Each accepted connection gets its own worker thread; a connection
//! carries any number of requests, answered in order. Compile jobs
//! serialize on the cache mutex (the cache is the shared warm state —
//! letting two compiles interleave on it would trade determinism for
//! nothing, since elaboration itself already fans out on the rayon
//! pool), while `status` requests only touch cheap atomics plus a
//! short cache lock for the entry counts.
//!
//! Resilience: every compile job runs on its own thread under
//! [`std::panic::catch_unwind`], so a crashing compile answers
//! `internal_error` and the daemon keeps serving. A per-request
//! wall-clock timeout ([`ServeOptions::job_timeout`]) answers
//! `timeout` and abandons the job thread (it still releases the cache
//! and scrubs its metric scope when it eventually finishes). An
//! admission gate ([`ServeOptions::max_jobs`]) answers `busy` instead
//! of queueing unboundedly; clients retry with capped exponential
//! backoff. All of it is observable: the daemon publishes
//! `serve.jobs.*` counters through [`tydi_obs::metrics`], and the
//! `status` job renders them back to clients.
//!
//! Lifecycle: the socket lives under the cache directory
//! ([`crate::socket_path`]), so one daemon serves one cache. On
//! `shutdown` the daemon answers the request, persists the cache
//! (merge-on-save through the cross-process [`CacheLock`]), removes
//! its socket and pid files, and exits; [`ServeOptions::idle_timeout`]
//! does the same unprompted once the daemon has sat idle long enough.
//! A daemon killed without `shutdown` leaves a stale socket behind;
//! the next `serve` detects it by failing to connect and rebinds.
//!
//! [`CacheLock`]: tydi_lang::CacheLock

use crate::execute;
use crate::protocol::{JobKind, JobRequest, JobResponse, StatusInfo};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use tydi_lang::ArtifactCache;
use tydi_obs::metrics;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The artifact cache directory the daemon owns (and the default
    /// home of its socket).
    pub cache_dir: PathBuf,
    /// Socket path override (tests bind in scratch directories).
    pub socket: Option<PathBuf>,
    /// Exit after serving this many compile jobs (testing hook).
    pub max_requests: Option<u64>,
    /// Per-request wall-clock limit; a job over it answers `timeout`.
    pub job_timeout: Option<Duration>,
    /// Admission gate: with this many compile jobs in flight, new ones
    /// answer `busy` instead of queueing.
    pub max_jobs: Option<u64>,
    /// Exit (persisting the cache) after this long without a request.
    pub idle_timeout: Option<Duration>,
}

impl ServeOptions {
    /// Options for a daemon owning `cache_dir`.
    pub fn new(cache_dir: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            cache_dir: cache_dir.into(),
            socket: None,
            max_requests: None,
            job_timeout: None,
            max_jobs: None,
            idle_timeout: None,
        }
    }
}

/// Shared daemon state.
struct ServerState {
    cache: Mutex<ArtifactCache>,
    cache_dir: PathBuf,
    socket: PathBuf,
    started: Instant,
    /// Compile jobs served (status/shutdown excluded).
    requests: AtomicU64,
    /// Monotonic per-request metric-scope sequence (client-chosen ids
    /// may collide across connections; this cannot).
    sequence: AtomicU64,
    /// Compile jobs currently in flight (admission-gate slot count).
    active: AtomicU64,
    /// When the daemon last heard from a client (idle-shutdown clock).
    last_activity: Mutex<Instant>,
    job_timeout: Option<Duration>,
    max_jobs: Option<u64>,
    idle_timeout: Option<Duration>,
}

impl ServerState {
    /// Milliseconds until the idle shutdown fires, if configured.
    fn idle_deadline_ms(&self) -> Option<f64> {
        let limit = self.idle_timeout?;
        let idle = self
            .last_activity
            .lock()
            .map(|t| t.elapsed())
            .unwrap_or_default();
        Some(limit.saturating_sub(idle).as_secs_f64() * 1e3)
    }

    fn touch(&self) {
        if let Ok(mut last) = self.last_activity.lock() {
            *last = Instant::now();
        }
    }
}

/// Runs the daemon until a `shutdown` job arrives (this call does not
/// return then: the handler persists the cache and exits the
/// process), the idle timeout fires, the `max_requests` testing hook
/// trips, or accepting fails.
pub fn serve(options: &ServeOptions) -> io::Result<()> {
    std::fs::create_dir_all(&options.cache_dir)?;
    let socket = options
        .socket
        .clone()
        .unwrap_or_else(|| crate::socket_path(&options.cache_dir));
    let listener = bind_socket(&socket)?;
    // The pid file records `<pid> <comm>` so stale-holder checks can
    // tell a recycled pid from a live daemon (see `pid_file_is_live`).
    let _ = std::fs::write(
        options.cache_dir.join(crate::PID_FILE_NAME),
        format!("{} {}\n", std::process::id(), self_comm()),
    );
    let state = Arc::new(ServerState {
        cache: Mutex::new(ArtifactCache::load(&options.cache_dir)),
        cache_dir: options.cache_dir.clone(),
        socket: socket.clone(),
        started: Instant::now(),
        requests: AtomicU64::new(0),
        sequence: AtomicU64::new(0),
        active: AtomicU64::new(0),
        last_activity: Mutex::new(Instant::now()),
        job_timeout: options.job_timeout,
        max_jobs: options.max_jobs,
        idle_timeout: options.idle_timeout,
    });
    eprintln!(
        "tydic serve: listening on {} (pid {})",
        socket.display(),
        std::process::id()
    );
    if let Some(limit) = options.idle_timeout {
        spawn_idle_watchdog(Arc::clone(&state), limit);
    }
    for connection in listener.incoming() {
        let Ok(stream) = connection else { continue };
        let worker_state = Arc::clone(&state);
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &worker_state);
        });
        if let Some(limit) = options.max_requests {
            if state.requests.load(Ordering::SeqCst) >= limit {
                break;
            }
        }
    }
    cleanup(&state);
    Ok(())
}

/// Shuts the daemon down once it has been idle (no requests, no jobs
/// in flight) for `limit`. Goes through [`cleanup`], so the warm cache
/// is persisted on the way out — an idle-evicted daemon loses no work.
fn spawn_idle_watchdog(state: Arc<ServerState>, limit: Duration) {
    std::thread::spawn(move || loop {
        let idle = state
            .last_activity
            .lock()
            .map(|t| t.elapsed())
            .unwrap_or_default();
        if idle >= limit && state.active.load(Ordering::SeqCst) == 0 {
            eprintln!(
                "tydic serve: idle for {:.1}s, shutting down",
                idle.as_secs_f64()
            );
            cleanup(&state);
            std::process::exit(0);
        }
        let nap = limit
            .saturating_sub(idle)
            .clamp(Duration::from_millis(20), Duration::from_millis(200));
        std::thread::sleep(nap);
    });
}

/// Binds the listening socket, taking over a stale socket file left
/// by a daemon that died without `shutdown` (detected by a refused
/// connection, cross-checked against the pid file: a recorded holder
/// that no longer runs `tydic` — dead pid or recycled pid with a
/// different `/proc/<pid>/comm` — never blocks the takeover). A live
/// daemon on the socket is an error: two daemons on one cache would
/// fight over the warm state.
fn bind_socket(socket: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(socket) {
        Ok(listener) => Ok(listener),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            let holder_live = pid_file_is_live(socket);
            if UnixStream::connect(socket).is_ok() && holder_live != Some(false) {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving {}", socket.display()),
                ));
            }
            std::fs::remove_file(socket)?;
            UnixListener::bind(socket)
        }
        Err(e) => Err(e),
    }
}

/// Whether the pid file next to `socket` names a process that is both
/// alive and still a tydic daemon. `None` when there is nothing to
/// verify (no pid file, old single-field format with no procfs, or no
/// procfs at all) — the caller falls back to the connect probe alone.
fn pid_file_is_live(socket: &Path) -> Option<bool> {
    let pid_file = socket.parent()?.join(crate::PID_FILE_NAME);
    let text = std::fs::read_to_string(pid_file).ok()?;
    let mut fields = text.split_whitespace();
    let pid: u32 = fields.next()?.parse().ok()?;
    let recorded_comm = fields.next();
    let proc_dir = Path::new("/proc").join(pid.to_string());
    if !Path::new("/proc").is_dir() {
        return None;
    }
    if !proc_dir.exists() {
        return Some(false);
    }
    match (
        recorded_comm,
        std::fs::read_to_string(proc_dir.join("comm")),
    ) {
        // Comm mismatch: the pid was recycled by an unrelated process.
        (Some(recorded), Ok(current)) => Some(current.trim() == recorded),
        // Old-format pid file or unreadable comm: alive is all we know.
        _ => Some(true),
    }
}

/// This process's `comm` name (what `/proc/<pid>/comm` will report),
/// recorded in lock and pid files so staleness checks survive pid
/// recycling.
fn self_comm() -> String {
    std::fs::read_to_string("/proc/self/comm")
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "tydic".to_string())
}

fn handle_connection(stream: UnixStream, state: &Arc<ServerState>) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        state.touch();
        let (response, shutdown) = match JobRequest::parse(&line) {
            Err(message) => (JobResponse::failure(0, 2, message), false),
            Ok(request) => dispatch(&request, state),
        };
        state.touch();
        writeln!(writer, "{}", response.to_json())?;
        writer.flush()?;
        if shutdown {
            cleanup(state);
            // Exit from the worker thread: the acceptor is blocked in
            // `incoming()` and holds no state worth unwinding.
            std::process::exit(0);
        }
    }
}

/// Runs one request; the flag asks the caller to shut the daemon down
/// after the response is flushed.
fn dispatch(request: &JobRequest, state: &Arc<ServerState>) -> (JobResponse, bool) {
    match request.kind {
        JobKind::Status => {
            let (parse_entries, elab_entries) = {
                let cache = lock(&state.cache);
                (cache.parse_entries() as u64, cache.elab_entries() as u64)
            };
            // The resilience counters render from the tydi-obs
            // registry — the same numbers `tydi-obs` exports.
            let snapshot = metrics::snapshot();
            let mut response = JobResponse::new(request.id);
            response.status = Some(StatusInfo {
                pid: std::process::id() as u64,
                uptime_ms: state.started.elapsed().as_secs_f64() * 1e3,
                requests: state.requests.load(Ordering::SeqCst),
                parse_entries,
                elab_entries,
                jobs_active: snapshot
                    .counter("serve.jobs.active")
                    .unwrap_or_else(|| state.active.load(Ordering::SeqCst)),
                jobs_timed_out: snapshot.counter("serve.jobs.timed_out").unwrap_or(0),
                jobs_panicked: snapshot.counter("serve.jobs.panicked").unwrap_or(0),
                idle_deadline_ms: state.idle_deadline_ms(),
            });
            (response, false)
        }
        JobKind::Shutdown => (JobResponse::new(request.id), true),
        JobKind::Check | JobKind::Build | JobKind::Analyze => run_compile_job(request, state),
    }
}

/// Runs one compile job through the admission gate, on its own thread,
/// under panic isolation and the wall-clock timeout.
fn run_compile_job(request: &JobRequest, state: &Arc<ServerState>) -> (JobResponse, bool) {
    // Admission gate: claim an in-flight slot or answer `busy`.
    let admitted = match state.max_jobs {
        Some(max) => state
            .active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < max).then_some(n + 1)
            })
            .is_ok(),
        None => {
            state.active.fetch_add(1, Ordering::SeqCst);
            true
        }
    };
    if !admitted {
        metrics::counter_add("serve.jobs.busy", 1);
        let max = state.max_jobs.unwrap_or(0);
        return (
            JobResponse::resilience_failure(
                request.id,
                "busy",
                format!("daemon is serving its maximum of {max} concurrent job(s); retry"),
            ),
            false,
        );
    }
    metrics::counter_set("serve.jobs.active", state.active.load(Ordering::SeqCst));

    let sequence = state.sequence.fetch_add(1, Ordering::SeqCst);
    let scope = format!("req.{sequence}.");
    let (sender, receiver) = mpsc::channel();
    let job_state = Arc::clone(state);
    let job_request = request.clone();
    let job_scope = scope.clone();
    std::thread::spawn(move || {
        let outcome = {
            // Lock the cache on the job thread, but catch panics
            // *inside* the guard's scope: an unwinding compile then
            // drops the guard normally instead of poisoning the mutex.
            let mut cache = lock(&job_state.cache);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_one_job(&job_request, &mut cache, &job_scope)
            }));
            // Persist after every job that changed the cache, so cold
            // `tydic` runs and other daemons see this daemon's work;
            // the dirty flag makes fully-warm jobs skip the disk.
            if cache.is_dirty() {
                if let Err(e) = cache.save(&job_state.cache_dir) {
                    eprintln!(
                        "warning: cannot persist cache to `{}`: {e}",
                        job_state.cache_dir.display()
                    );
                }
            }
            outcome
        };
        if outcome.is_err() {
            // The panic unwound past `run_job`'s own scrub; clear the
            // request's metric namespace from here (this thread's
            // scope guard is gone, so the prefix resolves globally).
            metrics::clear_prefix(&job_scope);
        }
        job_state.active.fetch_sub(1, Ordering::SeqCst);
        metrics::counter_set("serve.jobs.active", job_state.active.load(Ordering::SeqCst));
        // The dispatcher may have timed out and gone away; that only
        // drops the result of an already-abandoned job.
        let _ = sender.send(outcome);
    });

    let outcome = match state.job_timeout {
        None => receiver
            .recv()
            .map_err(|_| mpsc::RecvTimeoutError::Disconnected),
        Some(limit) => receiver.recv_timeout(limit),
    };
    let response = match outcome {
        Ok(Ok(response)) => {
            state.requests.fetch_add(1, Ordering::SeqCst);
            metrics::counter_set("serve.jobs.served", state.requests.load(Ordering::SeqCst));
            response
        }
        Ok(Err(_panic)) => {
            metrics::counter_add("serve.jobs.panicked", 1);
            JobResponse::resilience_failure(
                request.id,
                "internal_error",
                "compile job panicked; the daemon isolated it and keeps serving",
            )
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            metrics::counter_add("serve.jobs.timed_out", 1);
            let limit = state.job_timeout.unwrap_or_default();
            JobResponse::resilience_failure(
                request.id,
                "timeout",
                format!(
                    "job exceeded the {:.1}s wall-clock limit",
                    limit.as_secs_f64()
                ),
            )
        }
        // The job thread died without reporting — only possible if the
        // send itself failed; account it like a panic.
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            metrics::counter_add("serve.jobs.panicked", 1);
            JobResponse::resilience_failure(
                request.id,
                "internal_error",
                "compile job vanished; the daemon keeps serving",
            )
        }
    };
    (response, false)
}

/// The job body run under panic isolation: the protocol's test hooks
/// (deterministic ways to provoke a slow or crashing compile), then
/// the real runner.
fn run_one_job(request: &JobRequest, cache: &mut ArtifactCache, scope: &str) -> JobResponse {
    if let Some(ms) = request.test_sleep_ms {
        std::thread::sleep(Duration::from_millis(ms));
    }
    if request.test_panic {
        panic!("test hook: job {} requested a panic", request.id);
    }
    execute::run_job(request, cache, scope)
}

/// Persists the cache and removes the daemon's socket and pid files.
fn cleanup(state: &ServerState) {
    let mut cache = lock(&state.cache);
    if cache.is_dirty() {
        let _ = cache.save(&state.cache_dir);
    }
    drop(cache);
    let _ = std::fs::remove_file(&state.socket);
    let _ = std::fs::remove_file(state.cache_dir.join(crate::PID_FILE_NAME));
}

fn lock(cache: &Mutex<ArtifactCache>) -> std::sync::MutexGuard<'_, ArtifactCache> {
    match cache.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tydi-serve-pidfile-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn pid_file_liveness_detects_dead_and_recycled_holders() {
        if !Path::new("/proc").is_dir() {
            return; // no procfs to probe on this platform
        }
        let dir = temp_dir("live");
        let socket = dir.join(crate::SOCKET_NAME);
        let pid_file = dir.join(crate::PID_FILE_NAME);
        // No pid file: nothing to verify.
        assert_eq!(pid_file_is_live(&socket), None);
        // Our own pid with our own comm: live.
        std::fs::write(
            &pid_file,
            format!("{} {}\n", std::process::id(), self_comm()),
        )
        .unwrap();
        assert_eq!(pid_file_is_live(&socket), Some(true));
        // Our own pid recorded with a different comm: the pid was
        // recycled by an unrelated process — not a live daemon.
        std::fs::write(&pid_file, format!("{} not-a-tydic\n", std::process::id())).unwrap();
        assert_eq!(pid_file_is_live(&socket), Some(false));
        // A pid beyond pid_max: provably dead.
        std::fs::write(&pid_file, "4194304999 tydic\n").unwrap();
        assert_eq!(pid_file_is_live(&socket), Some(false));
        // Old single-field format with a live pid: alive is all we know.
        std::fs::write(&pid_file, format!("{}\n", std::process::id())).unwrap();
        assert_eq!(pid_file_is_live(&socket), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn self_comm_is_nonempty() {
        assert!(!self_comm().is_empty());
    }
}
