//! The daemon client used by `tydic --daemon`: connect to the socket
//! under the cache directory, spawning the daemon on demand, send one
//! job per call, and surface connection failures so the caller can
//! fall back to in-process compilation.

use crate::protocol::{JobRequest, JobResponse};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// When set (to anything), [`connect_or_spawn`] never starts a daemon —
/// tests use this to pin down the fallback path.
pub const NO_SPAWN_ENV: &str = "TYDIC_NO_SPAWN";

/// How long [`connect_or_spawn`] waits for a freshly spawned daemon's
/// socket to accept.
const SPAWN_DEADLINE: Duration = Duration::from_secs(5);

/// First retry delay after a `busy` answer.
const BACKOFF_INITIAL: Duration = Duration::from_millis(25);

/// Retry delays double up to this cap.
const BACKOFF_CAP: Duration = Duration::from_millis(400);

/// Total time [`Client::request_with_retry`] keeps retrying `busy`
/// answers before handing the last one to the caller.
const BACKOFF_TOTAL: Duration = Duration::from_secs(5);

/// The next delay in the capped exponential backoff schedule.
fn next_backoff(delay: Duration) -> Duration {
    (delay * 2).min(BACKOFF_CAP)
}

/// One connection to a daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to a daemon socket.
    pub fn connect(socket: &Path) -> io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(UnixStream::connect(socket)?),
        })
    }

    /// Sends one job and reads its response.
    pub fn request(&mut self, request: &JobRequest) -> io::Result<JobResponse> {
        let line = request.to_json();
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-request",
            ));
        }
        JobResponse::parse(&response)
            .map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))
    }

    /// Sends one job, retrying `busy` answers (the daemon's admission
    /// gate) with capped exponential backoff: 25ms doubling to 400ms,
    /// for up to 5s. Any other answer — success, failure, `timeout`,
    /// `internal_error` — returns immediately, as does the final
    /// `busy` once the retry budget is spent (the caller surfaces its
    /// exit code).
    pub fn request_with_retry(&mut self, request: &JobRequest) -> io::Result<JobResponse> {
        let deadline = Instant::now() + BACKOFF_TOTAL;
        let mut delay = BACKOFF_INITIAL;
        loop {
            let response = self.request(request)?;
            let now = Instant::now();
            if response.error_kind.as_deref() != Some("busy") || now >= deadline {
                return Ok(response);
            }
            std::thread::sleep(delay.min(deadline.saturating_duration_since(now)));
            delay = next_backoff(delay);
        }
    }
}

/// Connects to the daemon owning `cache_dir`, launching `daemon_exe
/// serve --cache-dir <dir>` first when nothing is listening (unless
/// [`NO_SPAWN_ENV`] is set). The spawned daemon is detached: it
/// outlives this client and keeps its cache warm for the next run.
pub fn connect_or_spawn(
    cache_dir: &Path,
    socket: Option<&Path>,
    daemon_exe: &Path,
) -> io::Result<Client> {
    let socket: PathBuf = socket
        .map(Path::to_path_buf)
        .unwrap_or_else(|| crate::socket_path(cache_dir));
    if let Ok(client) = Client::connect(&socket) {
        return Ok(client);
    }
    if std::env::var_os(NO_SPAWN_ENV).is_some() {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!(
                "no daemon on {} and {NO_SPAWN_ENV} forbids spawning one",
                socket.display()
            ),
        ));
    }
    let mut command = std::process::Command::new(daemon_exe);
    command
        .arg("serve")
        .arg("--cache-dir")
        .arg(cache_dir)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    command.spawn()?;
    // The daemon binds its socket before serving; poll until it does.
    let deadline = Instant::now() + SPAWN_DEADLINE;
    loop {
        match Client::connect(&socket) {
            Ok(client) => return Ok(client),
            Err(e) if Instant::now() >= deadline => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "daemon spawned but {} did not accept within {SPAWN_DEADLINE:?}: {e}",
                        socket.display()
                    ),
                ));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_the_cap() {
        let mut delay = BACKOFF_INITIAL;
        let mut schedule = Vec::new();
        for _ in 0..6 {
            schedule.push(delay.as_millis());
            delay = next_backoff(delay);
        }
        assert_eq!(schedule, vec![25, 50, 100, 200, 400, 400]);
    }
}
