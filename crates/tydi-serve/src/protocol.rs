//! The daemon's wire protocol: newline-delimited JSON jobs.
//!
//! One connection carries any number of requests; each request is a
//! single line holding one JSON object, answered by a single response
//! line. The codec is hand-rolled over [`tydi_obs::escape_json`] and
//! [`tydi_obs::json::parse`] (the workspace has no serde), and every
//! field is optional on the wire with a defined default, so old
//! clients keep working against newer daemons.

use tydi_obs::json::{self, Json};

/// Protocol revision; bumped on incompatible changes. The daemon
/// refuses requests from a different major revision.
pub const PROTOCOL_VERSION: u64 = 1;

/// What a job asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Parse + elaborate + DRC; diagnostics only.
    Check,
    /// Check, then emit IR/VHDL/SystemVerilog.
    Build,
    /// Check, then run the static throughput/latency analysis.
    Analyze,
    /// Report daemon health: pid, uptime, request count, cache size.
    Status,
    /// Persist the cache and exit the daemon.
    Shutdown,
}

impl JobKind {
    /// The wire spelling.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Check => "check",
            JobKind::Build => "build",
            JobKind::Analyze => "analyze",
            JobKind::Status => "status",
            JobKind::Shutdown => "shutdown",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(text: &str) -> Option<JobKind> {
        match text {
            "check" => Some(JobKind::Check),
            "build" => Some(JobKind::Build),
            "analyze" => Some(JobKind::Analyze),
            "status" => Some(JobKind::Status),
            "shutdown" => Some(JobKind::Shutdown),
            _ => None,
        }
    }
}

/// One job request line.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What to do.
    pub kind: JobKind,
    /// Input file paths, resolved relative to the daemon's working
    /// directory (clients send absolute paths).
    pub files: Vec<String>,
    /// Implicitly include the standard library (`--no-std` off).
    pub include_std: bool,
    /// Run the sugaring pass (`--no-sugar` off).
    pub sugaring: bool,
    /// `build`: output format (`ir`, `vhdl`, `verilog`).
    pub emit: String,
    /// `build`: write files into this directory instead of returning
    /// the concatenated text on stdout.
    pub out_dir: Option<String>,
    /// `analyze`: top-level implementation override.
    pub top: Option<String>,
    /// `analyze`: deny severity (`info`/`warning`/`error`).
    pub deny: Option<String>,
    /// `analyze`: emit the JSON report instead of text.
    pub json: bool,
    /// `analyze`: clock frequency in MHz.
    pub clock_mhz: Option<f64>,
    /// Testing hook: sleep this long inside the job before compiling,
    /// to pin down timeout and saturation behaviour determinstically.
    pub test_sleep_ms: Option<u64>,
    /// Testing hook: panic inside the job, to pin down the daemon's
    /// panic isolation.
    pub test_panic: bool,
}

impl JobRequest {
    /// A request of the given kind with CLI-default settings.
    pub fn new(kind: JobKind) -> JobRequest {
        JobRequest {
            id: 0,
            kind,
            files: Vec::new(),
            include_std: true,
            sugaring: true,
            emit: if kind == JobKind::Build {
                "vhdl".to_string()
            } else {
                "ir".to_string()
            },
            out_dir: None,
            top: None,
            deny: None,
            json: false,
            clock_mhz: None,
            test_sleep_ms: None,
            test_panic: false,
        }
    }

    /// Serializes the request as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        push_key(&mut out, "v");
        out.push_str(&PROTOCOL_VERSION.to_string());
        push_sep_key(&mut out, "id");
        out.push_str(&self.id.to_string());
        push_sep_key(&mut out, "kind");
        push_str(&mut out, self.kind.name());
        push_sep_key(&mut out, "files");
        out.push('[');
        for (index, file) in self.files.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            push_str(&mut out, file);
        }
        out.push(']');
        push_sep_key(&mut out, "include_std");
        out.push_str(if self.include_std { "true" } else { "false" });
        push_sep_key(&mut out, "sugaring");
        out.push_str(if self.sugaring { "true" } else { "false" });
        push_sep_key(&mut out, "emit");
        push_str(&mut out, &self.emit);
        push_sep_key(&mut out, "json");
        out.push_str(if self.json { "true" } else { "false" });
        if let Some(dir) = &self.out_dir {
            push_sep_key(&mut out, "out_dir");
            push_str(&mut out, dir);
        }
        if let Some(top) = &self.top {
            push_sep_key(&mut out, "top");
            push_str(&mut out, top);
        }
        if let Some(deny) = &self.deny {
            push_sep_key(&mut out, "deny");
            push_str(&mut out, deny);
        }
        if let Some(mhz) = self.clock_mhz {
            push_sep_key(&mut out, "clock_mhz");
            out.push_str(&format_number(mhz));
        }
        if let Some(ms) = self.test_sleep_ms {
            push_sep_key(&mut out, "test_sleep_ms");
            out.push_str(&ms.to_string());
        }
        if self.test_panic {
            push_sep_key(&mut out, "test_panic");
            out.push_str("true");
        }
        out.push('}');
        out
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<JobRequest, String> {
        let value = json::parse(line.trim())?;
        let version = get_u64(&value, "v").unwrap_or(PROTOCOL_VERSION);
        if version != PROTOCOL_VERSION {
            return Err(format!(
                "protocol version mismatch: daemon speaks {PROTOCOL_VERSION}, request is {version}"
            ));
        }
        let kind_name = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("request has no `kind`")?;
        let kind =
            JobKind::parse(kind_name).ok_or_else(|| format!("unknown job kind `{kind_name}`"))?;
        let mut request = JobRequest::new(kind);
        request.id = get_u64(&value, "id").unwrap_or(0);
        if let Some(files) = value.get("files").and_then(Json::as_array) {
            request.files = files
                .iter()
                .filter_map(|f| f.as_str().map(str::to_string))
                .collect();
        }
        if let Some(flag) = get_bool(&value, "include_std") {
            request.include_std = flag;
        }
        if let Some(flag) = get_bool(&value, "sugaring") {
            request.sugaring = flag;
        }
        if let Some(emit) = value.get("emit").and_then(Json::as_str) {
            request.emit = emit.to_string();
        }
        if let Some(flag) = get_bool(&value, "json") {
            request.json = flag;
        }
        request.out_dir = value
            .get("out_dir")
            .and_then(Json::as_str)
            .map(String::from);
        request.top = value.get("top").and_then(Json::as_str).map(String::from);
        request.deny = value.get("deny").and_then(Json::as_str).map(String::from);
        request.clock_mhz = value.get("clock_mhz").and_then(Json::as_f64);
        request.test_sleep_ms = get_u64(&value, "test_sleep_ms");
        request.test_panic = get_bool(&value, "test_panic").unwrap_or(false);
        Ok(request)
    }
}

/// One structured diagnostic in a response, alongside the rendered
/// text (LSP clients and tools consume these; terminals print the
/// pre-rendered `stderr`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosticInfo {
    /// `error`, `warning` or `note`.
    pub severity: String,
    /// Producing pipeline stage (`parse`, `drc`, ...).
    pub stage: String,
    /// The message, without location decoration.
    pub message: String,
    /// Source file name, empty when the diagnostic has no span.
    pub file: String,
    /// 1-based line, 0 when there is no span.
    pub line: u64,
    /// 1-based column, 0 when there is no span.
    pub col: u64,
}

/// Daemon health, attached to `status` responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatusInfo {
    /// Daemon process id.
    pub pid: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: f64,
    /// Compile jobs served so far.
    pub requests: u64,
    /// Resident parse artifacts.
    pub parse_entries: u64,
    /// Resident elaboration artifacts.
    pub elab_entries: u64,
    /// Compile jobs currently executing.
    pub jobs_active: u64,
    /// Jobs that exceeded the per-request wall-clock timeout.
    pub jobs_timed_out: u64,
    /// Jobs whose compile panicked (isolated; the daemon survived).
    pub jobs_panicked: u64,
    /// Milliseconds until the idle auto-shutdown fires, if configured.
    /// Measured from the last served request.
    pub idle_deadline_ms: Option<f64>,
}

/// One job response line.
#[derive(Debug, Clone)]
pub struct JobResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Whether the job succeeded (mirrors a zero exit code).
    pub ok: bool,
    /// The exit code an in-process `tydic` run would have returned.
    pub exit_code: i32,
    /// Exactly what the in-process run would have written to stdout.
    pub stdout: String,
    /// Exactly what the in-process run would have written to stderr.
    pub stderr: String,
    /// Paths of files written by the job (`--out-dir` modes).
    pub artifacts: Vec<String>,
    /// Structured diagnostics (see [`DiagnosticInfo`]).
    pub diagnostics: Vec<DiagnosticInfo>,
    /// True when the elaborate stage was served from the warm cache.
    pub warm: bool,
    /// Wall-clock time the daemon spent on the job, in milliseconds.
    pub elapsed_ms: f64,
    /// This request's metrics namespace as one flat JSON object text
    /// (scope prefix already stripped); `{}` when nothing was
    /// published.
    pub metrics_json: String,
    /// Machine-readable failure class for resilience errors: `busy`,
    /// `timeout` or `internal_error`. `None` for ordinary compile
    /// failures (diagnostics carry those).
    pub error_kind: Option<String>,
    /// Health payload, on `status` responses.
    pub status: Option<StatusInfo>,
}

impl JobResponse {
    /// An empty success response for the given request id.
    pub fn new(id: u64) -> JobResponse {
        JobResponse {
            id,
            ok: true,
            exit_code: 0,
            stdout: String::new(),
            stderr: String::new(),
            artifacts: Vec::new(),
            diagnostics: Vec::new(),
            warm: false,
            elapsed_ms: 0.0,
            metrics_json: "{}".to_string(),
            error_kind: None,
            status: None,
        }
    }

    /// A failure response: `message` lands on stderr (newline
    /// terminated, matching `tydic`'s error reporting).
    pub fn failure(id: u64, exit_code: i32, message: impl Into<String>) -> JobResponse {
        let mut message = message.into();
        if !message.ends_with('\n') {
            message.push('\n');
        }
        JobResponse {
            ok: false,
            exit_code,
            stderr: message,
            ..JobResponse::new(id)
        }
    }

    /// A resilience failure with a machine-readable class. The exit
    /// codes follow sysexits where one fits: `busy` is 75 (EX_TEMPFAIL
    /// — the client should retry), `internal_error` is 70
    /// (EX_SOFTWARE), and `timeout` borrows 124 from timeout(1).
    pub fn resilience_failure(id: u64, kind: &str, message: impl Into<String>) -> JobResponse {
        let exit_code = match kind {
            "busy" => 75,
            "timeout" => 124,
            _ => 70,
        };
        JobResponse {
            error_kind: Some(kind.to_string()),
            ..JobResponse::failure(id, exit_code, message)
        }
    }

    /// Serializes the response as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.stdout.len() + self.stderr.len());
        out.push('{');
        push_key(&mut out, "v");
        out.push_str(&PROTOCOL_VERSION.to_string());
        push_sep_key(&mut out, "id");
        out.push_str(&self.id.to_string());
        push_sep_key(&mut out, "ok");
        out.push_str(if self.ok { "true" } else { "false" });
        push_sep_key(&mut out, "exit_code");
        out.push_str(&self.exit_code.to_string());
        push_sep_key(&mut out, "stdout");
        push_str(&mut out, &self.stdout);
        push_sep_key(&mut out, "stderr");
        push_str(&mut out, &self.stderr);
        push_sep_key(&mut out, "artifacts");
        out.push('[');
        for (index, path) in self.artifacts.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            push_str(&mut out, path);
        }
        out.push(']');
        push_sep_key(&mut out, "diagnostics");
        out.push('[');
        for (index, d) in self.diagnostics.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push('{');
            push_key(&mut out, "severity");
            push_str(&mut out, &d.severity);
            push_sep_key(&mut out, "stage");
            push_str(&mut out, &d.stage);
            push_sep_key(&mut out, "message");
            push_str(&mut out, &d.message);
            push_sep_key(&mut out, "file");
            push_str(&mut out, &d.file);
            push_sep_key(&mut out, "line");
            out.push_str(&d.line.to_string());
            push_sep_key(&mut out, "col");
            out.push_str(&d.col.to_string());
            out.push('}');
        }
        out.push(']');
        push_sep_key(&mut out, "warm");
        out.push_str(if self.warm { "true" } else { "false" });
        push_sep_key(&mut out, "elapsed_ms");
        out.push_str(&format_number(self.elapsed_ms));
        push_sep_key(&mut out, "metrics");
        out.push_str(if self.metrics_json.trim().is_empty() {
            "{}"
        } else {
            self.metrics_json.trim()
        });
        if let Some(kind) = &self.error_kind {
            push_sep_key(&mut out, "error");
            push_str(&mut out, kind);
        }
        if let Some(status) = &self.status {
            push_sep_key(&mut out, "status");
            out.push('{');
            push_key(&mut out, "pid");
            out.push_str(&status.pid.to_string());
            push_sep_key(&mut out, "uptime_ms");
            out.push_str(&format_number(status.uptime_ms));
            push_sep_key(&mut out, "requests");
            out.push_str(&status.requests.to_string());
            push_sep_key(&mut out, "parse_entries");
            out.push_str(&status.parse_entries.to_string());
            push_sep_key(&mut out, "elab_entries");
            out.push_str(&status.elab_entries.to_string());
            push_sep_key(&mut out, "jobs_active");
            out.push_str(&status.jobs_active.to_string());
            push_sep_key(&mut out, "jobs_timed_out");
            out.push_str(&status.jobs_timed_out.to_string());
            push_sep_key(&mut out, "jobs_panicked");
            out.push_str(&status.jobs_panicked.to_string());
            if let Some(ms) = status.idle_deadline_ms {
                push_sep_key(&mut out, "idle_deadline_ms");
                out.push_str(&format_number(ms));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses one response line.
    pub fn parse(line: &str) -> Result<JobResponse, String> {
        let value = json::parse(line.trim())?;
        let mut response = JobResponse::new(get_u64(&value, "id").unwrap_or(0));
        response.ok = get_bool(&value, "ok").unwrap_or(false);
        response.exit_code = get_u64(&value, "exit_code").unwrap_or(1) as i32;
        response.stdout = value
            .get("stdout")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        response.stderr = value
            .get("stderr")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        if let Some(paths) = value.get("artifacts").and_then(Json::as_array) {
            response.artifacts = paths
                .iter()
                .filter_map(|p| p.as_str().map(str::to_string))
                .collect();
        }
        if let Some(diagnostics) = value.get("diagnostics").and_then(Json::as_array) {
            response.diagnostics = diagnostics
                .iter()
                .map(|d| DiagnosticInfo {
                    severity: get_str(d, "severity"),
                    stage: get_str(d, "stage"),
                    message: get_str(d, "message"),
                    file: get_str(d, "file"),
                    line: get_u64(d, "line").unwrap_or(0),
                    col: get_u64(d, "col").unwrap_or(0),
                })
                .collect();
        }
        response.warm = get_bool(&value, "warm").unwrap_or(false);
        response.elapsed_ms = value
            .get("elapsed_ms")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if let Some(metrics) = value.get("metrics") {
            response.metrics_json = json_to_string(metrics);
        }
        response.error_kind = value.get("error").and_then(Json::as_str).map(String::from);
        response.status = value.get("status").map(|s| StatusInfo {
            pid: get_u64(s, "pid").unwrap_or(0),
            uptime_ms: s.get("uptime_ms").and_then(Json::as_f64).unwrap_or(0.0),
            requests: get_u64(s, "requests").unwrap_or(0),
            parse_entries: get_u64(s, "parse_entries").unwrap_or(0),
            elab_entries: get_u64(s, "elab_entries").unwrap_or(0),
            jobs_active: get_u64(s, "jobs_active").unwrap_or(0),
            jobs_timed_out: get_u64(s, "jobs_timed_out").unwrap_or(0),
            jobs_panicked: get_u64(s, "jobs_panicked").unwrap_or(0),
            idle_deadline_ms: s.get("idle_deadline_ms").and_then(Json::as_f64),
        });
        Ok(response)
    }
}

/// Re-serializes a parsed [`Json`] value (used to round-trip the
/// embedded metrics object, and by the LSP server to echo request
/// ids that may be numbers or strings).
pub fn json_to_string(value: &Json) -> String {
    let mut out = String::new();
    write_json(value, &mut out);
    out
}

fn write_json(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(n) => out.push_str(&format_number(*n)),
        Json::String(s) => push_str(out, s),
        Json::Array(items) => {
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Json::Object(members) => {
            out.push('{');
            for (index, (key, member)) in members.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                push_str(out, key);
                out.push(':');
                write_json(member, out);
            }
            out.push('}');
        }
    }
}

/// A JSON number: integral values without the float suffix (so ids
/// round-trip as integers), non-finite as `null`.
pub(crate) fn format_number(value: f64) -> String {
    if !value.is_finite() {
        return "null".to_string();
    }
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

pub(crate) fn push_str(out: &mut String, text: &str) {
    out.push('"');
    tydi_obs::escape_json(text, out);
    out.push('"');
}

fn push_key(out: &mut String, key: &str) {
    push_str(out, key);
    out.push(':');
}

fn push_sep_key(out: &mut String, key: &str) {
    out.push(',');
    push_key(out, key);
}

fn get_u64(value: &Json, key: &str) -> Option<u64> {
    value.get(key).and_then(Json::as_f64).map(|n| n as u64)
}

fn get_bool(value: &Json, key: &str) -> Option<bool> {
    match value.get(key) {
        Some(Json::Bool(flag)) => Some(*flag),
        _ => None,
    }
}

fn get_str(value: &Json, key: &str) -> String {
    value
        .get(key)
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let mut request = JobRequest::new(JobKind::Analyze);
        request.id = 17;
        request.files = vec!["a.td".to_string(), "dir/b \"q\".td".to_string()];
        request.include_std = false;
        request.sugaring = false;
        request.emit = "verilog".to_string();
        request.out_dir = Some("out".to_string());
        request.top = Some("top_i".to_string());
        request.deny = Some("warning".to_string());
        request.json = true;
        request.clock_mhz = Some(250.5);
        let line = request.to_json();
        assert!(!line.contains('\n'), "one line: {line}");
        let back = JobRequest::parse(&line).unwrap();
        assert_eq!(back.id, 17);
        assert_eq!(back.kind, JobKind::Analyze);
        assert_eq!(back.files, request.files);
        assert!(!back.include_std);
        assert!(!back.sugaring);
        assert_eq!(back.emit, "verilog");
        assert_eq!(back.out_dir.as_deref(), Some("out"));
        assert_eq!(back.top.as_deref(), Some("top_i"));
        assert_eq!(back.deny.as_deref(), Some("warning"));
        assert!(back.json);
        assert_eq!(back.clock_mhz, Some(250.5));
    }

    #[test]
    fn request_defaults_match_the_cli() {
        let check = JobRequest::parse(r#"{"kind":"check"}"#).unwrap();
        assert_eq!(check.kind, JobKind::Check);
        assert!(check.include_std && check.sugaring);
        assert_eq!(check.emit, "ir");
        let build = JobRequest::new(JobKind::Build);
        assert_eq!(build.emit, "vhdl", "`build` defaults to VHDL like the CLI");
    }

    #[test]
    fn request_parse_rejects_garbage() {
        assert!(JobRequest::parse("not json").is_err());
        assert!(JobRequest::parse(r#"{"id":1}"#).is_err(), "kind required");
        assert!(JobRequest::parse(r#"{"kind":"dance"}"#).is_err());
        assert!(
            JobRequest::parse(r#"{"v":99,"kind":"check"}"#).is_err(),
            "future protocol refused"
        );
    }

    #[test]
    fn response_round_trips() {
        let mut response = JobResponse::new(3);
        response.ok = false;
        response.exit_code = 1;
        response.stdout = "line1\nline2\n".to_string();
        response.stderr = "error: \"x\" [parse]\n".to_string();
        response.artifacts = vec!["out/top.vhd".to_string()];
        response.diagnostics = vec![DiagnosticInfo {
            severity: "error".to_string(),
            stage: "parse".to_string(),
            message: "expected expression".to_string(),
            file: "a.td".to_string(),
            line: 3,
            col: 11,
        }];
        response.warm = true;
        response.elapsed_ms = 1.25;
        response.metrics_json = r#"{"timings.wall_ms": 1.2}"#.to_string();
        response.status = Some(StatusInfo {
            pid: 42,
            uptime_ms: 1000.0,
            requests: 7,
            parse_entries: 2,
            elab_entries: 1,
            jobs_active: 1,
            jobs_timed_out: 3,
            jobs_panicked: 2,
            idle_deadline_ms: Some(250.5),
        });
        let line = response.to_json();
        assert!(!line.contains('\n'), "one line: {line}");
        let back = JobResponse::parse(&line).unwrap();
        assert!(!back.ok);
        assert_eq!(back.exit_code, 1);
        assert_eq!(back.stdout, response.stdout);
        assert_eq!(back.stderr, response.stderr);
        assert_eq!(back.artifacts, response.artifacts);
        assert_eq!(back.diagnostics, response.diagnostics);
        assert!(back.warm);
        assert_eq!(back.elapsed_ms, 1.25);
        let metrics = json::parse(&back.metrics_json).unwrap();
        assert_eq!(
            metrics.get("timings.wall_ms").and_then(Json::as_f64),
            Some(1.2)
        );
        let status = back.status.unwrap();
        assert_eq!(status.requests, 7);
        assert_eq!(status.jobs_active, 1);
        assert_eq!(status.jobs_timed_out, 3);
        assert_eq!(status.jobs_panicked, 2);
        assert_eq!(status.idle_deadline_ms, Some(250.5));
    }

    #[test]
    fn test_hooks_round_trip_and_default_off() {
        let mut request = JobRequest::new(JobKind::Check);
        request.test_sleep_ms = Some(1500);
        request.test_panic = true;
        let back = JobRequest::parse(&request.to_json()).unwrap();
        assert_eq!(back.test_sleep_ms, Some(1500));
        assert!(back.test_panic);
        // Old clients never send the hooks; parsing defaults them off.
        let plain = JobRequest::parse(r#"{"kind":"check"}"#).unwrap();
        assert_eq!(plain.test_sleep_ms, None);
        assert!(!plain.test_panic);
        assert!(!plain.to_json().contains("test_"), "hooks elided when off");
    }

    #[test]
    fn resilience_failures_carry_a_machine_readable_kind() {
        for (kind, exit_code) in [("busy", 75), ("timeout", 124), ("internal_error", 70)] {
            let response = JobResponse::resilience_failure(5, kind, "try later");
            assert_eq!(response.exit_code, exit_code, "{kind}");
            assert!(!response.ok);
            let back = JobResponse::parse(&response.to_json()).unwrap();
            assert_eq!(back.error_kind.as_deref(), Some(kind));
            assert_eq!(back.exit_code, exit_code);
            assert_eq!(back.stderr, "try later\n");
        }
        // Ordinary failures have no kind, and elide the wire key.
        let plain = JobResponse::failure(5, 2, "no input files");
        assert!(!plain.to_json().contains("\"error\""));
        let back = JobResponse::parse(&plain.to_json()).unwrap();
        assert_eq!(back.error_kind, None);
    }

    #[test]
    fn status_fields_default_for_old_daemons() {
        // A pre-resilience daemon sends no jobs_* fields.
        let line = r#"{"id":1,"ok":true,"exit_code":0,"status":{"pid":9,"uptime_ms":5,"requests":2,"parse_entries":0,"elab_entries":0}}"#;
        let status = JobResponse::parse(line).unwrap().status.unwrap();
        assert_eq!(status.jobs_active, 0);
        assert_eq!(status.jobs_timed_out, 0);
        assert_eq!(status.jobs_panicked, 0);
        assert_eq!(status.idle_deadline_ms, None);
    }

    #[test]
    fn failure_helper_terminates_stderr() {
        let response = JobResponse::failure(9, 2, "no input files");
        assert_eq!(response.stderr, "no input files\n");
        assert_eq!(response.exit_code, 2);
        assert!(!response.ok);
    }
}
