//! A minimal Language Server Protocol subset over stdio
//! (`tydic serve --lsp`).
//!
//! Supported: `initialize`/`initialized`, full-sync
//! `textDocument/didOpen`/`didChange`/`didClose` (each compile
//! publishes `textDocument/publishDiagnostics` mapped from the
//! compiler's [`Diagnostic`] spans), `textDocument/hover` (the
//! resolved signature or logical stream type of the symbol under the
//! cursor, looked up through the IR project's interned symbol
//! tables), and `shutdown`/`exit`.
//!
//! The server compiles through the same [`ArtifactCache`] as the
//! batch compiler, so keystroke-latency rechecks of an unchanged
//! design are cache hits, and a `--cache-dir` shared with the daemon
//! means the editor inherits the daemon's warm artifacts on disk.
//!
//! Positions: LSP is 0-based, the compiler's
//! [`SourceFile::line_col`] is 1-based; this module converts at the
//! boundary. Character offsets are treated as Unicode scalar counts
//! (exact for the ASCII designs the language uses; a UTF-16 offset
//! divergence would need surrogate pairs in source).
//!
//! [`Diagnostic`]: tydi_lang::Diagnostic
//! [`ArtifactCache`]: tydi_lang::ArtifactCache
//! [`SourceFile::line_col`]: tydi_lang::SourceFile::line_col

use crate::protocol::{json_to_string, push_str};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::Path;
use tydi_lang::{
    compile_with_cache, ArtifactCache, CompileOptions, CompileOutput, Diagnostic, Severity,
};
use tydi_obs::json::{self, Json};
use tydi_stdlib::{stdlib_source, STDLIB_FILE_NAME};

/// Runs the LSP server over this process's stdin/stdout until the
/// client sends `exit` (or hangs up). `cache_dir` enables the on-disk
/// artifact cache (persisted on exit).
pub fn run_stdio(cache_dir: Option<&Path>) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_lsp(&mut stdin.lock(), &mut stdout.lock(), cache_dir)
}

/// One open document.
struct Document {
    /// The file-system path compiled under (diagnostics render with
    /// it), derived from the uri.
    path: String,
    /// Current full text.
    text: String,
    /// The most recent *successful* compile of this document; hover
    /// keeps answering from it while the user types through broken
    /// intermediate states.
    last_good: Option<CompileOutput>,
}

/// The LSP server loop, reader/writer-generic for tests.
pub fn serve_lsp(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    cache_dir: Option<&Path>,
) -> io::Result<()> {
    let mut cache = match cache_dir {
        Some(dir) => ArtifactCache::load(dir),
        None => ArtifactCache::new(),
    };
    let mut documents: HashMap<String, Document> = HashMap::new();
    while let Some(body) = read_message(reader)? {
        let Ok(message) = json::parse(&body) else {
            continue; // not JSON; skip the frame
        };
        let method = message.get("method").and_then(Json::as_str).unwrap_or("");
        let id = message.get("id");
        let params = message.get("params");
        match method {
            "initialize" => {
                let result = r#"{"capabilities":{"textDocumentSync":1,"hoverProvider":true},"serverInfo":{"name":"tydic"}}"#;
                respond(writer, id, result)?;
            }
            "initialized" => {}
            "shutdown" => respond(writer, id, "null")?,
            "exit" => break,
            "textDocument/didOpen" => {
                let uri = text_document_field(params, "uri");
                let text = params
                    .and_then(|p| p.get("textDocument"))
                    .and_then(|d| d.get("text"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                if let Some(uri) = uri {
                    let document = Document {
                        path: uri_to_path(&uri),
                        text,
                        last_good: None,
                    };
                    documents.insert(uri.clone(), document);
                    check_and_publish(writer, &mut cache, documents.get_mut(&uri).unwrap(), &uri)?;
                }
            }
            "textDocument/didChange" => {
                let uri = text_document_field(params, "uri");
                // Full sync: the last content change carries the
                // whole document.
                let text = params
                    .and_then(|p| p.get("contentChanges"))
                    .and_then(Json::as_array)
                    .and_then(|changes| changes.last())
                    .and_then(|change| change.get("text"))
                    .and_then(Json::as_str)
                    .map(str::to_string);
                if let (Some(uri), Some(text)) = (uri, text) {
                    if let Some(document) = documents.get_mut(&uri) {
                        document.text = text;
                        check_and_publish(writer, &mut cache, document, &uri)?;
                    }
                }
            }
            "textDocument/didClose" => {
                if let Some(uri) = text_document_field(params, "uri") {
                    documents.remove(&uri);
                    publish_diagnostics(writer, &uri, "[]")?;
                }
            }
            "textDocument/hover" => {
                let uri = text_document_field(params, "uri");
                let result = uri
                    .and_then(|uri| documents.get(&uri))
                    .and_then(|document| hover(document, params))
                    .unwrap_or_else(|| "null".to_string());
                respond(writer, id, &result)?;
            }
            _ => {
                // Unknown *requests* get a MethodNotFound error;
                // unknown notifications are ignored per the spec.
                if let Some(id) = id {
                    let error = format!(
                        r#"{{"jsonrpc":"2.0","id":{},"error":{{"code":-32601,"message":"method not found"}}}}"#,
                        json_to_string(id)
                    );
                    write_message(writer, &error)?;
                }
            }
        }
    }
    if let Some(dir) = cache_dir {
        if cache.is_dirty() {
            let _ = cache.save(dir);
        }
    }
    Ok(())
}

/// Compiles one document and publishes its diagnostics.
fn check_and_publish(
    writer: &mut impl Write,
    cache: &mut ArtifactCache,
    document: &mut Document,
    uri: &str,
) -> io::Result<()> {
    let stdlib = stdlib_source();
    let sources: Vec<(&str, &str)> = vec![
        (STDLIB_FILE_NAME, stdlib),
        (document.path.as_str(), document.text.as_str()),
    ];
    let options = CompileOptions {
        project_name: "tydic_lsp".to_string(),
        enable_sugaring: true,
        run_drc: true,
    };
    let payload = match compile_with_cache(&sources, &options, cache) {
        Ok(output) => {
            let payload = diagnostics_json(&output.diagnostics, &output.files, &document.path);
            document.last_good = Some(output);
            payload
        }
        Err(failure) => diagnostics_json(&failure.diagnostics, &failure.files, &document.path),
    };
    publish_diagnostics(writer, uri, &payload)
}

/// The document-relevant diagnostics as an LSP `Diagnostic[]` JSON
/// array. Diagnostics with spans in other files (the implicit
/// standard library) are dropped; span-less diagnostics anchor at the
/// document's first character.
fn diagnostics_json(
    diagnostics: &[Diagnostic],
    files: &[tydi_lang::SourceFile],
    path: &str,
) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for diagnostic in diagnostics {
        let location = diagnostic
            .span
            .and_then(|span| files.get(span.file).map(|file| (span, file)));
        let range = match location {
            Some((span, file)) => {
                if &*file.name != path {
                    continue;
                }
                let (start_line, start_col) = file.line_col(span.start);
                let (end_line, end_col) = file.line_col(span.end);
                format_range(start_line, start_col, end_line, end_col)
            }
            None => format_range(1, 1, 1, 1),
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            r#"{{"range":{range},"severity":{},"source":"tydic/{}","message":"#,
            match diagnostic.severity {
                Severity::Error => 1,
                Severity::Warning => 2,
                Severity::Note => 3,
            },
            diagnostic.stage,
        ));
        push_str(&mut out, &diagnostic.message);
        out.push('}');
    }
    out.push(']');
    out
}

/// 1-based compiler line/col to a 0-based LSP range.
fn format_range(start_line: usize, start_col: usize, end_line: usize, end_col: usize) -> String {
    format!(
        r#"{{"start":{{"line":{},"character":{}}},"end":{{"line":{},"character":{}}}}}"#,
        start_line.saturating_sub(1),
        start_col.saturating_sub(1),
        end_line.saturating_sub(1),
        end_col.saturating_sub(1),
    )
}

/// Answers a hover request from the document's last good compile.
fn hover(document: &Document, params: Option<&Json>) -> Option<String> {
    let output = document.last_good.as_ref()?;
    let position = params?.get("position")?;
    let line = position.get("line")?.as_f64()? as usize;
    let character = position.get("character")?.as_f64()? as usize;
    let (word, start, end) = word_at(&document.text, line, character)?;
    let text = resolve_symbol(output, &word)?;
    let mut result = String::from(r#"{"contents":{"kind":"markdown","value":"#);
    push_str(&mut result, &format!("```tydi\n{text}\n```"));
    result.push_str(r#"},"range":"#);
    result.push_str(&format_range(line + 1, start + 1, line + 1, end + 1));
    result.push('}');
    Some(result)
}

/// The identifier under a 0-based line/character position, with its
/// 0-based start/end columns.
fn word_at(text: &str, line: usize, character: usize) -> Option<(String, usize, usize)> {
    let line_text = text.lines().nth(line)?;
    let chars: Vec<char> = line_text.chars().collect();
    let is_word = |c: char| c.is_alphanumeric() || c == '_';
    let mut index = character.min(chars.len());
    // Allow hovering just past the last character of a word.
    if index >= chars.len() || !is_word(chars[index]) {
        if index == 0 || !is_word(chars[index - 1]) {
            return None;
        }
        index -= 1;
    }
    let mut start = index;
    while start > 0 && is_word(chars[start - 1]) {
        start -= 1;
    }
    let mut end = index + 1;
    while end < chars.len() && is_word(chars[end]) {
        end += 1;
    }
    Some((chars[start..end].iter().collect(), start, end))
}

/// Resolves `word` against the compiled project: streamlets and
/// implementations through the interner-backed name indexes, then
/// port names and type-alias origins by scanning the port tables.
fn resolve_symbol(output: &CompileOutput, word: &str) -> Option<String> {
    let project = &output.project;
    if let Some(streamlet) = project.streamlet(word) {
        let mut signature = format!("streamlet {} {{", streamlet.name);
        for port in &streamlet.ports {
            signature.push_str(&format!(
                "\n  {} : {} {},",
                port.name, port.ty, port.direction
            ));
        }
        signature.push_str("\n}");
        return Some(signature);
    }
    if let Some(implementation) = project.implementation(word) {
        return Some(format!(
            "impl {} of {}",
            implementation.name, implementation.streamlet
        ));
    }
    for streamlet in project.streamlets() {
        if let Some(port) = streamlet.port(word) {
            return Some(format!(
                "{} : {} {}  (port of streamlet {})",
                port.name, port.ty, port.direction, streamlet.name
            ));
        }
    }
    // A type alias has no IR node of its own, but every port carries
    // the origin it was declared with; the first match resolves the
    // alias to its expanded logical stream type.
    for streamlet in project.streamlets() {
        for port in &streamlet.ports {
            let Some(origin) = port.type_origin.as_deref() else {
                continue;
            };
            if origin == word || origin.ends_with(&format!(".{word}")) {
                return Some(format!("type {origin} = {}", port.ty));
            }
        }
    }
    None
}

fn text_document_field(params: Option<&Json>, field: &str) -> Option<String> {
    params?
        .get("textDocument")?
        .get(field)?
        .as_str()
        .map(str::to_string)
}

/// `file://` uris to paths; other schemes pass through as opaque
/// names (they still work as compile-unit labels).
fn uri_to_path(uri: &str) -> String {
    uri.strip_prefix("file://").unwrap_or(uri).to_string()
}

/// Reads one `Content-Length`-framed message; `None` on a clean EOF.
fn read_message(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(value) = line.strip_prefix("Content-Length:") {
            content_length = value.trim().parse().ok();
        }
    }
    let length = content_length
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing Content-Length"))?;
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(Some(String::from_utf8_lossy(&body).into_owned()))
}

fn write_message(writer: &mut impl Write, body: &str) -> io::Result<()> {
    write!(writer, "Content-Length: {}\r\n\r\n{body}", body.len())?;
    writer.flush()
}

/// Writes a JSON-RPC response; the id is echoed verbatim (numbers and
/// strings both occur in the wild).
fn respond(writer: &mut impl Write, id: Option<&Json>, result: &str) -> io::Result<()> {
    let id = id.map(json_to_string).unwrap_or_else(|| "null".to_string());
    write_message(
        writer,
        &format!(r#"{{"jsonrpc":"2.0","id":{id},"result":{result}}}"#),
    )
}

fn publish_diagnostics(writer: &mut impl Write, uri: &str, diagnostics: &str) -> io::Result<()> {
    let mut params = String::from(r#"{"uri":"#);
    push_str(&mut params, uri);
    params.push_str(r#","diagnostics":"#);
    params.push_str(diagnostics);
    params.push('}');
    write_message(
        writer,
        &format!(
            r#"{{"jsonrpc":"2.0","method":"textDocument/publishDiagnostics","params":{params}}}"#
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "package demo;\ntype Byte = Stream(Bit(8));\nstreamlet wire_s { i : Byte in, o : Byte out, }\nimpl wire_i of wire_s { i => o, }\n";
    const BROKEN: &str = "package demo;\nconst x = ;\n";

    fn frame(body: &str) -> Vec<u8> {
        format!("Content-Length: {}\r\n\r\n{body}", body.len()).into_bytes()
    }

    fn notification(method: &str, params: &str) -> Vec<u8> {
        frame(&format!(
            r#"{{"jsonrpc":"2.0","method":"{method}","params":{params}}}"#
        ))
    }

    fn request(id: u64, method: &str, params: &str) -> Vec<u8> {
        frame(&format!(
            r#"{{"jsonrpc":"2.0","id":{id},"method":"{method}","params":{params}}}"#
        ))
    }

    fn did_open(uri: &str, text: &str) -> Vec<u8> {
        let mut escaped = String::new();
        tydi_obs::escape_json(text, &mut escaped);
        notification(
            "textDocument/didOpen",
            &format!(
                r#"{{"textDocument":{{"uri":"{uri}","languageId":"tydi","version":1,"text":"{escaped}"}}}}"#
            ),
        )
    }

    fn did_change(uri: &str, text: &str) -> Vec<u8> {
        let mut escaped = String::new();
        tydi_obs::escape_json(text, &mut escaped);
        notification(
            "textDocument/didChange",
            &format!(
                r#"{{"textDocument":{{"uri":"{uri}","version":2}},"contentChanges":[{{"text":"{escaped}"}}]}}"#
            ),
        )
    }

    /// Runs a scripted session and returns the server's messages.
    fn run_session(messages: &[Vec<u8>]) -> Vec<Json> {
        let mut input = Vec::new();
        for message in messages {
            input.extend_from_slice(message);
        }
        let mut output = Vec::new();
        serve_lsp(&mut input.as_slice(), &mut output, None).unwrap();
        parse_frames(&output)
    }

    fn parse_frames(bytes: &[u8]) -> Vec<Json> {
        let mut reader = bytes;
        let mut frames = Vec::new();
        while let Some(body) = read_message(&mut reader).unwrap() {
            frames.push(json::parse(&body).unwrap());
        }
        frames
    }

    fn diagnostics_of<'a>(frames: &'a [Json], uri: &str) -> Vec<&'a [Json]> {
        frames
            .iter()
            .filter(|frame| {
                frame.get("method").and_then(Json::as_str)
                    == Some("textDocument/publishDiagnostics")
                    && frame
                        .get("params")
                        .and_then(|p| p.get("uri"))
                        .and_then(Json::as_str)
                        == Some(uri)
            })
            .filter_map(|frame| {
                frame
                    .get("params")
                    .and_then(|p| p.get("diagnostics"))
                    .and_then(Json::as_array)
            })
            .collect()
    }

    #[test]
    fn session_publishes_diagnostics_and_hovers() {
        let uri = "file:///ws/demo.td";
        let frames = run_session(&[
            request(1, "initialize", "{}"),
            notification("initialized", "{}"),
            did_open(uri, GOOD),
            request(
                2,
                "textDocument/hover",
                &format!(
                    r#"{{"textDocument":{{"uri":"{uri}"}},"position":{{"line":2,"character":12}}}}"#
                ),
            ),
            did_change(uri, BROKEN),
            request(3, "shutdown", "{}"),
            notification("exit", "{}"),
        ]);

        // initialize advertised hover + full sync.
        let init = frames
            .iter()
            .find(|f| f.get("id").and_then(Json::as_f64) == Some(1.0))
            .expect("initialize response");
        let capabilities = init
            .get("result")
            .and_then(|r| r.get("capabilities"))
            .unwrap();
        assert_eq!(capabilities.get("hoverProvider"), Some(&Json::Bool(true)));
        assert_eq!(
            capabilities.get("textDocumentSync").and_then(Json::as_f64),
            Some(1.0)
        );

        // The good open published (possibly empty) diagnostics; the
        // broken change published at least one error with a position.
        let published = diagnostics_of(&frames, uri);
        assert_eq!(published.len(), 2, "one publish per open/change");
        assert!(
            published[0]
                .iter()
                .all(|d| { d.get("severity").and_then(Json::as_f64) != Some(1.0) }),
            "no errors in the good document"
        );
        let error = published[1]
            .iter()
            .find(|d| d.get("severity").and_then(Json::as_f64) == Some(1.0))
            .expect("an error diagnostic for the broken edit");
        let start = error.get("range").and_then(|r| r.get("start")).unwrap();
        assert_eq!(
            start.get("line").and_then(Json::as_f64),
            Some(1.0),
            "0-based line"
        );

        // Hover on `wire_s` (line 2, col 12 points into the name).
        let hover = frames
            .iter()
            .find(|f| f.get("id").and_then(Json::as_f64) == Some(2.0))
            .expect("hover response");
        let value = hover
            .get("result")
            .and_then(|r| r.get("contents"))
            .and_then(|c| c.get("value"))
            .and_then(Json::as_str)
            .expect("hover markdown");
        assert!(value.contains("streamlet wire_s"), "hover: {value}");
        assert!(value.contains("Stream"), "resolved type in hover: {value}");

        // shutdown answered null.
        let shutdown = frames
            .iter()
            .find(|f| f.get("id").and_then(Json::as_f64) == Some(3.0))
            .expect("shutdown response");
        assert_eq!(shutdown.get("result"), Some(&Json::Null));
    }

    #[test]
    fn hover_survives_broken_intermediate_states() {
        let uri = "file:///ws/demo.td";
        let frames = run_session(&[
            request(1, "initialize", "{}"),
            did_open(uri, GOOD),
            did_change(uri, BROKEN),
            request(
                2,
                "textDocument/hover",
                &format!(
                    r#"{{"textDocument":{{"uri":"{uri}"}},"position":{{"line":2,"character":12}}}}"#
                ),
            ),
            notification("exit", "{}"),
        ]);
        let hover = frames
            .iter()
            .find(|f| f.get("id").and_then(Json::as_f64) == Some(2.0))
            .expect("hover response");
        // The broken text no longer has wire_s on that position's
        // line, so the last-good compile may or may not resolve a
        // word there — the requirement is a well-formed response, not
        // a server error or a hang.
        assert!(hover.get("result").is_some());
    }

    #[test]
    fn unknown_requests_get_method_not_found() {
        let frames = run_session(&[
            request(7, "workspace/symbol", "{}"),
            notification("exit", "{}"),
        ]);
        let error = frames
            .iter()
            .find(|f| f.get("id").and_then(Json::as_f64) == Some(7.0))
            .expect("error response");
        assert_eq!(
            error
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_f64),
            Some(-32601.0)
        );
    }

    #[test]
    fn word_extraction_handles_boundaries() {
        let text = "impl wire_i of wire_s";
        assert_eq!(word_at(text, 0, 0), Some(("impl".to_string(), 0, 4)));
        assert_eq!(
            word_at(text, 0, 4),
            Some(("impl".to_string(), 0, 4)),
            "end of word"
        );
        assert_eq!(word_at(text, 0, 7), Some(("wire_i".to_string(), 5, 11)));
        assert_eq!(word_at(text, 0, 21), Some(("wire_s".to_string(), 15, 21)));
        assert_eq!(word_at("  ", 0, 1), None);
        assert_eq!(word_at(text, 9, 0), None, "line out of range");
    }
}
