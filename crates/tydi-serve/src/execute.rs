//! The shared job runner: one function that executes a compile job
//! against a resident [`ArtifactCache`], producing exactly the bytes
//! an in-process `tydic` run would have produced.
//!
//! Both the daemon and the byte-identity tests route through
//! [`run_job`], and its output formatting deliberately mirrors
//! `src/bin/tydic.rs` line for line — the acceptance bar for the
//! daemon is that `tydic --daemon check` and `tydic check` are
//! indistinguishable apart from latency.

use crate::protocol::{DiagnosticInfo, JobKind, JobRequest, JobResponse};
use std::path::{Path, PathBuf};
use std::time::Instant;
use tydi_lang::{compile_with_cache, ArtifactCache, CompileOptions, CompileOutput, Stage};
use tydi_obs::metrics::{self, Metric};
use tydi_stdlib::{full_registry, stdlib_source, STDLIB_FILE_NAME};
use tydi_vhdl::{generate_project_for_with, Backend, VhdlOptions};

/// Runs one `check`/`build`/`analyze` job against the cache. When
/// `scope` is non-empty (the daemon passes `req.<n>.`), every metric
/// the job publishes lands under that thread-local prefix; the
/// response embeds the prefix-stripped namespace as JSON and the
/// namespace is scrubbed from the registry afterwards, so a long-lived
/// daemon's registry does not grow with request count.
pub fn run_job(request: &JobRequest, cache: &mut ArtifactCache, scope: &str) -> JobResponse {
    debug_assert!(matches!(
        request.kind,
        JobKind::Check | JobKind::Build | JobKind::Analyze
    ));
    let started = Instant::now();
    let scope_guard = (!scope.is_empty()).then(|| metrics::scoped(scope.to_string()));
    let mut response = run_job_inner(request, cache);
    if scope_guard.is_some() {
        response.metrics_json = scoped_metrics_json(scope);
        // Scrub this request's namespace (the guard is still active,
        // so the empty prefix resolves to exactly `scope`).
        metrics::clear_prefix("");
    }
    drop(scope_guard);
    response.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    response
}

fn run_job_inner(request: &JobRequest, cache: &mut ArtifactCache) -> JobResponse {
    let mut response = JobResponse::new(request.id);
    if request.files.is_empty() {
        return JobResponse::failure(request.id, 2, "no input files");
    }
    // Validate job-level options before compiling, mirroring
    // `parse_args` (same messages, same usage exit code).
    let deny = match request.deny.as_deref() {
        None => None,
        Some(text) => match tydi_analyze::Severity::parse(text) {
            Some(severity) => Some(severity),
            None => {
                return JobResponse::failure(
                    request.id,
                    2,
                    format!("unknown --deny severity `{text}` (expected info|warning|error)"),
                )
            }
        },
    };
    let backend = match request.emit.as_str() {
        "ir" => None,
        "vhdl" => Some(Backend::Vhdl),
        "verilog" | "sv" | "systemverilog" => Some(Backend::SystemVerilog),
        other => {
            return JobResponse::failure(
                request.id,
                2,
                format!("unknown --emit format `{other}` (expected ir|vhdl|verilog)"),
            )
        }
    };

    let sources = match load_sources(request) {
        Ok(sources) => sources,
        Err(message) => return JobResponse::failure(request.id, 2, message),
    };
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(name, text)| (name.as_str(), text.as_str()))
        .collect();
    let compile_options = CompileOptions {
        project_name: "tydic_out".to_string(),
        enable_sugaring: request.sugaring,
        run_drc: true,
    };
    let mut output = match compile_with_cache(&refs, &compile_options, cache) {
        Ok(output) => output,
        Err(failure) => {
            response.ok = false;
            response.exit_code = 1;
            response.stderr = failure.render();
            response.diagnostics = diagnostic_infos(&failure.diagnostics, &failure.files);
            return response;
        }
    };
    tydi_lang::publish_compile_metrics(&output);
    for diagnostic in &output.diagnostics {
        response.stderr.push_str(&diagnostic.render(&output.files));
    }
    response.diagnostics = diagnostic_infos(&output.diagnostics, &output.files);
    let stats = output.project.stats();
    response.stderr.push_str(&format!(
        "ok: {} streamlet(s), {} implementation(s), {} connection(s) in {:?}\n",
        stats.streamlets, stats.implementations, stats.connections, output.timings.wall
    ));
    response.warm = output
        .stage_records
        .iter()
        .any(|record| matches!(record.stage, Stage::Elaborate) && record.reused > 0);

    match request.kind {
        JobKind::Check => {}
        JobKind::Build => emit(request, backend, &output, &mut response),
        JobKind::Analyze => analyze(request, deny, &mut output, &mut response),
        JobKind::Status | JobKind::Shutdown => unreachable!("handled by the server"),
    }
    response
}

/// Reads the job's input files (the standard library is implicit
/// unless the job disables it), mirroring the CLI's `load_sources`.
fn load_sources(request: &JobRequest) -> Result<Vec<(String, String)>, String> {
    let mut sources: Vec<(String, String)> = Vec::new();
    if request.include_std {
        sources.push((STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()));
    }
    for file in &request.files {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
        sources.push((file.clone(), text));
    }
    Ok(sources)
}

/// `build` jobs: emit IR text or RTL through the netlist backends,
/// mirroring the CLI's emit arm of `run`.
fn emit(
    request: &JobRequest,
    backend: Option<Backend>,
    output: &CompileOutput,
    response: &mut JobResponse,
) {
    let out_dir = request.out_dir.as_ref().map(PathBuf::from);
    match backend {
        None => {
            let text = tydi_ir::text::emit_project(&output.project);
            match &out_dir {
                Some(dir) => {
                    let path = dir.join("project.tir");
                    if let Err(e) =
                        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &text))
                    {
                        response.fail(1, format!("write failed: {e}"));
                        return;
                    }
                    response
                        .stderr
                        .push_str(&format!("wrote {}\n", path.display()));
                    response.artifacts.push(path.display().to_string());
                }
                None => response.stdout.push_str(&text),
            }
        }
        Some(backend) => {
            let registry = full_registry();
            tydi_fletcher::register_fletcher_rtl(&registry);
            let generated = match generate_project_for_with(
                &output.project,
                &output.index,
                &registry,
                &VhdlOptions::default(),
                backend,
            ) {
                Ok(generated) => generated,
                Err(e) => {
                    response.fail(1, format!("{backend} generation failed: {e}"));
                    return;
                }
            };
            match &out_dir {
                Some(dir) => {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        response.fail(1, format!("cannot create `{}`: {e}", dir.display()));
                        return;
                    }
                    for file in &generated {
                        let path = dir.join(&file.name);
                        if let Err(e) = std::fs::write(&path, &file.contents) {
                            response.fail(1, format!("write failed: {e}"));
                            return;
                        }
                        response.artifacts.push(path.display().to_string());
                    }
                    response.stderr.push_str(&format!(
                        "wrote {} file(s) to {}\n",
                        generated.len(),
                        dir.display()
                    ));
                }
                None => {
                    response
                        .stdout
                        .push_str(&tydi_vhdl::files_to_string(&generated, backend));
                }
            }
        }
    }
}

/// `analyze` jobs: static throughput/latency bounds and hazards,
/// mirroring the CLI's `run_analyze`.
fn analyze(
    request: &JobRequest,
    deny: Option<tydi_analyze::Severity>,
    output: &mut CompileOutput,
    response: &mut JobResponse,
) {
    let candidates = output.project.top_level_candidates();
    let top = match request.top.as_deref() {
        Some(top) => top.to_string(),
        None => match candidates.first() {
            Some(top) => top.to_string(),
            None => {
                response.fail(1, "no top-level implementation candidate found".to_string());
                return;
            }
        },
    };
    let analyze_options = tydi_analyze::AnalyzeOptions {
        clock: request.clock_mhz.map(|mhz| {
            tydi_spec::clock::PhysicalClock::new(
                tydi_spec::ClockDomain::default_domain(),
                mhz * 1e6,
            )
        }),
        ..tydi_analyze::AnalyzeOptions::default()
    };
    let started = Instant::now();
    let report = match tydi_analyze::analyze(&output.project, &output.index, &top, &analyze_options)
    {
        Ok(report) => report,
        Err(e) => {
            response.fail(1, e.to_string());
            return;
        }
    };
    output.record_stage(Stage::Analyze, started.elapsed(), report.hazards.len());
    tydi_lang::publish_compile_metrics(output);
    tydi_obs::metrics::counter_set("analyze.hazards", report.hazards.len() as u64);
    if request.json {
        response.stdout.push_str(&report.to_json());
    } else {
        response.stdout.push_str(&report.to_string());
    }
    if let Some(deny) = deny {
        let denied: Vec<&tydi_analyze::Hazard> = report.hazards_at_least(deny).collect();
        if !denied.is_empty() {
            for hazard in &denied {
                let span = hazard
                    .impl_name
                    .as_deref()
                    .and_then(|name| output.elab_info.impl_span(name));
                let diagnostic = tydi_lang::Diagnostic::error(
                    "analyze",
                    format!("{}: {}", hazard.kind.name(), hazard.message),
                    span,
                );
                response.stderr.push_str(&diagnostic.render(&output.files));
            }
            response.fail(
                1,
                format!(
                    "analyze: {} hazard(s) at or above `{}` in `{top}`",
                    denied.len(),
                    deny.name()
                ),
            );
        }
    }
}

impl JobResponse {
    /// Marks the job failed, appending the newline-terminated message
    /// to stderr (the shape `tydic`'s error reporting produces).
    fn fail(&mut self, exit_code: i32, message: String) {
        self.ok = false;
        self.exit_code = exit_code;
        self.stderr.push_str(message.trim_end_matches('\n'));
        self.stderr.push('\n');
    }
}

/// Maps rendered-text diagnostics to their structured wire form.
pub fn diagnostic_infos(
    diagnostics: &[tydi_lang::Diagnostic],
    files: &[tydi_lang::SourceFile],
) -> Vec<DiagnosticInfo> {
    diagnostics
        .iter()
        .map(|d| {
            let location = d
                .span
                .and_then(|span| files.get(span.file).map(|file| (span, file)));
            let (file, line, col) = match location {
                Some((span, file)) => {
                    let (line, col) = file.line_col(span.start);
                    (file.name.to_string(), line as u64, col as u64)
                }
                None => (String::new(), 0, 0),
            };
            DiagnosticInfo {
                severity: d.severity.to_string(),
                stage: d.stage.to_string(),
                message: d.message.clone(),
                file,
                line,
                col,
            }
        })
        .collect()
}

/// One request's metric namespace as a compact flat JSON object, with
/// the scope prefix stripped, in the same value encoding as
/// [`tydi_obs::metrics::Snapshot::to_json`].
fn scoped_metrics_json(scope: &str) -> String {
    let snapshot = metrics::snapshot();
    let mut out = String::from("{");
    for (index, (name, metric)) in snapshot.prefixed(scope).enumerate() {
        if index > 0 {
            out.push(',');
        }
        crate::protocol::push_str(&mut out, &name[scope.len()..]);
        out.push(':');
        match metric {
            Metric::Counter(value) => out.push_str(&value.to_string()),
            Metric::Gauge(value) => out.push_str(&json_f64(*value)),
            Metric::Text(value) => crate::protocol::push_str(&mut out, value),
            Metric::Histogram(h) => out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max)
            )),
        }
    }
    out.push('}');
    out
}

/// `f64` as JSON, matching the metrics serializer: finite values
/// verbatim (`.0` suffix for integral ones), non-finite as `null`.
fn json_f64(value: f64) -> String {
    if !value.is_finite() {
        return "null".to_string();
    }
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{value:.1}")
    } else {
        format!("{value}")
    }
}

/// Convenience for tests and the in-process fallback: run one job on
/// a cache loaded from (and persisted back to) `cache_dir`.
pub fn run_job_with_cache_dir(request: &JobRequest, cache_dir: &Path) -> JobResponse {
    let mut cache = ArtifactCache::load(cache_dir);
    let response = run_job(request, &mut cache, "");
    if cache.is_dirty() {
        let _ = cache.save(cache_dir);
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
package demo;
type Byte = Stream(Bit(8));
streamlet wire_s { i : Byte in, o : Byte out, }
impl wire_i of wire_s { i => o, }
";

    fn write_source(dir: &Path, name: &str, text: &str) -> String {
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path.display().to_string()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tydi-serve-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn check_job_reports_the_summary_line() {
        let dir = temp_dir("check");
        let file = write_source(&dir, "demo.td", GOOD);
        let mut request = JobRequest::new(JobKind::Check);
        request.files = vec![file];
        let mut cache = ArtifactCache::new();
        let response = run_job(&request, &mut cache, "");
        assert!(response.ok, "stderr: {}", response.stderr);
        assert!(
            response.stderr.contains("ok: ") && response.stderr.contains("streamlet(s)"),
            "summary line present: {}",
            response.stderr
        );
        assert!(response.stdout.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_job_carries_structured_diagnostics() {
        let dir = temp_dir("fail");
        let file = write_source(&dir, "bad.td", "package demo;\nconst x = ;\n");
        let mut request = JobRequest::new(JobKind::Check);
        request.files = vec![file.clone()];
        let mut cache = ArtifactCache::new();
        let response = run_job(&request, &mut cache, "");
        assert!(!response.ok);
        assert_eq!(response.exit_code, 1);
        let error = response
            .diagnostics
            .iter()
            .find(|d| d.severity == "error")
            .expect("an error diagnostic");
        assert_eq!(error.file, file);
        assert!(error.line > 0 && error.col > 0, "span mapped: {error:?}");
        assert!(response.stderr.contains("error:"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_job_writes_artifacts_into_out_dir() {
        let dir = temp_dir("build");
        let file = write_source(&dir, "demo.td", GOOD);
        let out = dir.join("out");
        let mut request = JobRequest::new(JobKind::Build);
        request.files = vec![file];
        request.out_dir = Some(out.display().to_string());
        let mut cache = ArtifactCache::new();
        let response = run_job(&request, &mut cache, "");
        assert!(response.ok, "stderr: {}", response.stderr);
        assert!(!response.artifacts.is_empty());
        for artifact in &response.artifacts {
            assert!(Path::new(artifact).exists(), "artifact on disk: {artifact}");
        }
        assert!(response.stderr.contains("wrote"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scoped_job_embeds_and_scrubs_its_metrics() {
        let dir = temp_dir("scope");
        let file = write_source(&dir, "demo.td", GOOD);
        let mut request = JobRequest::new(JobKind::Check);
        request.files = vec![file];
        let mut cache = ArtifactCache::new();
        let response = run_job(&request, &mut cache, "req.test-scope.");
        assert!(response.ok, "stderr: {}", response.stderr);
        let metrics = tydi_obs::json::parse(&response.metrics_json).unwrap();
        assert!(
            metrics.get("timings.wall_ms").is_some(),
            "request metrics captured: {}",
            response.metrics_json
        );
        let leftover = metrics::snapshot();
        assert_eq!(
            leftover.prefixed("req.test-scope.").count(),
            0,
            "request namespace scrubbed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_options_fail_with_usage_exit_code() {
        let mut cache = ArtifactCache::new();
        let mut request = JobRequest::new(JobKind::Check);
        let response = run_job(&request, &mut cache, "");
        assert_eq!(response.exit_code, 2, "no input files");
        request.files = vec!["x.td".to_string()];
        request.emit = "edif".to_string();
        let response = run_job(&request, &mut cache, "");
        assert_eq!(response.exit_code, 2);
        assert!(response.stderr.contains("unknown --emit format"));
        request.emit = "ir".to_string();
        request.deny = Some("fatal".to_string());
        let response = run_job(&request, &mut cache, "");
        assert_eq!(response.exit_code, 2);
        assert!(response.stderr.contains("unknown --deny severity"));
    }
}
