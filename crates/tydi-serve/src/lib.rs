//! Compiler-as-a-service for Tydi-lang: the `tydic serve` daemon.
//!
//! Process startup dominates small incremental compiles — loading the
//! artifact cache, re-interning the standard library's types, and
//! warming the type store are paid on every `tydic` invocation even
//! when the design itself is served entirely from cache. This crate
//! keeps that state resident in one long-lived process:
//!
//! * [`server`] — a unix-socket daemon holding the [`ArtifactCache`]
//!   (and, through it, the warm interners and type store of
//!   cache-restored artifacts) in memory, serving concurrent clients.
//!   Each request is one newline-delimited JSON *job* (`check`,
//!   `build`, `analyze`, `status`, `shutdown`) answered with the
//!   compiler's diagnostics, a per-request metrics snapshot (namespaced
//!   via [`tydi_obs::metrics::scoped`]), and the emitted artifact
//!   paths.
//! * [`client`] — the connection used by `tydic --daemon`: connect to
//!   the socket under the cache directory, spawning the daemon on
//!   demand, and fall back to in-process compilation when the socket
//!   cannot be reached.
//! * [`execute`] — the shared job runner. The daemon and the
//!   in-process fallback route through the same function, so a
//!   daemon-served job is byte-identical to a cold `tydic` run by
//!   construction.
//! * [`lsp`] — a minimal Language Server Protocol subset over stdio
//!   (`tydic serve --lsp`): `didOpen`/`didChange` publish diagnostics
//!   mapped from the compiler's spans, and `hover` resolves the
//!   logical type behind the symbol under the cursor.
//! * [`protocol`] — the job request/response types and their JSON
//!   codec (hand-rolled, per the workspace's no-external-deps policy).
//!
//! [`ArtifactCache`]: tydi_lang::ArtifactCache

#![warn(missing_docs)]

pub mod execute;
pub mod lsp;
pub mod protocol;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod server;

use std::path::{Path, PathBuf};

/// File name of the daemon's unix socket, under the cache directory.
pub const SOCKET_NAME: &str = "serve.sock";

/// File name of the daemon's pid file, next to the socket.
pub const PID_FILE_NAME: &str = "serve.pid";

/// The daemon's socket path for a given cache directory. Keeping the
/// socket under the cache directory ties one daemon to one cache: two
/// builds with different `--cache-dir`s get two independent daemons.
pub fn socket_path(cache_dir: &Path) -> PathBuf {
    cache_dir.join(SOCKET_NAME)
}
