//! Flattening a hierarchical IR design into a simulation graph.
//!
//! Normal implementations are pure structure, so the simulator
//! recursively inlines them: every *external* implementation becomes a
//! leaf component, every connection becomes a bounded FIFO channel,
//! and the chosen top-level implementation's own ports become boundary
//! channels driven by stimulus feeders / observed by probes.

use crate::channel::Channel;
use std::collections::HashMap;
use tydi_ir::{ImplKind, PortDirection, Project};

/// One leaf component of the flattened design.
#[derive(Debug, Clone)]
pub struct ComponentNode {
    /// Hierarchical path, e.g. `top.pu_0.add`.
    pub path: String,
    /// The elaborated implementation name.
    pub impl_name: String,
    /// Builtin behaviour key, when bound.
    pub builtin: Option<String>,
    /// Simulation source, when attached.
    pub sim_source: Option<String>,
    /// Input port name to channel index.
    pub inputs: HashMap<String, usize>,
    /// Output port name to channel index.
    pub outputs: HashMap<String, usize>,
    /// True for components fabricated by the flattener itself
    /// (implicit feed-through wires): they have no project entry, so
    /// the engine must not try to look their IR up.
    pub synthetic: bool,
}

/// The flattened design.
#[derive(Debug, Clone)]
pub struct SimGraph {
    /// All channels; components and boundaries hold indices into this.
    pub channels: Vec<Channel>,
    /// All leaf components.
    pub components: Vec<ComponentNode>,
    /// Top-level input ports with the channels feeding the design.
    pub boundary_inputs: Vec<(String, usize)>,
    /// Top-level output ports with the channels leaving the design.
    pub boundary_outputs: Vec<(String, usize)>,
    /// Per-channel wake list: components that *read* the channel
    /// (stepped when the channel gains a packet).
    pub channel_sinks: Vec<Vec<usize>>,
    /// Per-channel wake list: components that *write* the channel
    /// (stepped when the channel gains credit).
    pub channel_sources: Vec<Vec<usize>>,
}

/// Errors while building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The requested top-level implementation does not exist.
    UnknownTop(String),
    /// An IR inconsistency (the project should be validated first).
    Inconsistent(String),
    /// An external implementation has neither a builtin key nor
    /// simulation code, so it cannot be simulated.
    NoBehaviour(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownTop(name) => write!(f, "unknown top implementation `{name}`"),
            GraphError::Inconsistent(msg) => write!(f, "inconsistent IR: {msg}"),
            GraphError::NoBehaviour(name) => write!(
                f,
                "external implementation `{name}` has neither a builtin key nor simulation code"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Flattens `top_impl` into a [`SimGraph`].
pub fn flatten(
    project: &Project,
    top_impl: &str,
    channel_capacity: usize,
) -> Result<SimGraph, GraphError> {
    let _span = tydi_obs::trace::span_named("tydi-sim", || format!("flatten:{top_impl}"));
    let implementation = project
        .implementation(top_impl)
        .ok_or_else(|| GraphError::UnknownTop(top_impl.to_string()))?;
    let streamlet = project
        .streamlet(&implementation.streamlet)
        .ok_or_else(|| GraphError::Inconsistent(format!("missing streamlet of `{top_impl}`")))?;

    let mut graph = SimGraph {
        channels: Vec::new(),
        components: Vec::new(),
        boundary_inputs: Vec::new(),
        boundary_outputs: Vec::new(),
        channel_sinks: Vec::new(),
        channel_sources: Vec::new(),
    };

    // Boundary channels for the top-level ports.
    let mut bindings: HashMap<String, usize> = HashMap::new();
    for port in &streamlet.ports {
        let idx = graph.channels.len();
        graph.channels.push(Channel::new(
            format!("boundary.{}", port.name),
            channel_capacity,
        ));
        bindings.insert(port.name.clone(), idx);
        match port.direction {
            PortDirection::In => graph.boundary_inputs.push((port.name.clone(), idx)),
            PortDirection::Out => graph.boundary_outputs.push((port.name.clone(), idx)),
        }
    }

    inline(
        project,
        top_impl,
        "top",
        &bindings,
        channel_capacity,
        &mut graph,
        0,
    )?;

    // Wake lists, built once: the event-driven scheduler steps a
    // component only when one of its input channels gained a packet or
    // one of its output channels gained credit.
    graph.channel_sinks = vec![Vec::new(); graph.channels.len()];
    graph.channel_sources = vec![Vec::new(); graph.channels.len()];
    for (index, component) in graph.components.iter().enumerate() {
        for &channel in component.inputs.values() {
            let sinks = &mut graph.channel_sinks[channel];
            if !sinks.contains(&index) {
                sinks.push(index);
            }
        }
        for &channel in component.outputs.values() {
            let sources = &mut graph.channel_sources[channel];
            if !sources.contains(&index) {
                sources.push(index);
            }
        }
    }
    Ok(graph)
}

const MAX_DEPTH: usize = 64;

fn inline(
    project: &Project,
    impl_name: &str,
    path: &str,
    bindings: &HashMap<String, usize>,
    channel_capacity: usize,
    graph: &mut SimGraph,
    depth: usize,
) -> Result<(), GraphError> {
    if depth > MAX_DEPTH {
        return Err(GraphError::Inconsistent(format!(
            "instantiation depth exceeds {MAX_DEPTH} at `{path}`"
        )));
    }
    let implementation = project
        .implementation(impl_name)
        .ok_or_else(|| GraphError::Inconsistent(format!("missing implementation `{impl_name}`")))?;
    let streamlet = project
        .streamlet(&implementation.streamlet)
        .ok_or_else(|| GraphError::Inconsistent(format!("missing streamlet of `{impl_name}`")))?;

    match &implementation.kind {
        ImplKind::External {
            builtin,
            sim_source,
        } => {
            if builtin.is_none() && sim_source.is_none() {
                return Err(GraphError::NoBehaviour(impl_name.to_string()));
            }
            let mut inputs = HashMap::new();
            let mut outputs = HashMap::new();
            for port in &streamlet.ports {
                let &channel = bindings.get(&port.name).ok_or_else(|| {
                    GraphError::Inconsistent(format!(
                        "port `{}` of `{path}` has no bound channel",
                        port.name
                    ))
                })?;
                match port.direction {
                    PortDirection::In => inputs.insert(port.name.clone(), channel),
                    PortDirection::Out => outputs.insert(port.name.clone(), channel),
                };
            }
            graph.components.push(ComponentNode {
                path: path.to_string(),
                impl_name: impl_name.to_string(),
                builtin: builtin.clone(),
                sim_source: sim_source.clone(),
                inputs,
                outputs,
                synthetic: false,
            });
        }
        ImplKind::Normal {
            instances,
            connections,
        } => {
            // Channel per connection; own-port endpoints reuse the
            // parent bindings.
            let mut instance_bindings: HashMap<&str, HashMap<String, usize>> = HashMap::new();
            for instance in instances {
                instance_bindings.insert(&instance.name, HashMap::new());
            }
            for (index, connection) in connections.iter().enumerate() {
                let channel = match (&connection.source.instance, &connection.sink.instance) {
                    (None, None) => {
                        // Feed-through: bridge the two boundary
                        // channels with an implicit wire component.
                        let src = bindings[&connection.source.port];
                        let dst = bindings[&connection.sink.port];
                        let mut inputs = HashMap::new();
                        inputs.insert("i".to_string(), src);
                        let mut outputs = HashMap::new();
                        outputs.insert("o".to_string(), dst);
                        graph.components.push(ComponentNode {
                            path: format!("{path}.__wire{index}"),
                            impl_name: "__wire".to_string(),
                            builtin: Some("std.passthrough".to_string()),
                            sim_source: None,
                            inputs,
                            outputs,
                            synthetic: true,
                        });
                        continue;
                    }
                    (None, Some(_)) => bindings[&connection.source.port],
                    (Some(_), None) => bindings[&connection.sink.port],
                    (Some(_), Some(_)) => {
                        let idx = graph.channels.len();
                        graph.channels.push(Channel::new(
                            format!("{path}.{}", connection.describe()),
                            channel_capacity,
                        ));
                        idx
                    }
                };
                for endpoint in [&connection.source, &connection.sink] {
                    if let Some(instance_name) = &endpoint.instance {
                        instance_bindings
                            .get_mut(instance_name.as_str())
                            .ok_or_else(|| {
                                GraphError::Inconsistent(format!(
                                    "unknown instance `{instance_name}` in `{impl_name}`"
                                ))
                            })?
                            .insert(endpoint.port.clone(), channel);
                    }
                }
            }
            for instance in instances {
                let child_bindings = &instance_bindings[instance.name.as_str()];
                inline(
                    project,
                    &instance.impl_name,
                    &format!("{path}.{}", instance.name),
                    child_bindings,
                    channel_capacity,
                    graph,
                    depth + 1,
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_ir::{Connection, EndpointRef, Implementation, Instance, Port, Streamlet};
    use tydi_spec::{LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    fn nested_project() -> Project {
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_implementation(
            Implementation::external("leaf_i", "pass_s").with_builtin("std.passthrough"),
        )
        .unwrap();
        // mid_i wraps one leaf; top_i wraps two mids in series.
        let mut mid = Implementation::normal("mid_i", "pass_s");
        mid.add_instance(Instance::new("inner", "leaf_i"));
        mid.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("inner", "i"),
        ));
        mid.add_connection(Connection::new(
            EndpointRef::instance("inner", "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(mid).unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        top.add_instance(Instance::new("a", "mid_i"));
        top.add_instance(Instance::new("b", "mid_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("a", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("a", "o"),
            EndpointRef::instance("b", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("b", "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        p
    }

    #[test]
    fn flattens_two_levels() {
        let p = nested_project();
        p.validate().unwrap();
        let g = flatten(&p, "top_i", 2).unwrap();
        // Two leaf components, fully inlined through mid_i.
        assert_eq!(g.components.len(), 2);
        assert_eq!(g.components[0].path, "top.a.inner");
        assert_eq!(g.components[1].path, "top.b.inner");
        assert_eq!(g.boundary_inputs.len(), 1);
        assert_eq!(g.boundary_outputs.len(), 1);
        // Boundary in/out + 1 inter-instance channel = 3.
        assert_eq!(g.channels.len(), 3);
        // a.inner's input is the boundary input channel.
        assert_eq!(g.components[0].inputs["i"], g.boundary_inputs[0].1);
        // a.inner output and b.inner input share the middle channel.
        assert_eq!(g.components[0].outputs["o"], g.components[1].inputs["i"]);
        assert_eq!(g.components[1].outputs["o"], g.boundary_outputs[0].1);
    }

    #[test]
    fn wake_lists_map_channels_to_components() {
        let p = nested_project();
        let g = flatten(&p, "top_i", 2).unwrap();
        // Every component input channel lists the component as sink,
        // every output channel as source.
        for (index, component) in g.components.iter().enumerate() {
            for &channel in component.inputs.values() {
                assert!(g.channel_sinks[channel].contains(&index));
            }
            for &channel in component.outputs.values() {
                assert!(g.channel_sources[channel].contains(&index));
            }
        }
        // The middle channel of the two-leaf chain has exactly one
        // source (a.inner) and one sink (b.inner).
        let middle = g.components[0].outputs["o"];
        assert_eq!(g.channel_sources[middle], vec![0]);
        assert_eq!(g.channel_sinks[middle], vec![1]);
        // The boundary input is read by the first leaf only.
        assert_eq!(g.channel_sinks[g.boundary_inputs[0].1], vec![0]);
        assert!(g.channel_sources[g.boundary_inputs[0].1].is_empty());
    }

    #[test]
    fn feedthrough_becomes_wire_component() {
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        let mut wire = Implementation::normal("wire_i", "pass_s");
        wire.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(wire).unwrap();
        let g = flatten(&p, "wire_i", 2).unwrap();
        assert_eq!(g.components.len(), 1);
        assert_eq!(g.components[0].builtin.as_deref(), Some("std.passthrough"));
        assert!(g.components[0].synthetic);
    }

    #[test]
    fn unknown_top_errors() {
        let p = nested_project();
        assert!(matches!(
            flatten(&p, "ghost", 2),
            Err(GraphError::UnknownTop(_))
        ));
    }

    #[test]
    fn behaviourless_external_rejected() {
        let mut p = Project::new("t");
        p.add_streamlet(Streamlet::new("s").with_port(Port::new(
            "i",
            PortDirection::In,
            stream8(),
        )))
        .unwrap();
        p.add_implementation(Implementation::external("dead_i", "s"))
            .unwrap();
        assert!(matches!(
            flatten(&p, "dead_i", 2),
            Err(GraphError::NoBehaviour(_))
        ));
    }
}
