//! Testbench generation from a simulation run (paper §V-C).
//!
//! The boundary recording of a [`Simulator`] — every stimulus injected
//! and every packet observed — becomes a [`tydi_ir::Testbench`], which
//! `tydi-vhdl` lowers to a self-checking VHDL testbench. This is the
//! paper's "input – current state – output" testing flow: high-level
//! simulation fixes the expected behaviour, the generated testbench
//! verifies the low-level implementation against it.

use crate::engine::{SimError, Simulator};
use tydi_ir::{BitsValue, Project, Testbench, Transfer};
use tydi_spec::lower;

/// Records the boundary traffic of `sim` as a testbench for
/// `top_impl`.
pub fn record_testbench(
    sim: &Simulator,
    project: &Project,
    top_impl: &str,
    name: &str,
) -> Result<Testbench, SimError> {
    let streamlet = project
        .streamlet_of(top_impl)
        .ok_or_else(|| SimError::Behaviour {
            component: top_impl.to_string(),
            message: "missing streamlet".to_string(),
        })?;
    let width_of = |port: &str| -> u32 {
        streamlet
            .port(port)
            .and_then(|p| lower(&p.ty).ok())
            .map(|phys| phys[0].signals().data_bits)
            .unwrap_or(64)
    };
    let dim_of = |port: &str| -> u32 {
        streamlet
            .port(port)
            .and_then(|p| lower(&p.ty).ok())
            .map(|phys| phys[0].dimension)
            .unwrap_or(0)
    };

    let mut tb = Testbench::new(name, top_impl);
    tb.comment = format!(
        "Recorded by tydi-sim over {} cycles ({} input / {} output ports).",
        sim.cycle(),
        sim.input_ports().len(),
        sim.output_ports().len()
    );
    for port in sim.input_ports() {
        let width = width_of(&port);
        let dim = dim_of(&port);
        for (cycle, packet) in sim.injected(&port)? {
            tb.push(
                Transfer::stimulus(*cycle, &port, BitsValue::from_i64(packet.data, width))
                    .with_last(last_flags(packet.last, dim)),
            );
        }
    }
    for port in sim.output_ports() {
        let width = width_of(&port);
        let dim = dim_of(&port);
        for (cycle, packet) in sim.outputs(&port)? {
            tb.push(
                Transfer::expectation(*cycle, &port, BitsValue::from_i64(packet.data, width))
                    .with_last(last_flags(packet.last, dim)),
            );
        }
    }
    Ok(tb)
}

/// Expands a `last` level count into per-dimension flags (innermost
/// first).
fn last_flags(levels: u32, dimension: u32) -> Vec<bool> {
    (0..dimension).map(|d| d < levels).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BehaviorRegistry;
    use crate::channel::Packet;
    use tydi_lang::{compile, CompileOptions};
    use tydi_stdlib::with_stdlib;
    use tydi_vhdl::{check::check_vhdl, generate_testbench, VhdlOptions};

    #[test]
    fn recorded_testbench_lowers_to_vhdl() {
        let user = r#"
package app;
use std;
type Seq8 = Stream(Bit(8), d=1);
streamlet top_s { i : Seq8 in, o : Seq8 out, }
impl top_i of top_s {
    instance p(passthrough_i<type Seq8>),
    i => p.i,
    p.o => o,
}
"#;
        let sources = with_stdlib(&[("app.td", user)]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let project = compile(&refs, &CompileOptions::default()).unwrap().project;
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.feed("i", [Packet::data(1), Packet::data(2), Packet::last(3, 1)])
            .unwrap();
        let result = sim.run(1000);
        assert!(result.finished);

        let tb = record_testbench(&sim, &project, "top_i", "pass_tb").unwrap();
        assert_eq!(tb.stimuli().len(), 3);
        assert_eq!(tb.expectations().len(), 3);
        assert_eq!(tb.expectations()[2].last, vec![true]);

        let vhdl = generate_testbench(&project, &tb, &VhdlOptions::default()).unwrap();
        assert!(vhdl.contains("entity pass_tb is"));
        assert!(check_vhdl(&vhdl).is_empty());
    }

    #[test]
    fn last_flag_expansion() {
        assert_eq!(last_flags(0, 2), vec![false, false]);
        assert_eq!(last_flags(1, 2), vec![true, false]);
        assert_eq!(last_flags(2, 2), vec![true, true]);
        assert_eq!(last_flags(1, 0), Vec::<bool>::new());
    }
}
