//! Packets and handshake channels.

use std::collections::VecDeque;

/// One handshaked transfer travelling through the design.
///
/// Data is a dictionary-encoded signed integer (strings and decimals
/// are encoded upstream, as in Arrow-style columnar systems). `last`
/// counts how many nested sequence dimensions close *after* this
/// element; an `empty` packet carries only dimension-closing
/// information, which is how Tydi represents e.g. a filtered-out final
/// element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Element payload.
    pub data: i64,
    /// Number of dimension levels closed after this element.
    pub last: u32,
    /// True when the packet carries no element, only `last` flags.
    pub empty: bool,
}

impl Packet {
    /// A plain data packet.
    pub fn data(value: i64) -> Packet {
        Packet {
            data: value,
            last: 0,
            empty: false,
        }
    }

    /// A data packet that closes `levels` sequence dimensions.
    pub fn last(value: i64, levels: u32) -> Packet {
        Packet {
            data: value,
            last: levels,
            empty: false,
        }
    }

    /// An empty packet closing `levels` dimensions.
    pub fn close(levels: u32) -> Packet {
        Packet {
            data: 0,
            last: levels,
            empty: true,
        }
    }
}

/// A bounded FIFO connecting one source endpoint to one sink endpoint.
///
/// Pushes performed during a cycle become visible to consumers at the
/// start of the next cycle (a registered hop), which makes simulation
/// results independent of component iteration order.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Human-readable name: `source -> sink`.
    pub name: String,
    queue: VecDeque<Packet>,
    staged: Vec<Packet>,
    capacity: usize,
    /// Total packets that ever passed through.
    pub transferred: u64,
    /// Set by [`pop`](Channel::pop), cleared by
    /// [`take_popped`](Channel::take_popped); the scheduler uses it to
    /// wake producers when credit frees up.
    popped: bool,
    /// High-water mark of committed + staged occupancy.
    max_occupancy: usize,
    /// Pushes rejected because the FIFO was full: credit stalls seen
    /// by the producer.
    refused: u64,
    /// Set per cycle by the fault-injection engine: while true the
    /// channel withholds credit regardless of FIFO occupancy, exactly
    /// as if the consumer deasserted `ready`.
    fault_blocked: bool,
}

impl Channel {
    /// Creates a channel with the given FIFO capacity (minimum 1).
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        Channel {
            name: name.into(),
            queue: VecDeque::new(),
            staged: Vec::new(),
            capacity: capacity.max(1),
            transferred: 0,
            popped: false,
            max_occupancy: 0,
            refused: 0,
            fault_blocked: false,
        }
    }

    /// The FIFO capacity (credit depth) of this channel.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of packets held (committed + staged).
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Number of pushes refused because the FIFO was full — the
    /// producer-observed credit-stall count.
    pub fn refused_pushes(&self) -> u64 {
        self.refused
    }

    /// True when a push would be accepted this cycle (FIFO space and
    /// no injected credit fault).
    pub fn can_push(&self) -> bool {
        self.has_space() && !self.fault_blocked
    }

    /// True when the FIFO itself has room, ignoring injected faults.
    /// The scheduler uses this to distinguish "full" (a pop will free
    /// credit and wake the producer) from "faulted" (credit returns at
    /// a fault-transition cycle instead).
    pub fn has_space(&self) -> bool {
        self.queue.len() + self.staged.len() < self.capacity
    }

    /// Applies or clears the per-cycle injected credit fault.
    pub fn set_fault_blocked(&mut self, blocked: bool) {
        self.fault_blocked = blocked;
    }

    /// True while an injected fault is withholding this channel's
    /// credit.
    pub fn fault_blocked(&self) -> bool {
        self.fault_blocked
    }

    /// Pushes a packet; returns false when full.
    pub fn push(&mut self, packet: Packet) -> bool {
        if self.can_push() {
            self.staged.push(packet);
            let held = self.queue.len() + self.staged.len();
            self.max_occupancy = self.max_occupancy.max(held);
            true
        } else {
            self.refused += 1;
            false
        }
    }

    /// The packet at the head, if visible.
    pub fn peek(&self) -> Option<&Packet> {
        self.queue.front()
    }

    /// Pops the head packet.
    pub fn pop(&mut self) -> Option<Packet> {
        let p = self.queue.pop_front();
        if p.is_some() {
            self.transferred += 1;
            self.popped = true;
        }
        p
    }

    /// True when a pop happened since the last call (end-of-cycle
    /// credit signal for the event-driven scheduler).
    pub fn take_popped(&mut self) -> bool {
        std::mem::take(&mut self.popped)
    }

    /// Number of packets currently visible.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when a committed packet is visible to consumers (staged
    /// pushes do not count, unlike [`is_empty`](Channel::is_empty)).
    pub fn has_visible(&self) -> bool {
        !self.queue.is_empty()
    }

    /// True when no packets are visible or staged.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.staged.is_empty()
    }

    /// End-of-cycle commit: staged pushes become visible.
    pub fn commit(&mut self) -> bool {
        let moved = !self.staged.is_empty();
        self.queue.extend(self.staged.drain(..));
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_constructors() {
        assert_eq!(
            Packet::data(5),
            Packet {
                data: 5,
                last: 0,
                empty: false
            }
        );
        assert_eq!(Packet::last(5, 2).last, 2);
        assert!(Packet::close(1).empty);
    }

    #[test]
    fn staged_pushes_invisible_until_commit() {
        let mut c = Channel::new("a -> b", 4);
        assert!(c.push(Packet::data(1)));
        assert_eq!(c.peek(), None);
        assert!(!c.is_empty());
        c.commit();
        assert_eq!(c.peek(), Some(&Packet::data(1)));
        assert_eq!(c.pop(), Some(Packet::data(1)));
        assert_eq!(c.transferred, 1);
    }

    #[test]
    fn capacity_counts_staged() {
        let mut c = Channel::new("x", 2);
        assert!(c.push(Packet::data(1)));
        assert!(c.push(Packet::data(2)));
        assert!(!c.can_push());
        assert!(!c.push(Packet::data(3)));
        c.commit();
        assert!(!c.can_push());
        c.pop();
        assert!(c.can_push());
    }

    #[test]
    fn commit_reports_movement() {
        let mut c = Channel::new("x", 2);
        assert!(!c.commit());
        c.push(Packet::data(1));
        assert!(c.commit());
    }

    #[test]
    fn minimum_capacity_is_one() {
        let c = Channel::new("x", 0);
        assert!(c.can_push());
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn occupancy_and_refusal_counters() {
        let mut c = Channel::new("x", 2);
        assert_eq!(c.max_occupancy(), 0);
        assert!(c.push(Packet::data(1)));
        assert_eq!(c.max_occupancy(), 1);
        assert!(c.push(Packet::data(2)));
        assert_eq!(c.max_occupancy(), 2);
        assert!(!c.push(Packet::data(3)));
        assert!(!c.push(Packet::data(4)));
        assert_eq!(c.refused_pushes(), 2);
        c.commit();
        c.pop();
        assert!(c.push(Packet::data(5)));
        // The high-water mark does not decay after drains.
        assert_eq!(c.max_occupancy(), 2);
        assert_eq!(c.refused_pushes(), 2);
    }
}
