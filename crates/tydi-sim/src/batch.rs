//! Sharded multi-scenario simulation.
//!
//! A [`SimBatch`] runs N independent stimulus *scenarios* — distinct
//! feeds and backpressure schedules over the same flattened design —
//! and aggregates the per-scenario [`BottleneckReport`]s into one
//! [`BatchReport`]. The design is flattened once and shared immutably;
//! each scenario clones the empty-channel graph into its own
//! [`Simulator`], so scenarios share nothing mutable and shard across
//! threads via the rayon shim's work-stealing `map_stealing` (workers
//! pull the next unclaimed scenario, so one slow scenario never idles
//! the rest); `TYDI_THREADS=1` forces the sequential fallback for
//! debugging and benchmarking.

use crate::behavior::BehaviorRegistry;
use crate::channel::Packet;
use crate::engine::{RunResult, SchedulerKind, SimError, Simulator, StopReason};
use crate::fault::{FaultPlan, FaultStats};
use crate::graph::{flatten, SimGraph};
use crate::report::{BottleneckReport, ChannelStats, PortBlockage};
use std::collections::HashMap;
use std::fmt;
use tydi_ir::Project;

/// One stimulus scenario: what to feed, how hard to backpressure, and
/// how long to run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name, used in reports and errors.
    pub name: String,
    /// Packets to queue per boundary input port.
    pub feeds: Vec<(String, Vec<Packet>)>,
    /// `(output port, accept_every)` backpressure schedule.
    pub backpressure: Vec<(String, u64)>,
    /// Simulation budget in cycles.
    pub max_cycles: u64,
    /// Optional override of the quiescence threshold.
    pub idle_threshold: Option<u64>,
    /// Optional fault plan woven into the run.
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// A scenario with no feeds, no backpressure and a 100k-cycle
    /// budget.
    pub fn new(name: impl Into<String>) -> Scenario {
        Scenario {
            name: name.into(),
            feeds: Vec::new(),
            backpressure: Vec::new(),
            max_cycles: 100_000,
            idle_threshold: None,
            faults: None,
        }
    }

    /// Queues stimulus packets on a boundary input port.
    pub fn with_feed(
        mut self,
        port: impl Into<String>,
        packets: impl IntoIterator<Item = Packet>,
    ) -> Scenario {
        self.feeds
            .push((port.into(), packets.into_iter().collect()));
        self
    }

    /// Applies backpressure on an output port: accept only every
    /// `n`-th cycle.
    pub fn with_backpressure(mut self, port: impl Into<String>, every: u64) -> Scenario {
        self.backpressure.push((port.into(), every));
        self
    }

    /// Sets the cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Scenario {
        self.max_cycles = max_cycles;
        self
    }

    /// Overrides the quiescence threshold.
    pub fn with_idle_threshold(mut self, cycles: u64) -> Scenario {
        self.idle_threshold = Some(cycles);
        self
    }

    /// Weaves a fault plan into the run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Scenario {
        self.faults = Some(plan);
        self
    }
}

/// The outcome of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario name.
    pub scenario: String,
    /// Run outcome (cycles, termination reason, deadlock report).
    pub result: RunResult,
    /// Packets observed per boundary output, with arrival cycles,
    /// sorted by port name.
    pub outputs: Vec<(String, Vec<(u64, Packet)>)>,
    /// The scenario's bottleneck report.
    pub bottlenecks: BottleneckReport,
    /// Per-channel occupancy/credit statistics, sorted by name.
    pub channels: Vec<ChannelStats>,
    /// What the scenario's injected faults actually did (all zeros
    /// when no fault plan was set).
    pub fault_stats: FaultStats,
}

impl ScenarioReport {
    /// Total packets delivered across all output ports.
    pub fn delivered(&self) -> usize {
        self.outputs.iter().map(|(_, v)| v.len()).sum()
    }
}

/// A simulation failure attributed to the scenario that hit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// The scenario that failed.
    pub scenario: String,
    /// The underlying structured error.
    pub error: SimError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario `{}`: {}", self.scenario, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Aggregated outcomes of a scenario batch.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Per-scenario reports for the scenarios that ran, in submission
    /// order.
    pub scenarios: Vec<ScenarioReport>,
    /// Per-scenario failures, in submission order. A failing scenario
    /// no longer aborts the batch: the remaining scenarios run to
    /// completion and every failure is reported here, named.
    pub errors: Vec<BatchError>,
}

impl BatchReport {
    /// Scenarios that ran to proven or assumed completion.
    pub fn completed(&self) -> usize {
        self.scenarios.iter().filter(|s| s.result.finished).count()
    }

    /// Number of scenarios that failed to run at all.
    pub fn failed(&self) -> usize {
        self.errors.len()
    }

    /// Names of scenarios that deadlocked.
    pub fn deadlocked(&self) -> Vec<&str> {
        self.scenarios
            .iter()
            .filter(|s| matches!(s.result.reason, StopReason::Deadlocked { .. }))
            .map(|s| s.scenario.as_str())
            .collect()
    }

    /// Sum of simulated cycles over all scenarios.
    pub fn total_cycles(&self) -> u64 {
        self.scenarios.iter().map(|s| s.result.cycles).sum()
    }

    /// Total packets delivered over all scenarios.
    pub fn total_delivered(&self) -> usize {
        self.scenarios.iter().map(|s| s.delivered()).sum()
    }

    /// Blocked-port totals merged across scenarios: the same
    /// `component.port` blocked in several scenarios accumulates, so
    /// a systemic bottleneck outranks a scenario-local one.
    pub fn worst_blockages(&self) -> Vec<PortBlockage> {
        let mut merged: HashMap<(String, String), u64> = HashMap::new();
        for scenario in &self.scenarios {
            for b in &scenario.bottlenecks.blockages {
                *merged
                    .entry((b.component.clone(), b.port.clone()))
                    .or_insert(0) += b.blocked_cycles;
            }
        }
        let mut blockages: Vec<PortBlockage> = merged
            .into_iter()
            .map(|((component, port), blocked_cycles)| PortBlockage {
                component,
                port,
                blocked_cycles,
            })
            .collect();
        blockages.sort_by(|a, b| {
            b.blocked_cycles
                .cmp(&a.blocked_cycles)
                .then_with(|| a.component.cmp(&b.component))
                .then_with(|| a.port.cmp(&b.port))
        });
        blockages
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Batch report over {} scenario(s):", self.scenarios.len())?;
        for s in &self.scenarios {
            let reason = match &s.result.reason {
                StopReason::Completed => "completed".to_string(),
                StopReason::IdleTimeout => "idle timeout".to_string(),
                StopReason::CycleLimit => "cycle limit".to_string(),
                StopReason::Deadlocked {
                    blocked_ports,
                    blocked_channels,
                } => {
                    let at = if blocked_ports.is_empty() {
                        blocked_channels.join(", ")
                    } else {
                        blocked_ports.join(", ")
                    };
                    format!("DEADLOCKED ({at})")
                }
            };
            writeln!(
                f,
                "  {:<16} {:>8} cycles  {:>6} packet(s)  {reason}",
                s.scenario,
                s.result.cycles,
                s.delivered()
            )?;
        }
        for e in &self.errors {
            writeln!(f, "  {:<16} ERROR  {}", e.scenario, e.error)?;
        }
        writeln!(
            f,
            "  total: {} completed, {} deadlocked, {} failed, {} packet(s) in {} cycles",
            self.completed(),
            self.deadlocked().len(),
            self.failed(),
            self.total_delivered(),
            self.total_cycles()
        )?;
        let worst = self.worst_blockages();
        if !worst.is_empty() {
            writeln!(f, "  worst blocked ports across scenarios:")?;
            for b in worst.iter().take(5) {
                writeln!(
                    f,
                    "    {:>8} blocked cycles  {}.{}",
                    b.blocked_cycles, b.component, b.port
                )?;
            }
        }
        Ok(())
    }
}

/// Shards independent scenarios of one design across threads.
pub struct SimBatch<'a> {
    project: &'a Project,
    top_impl: String,
    registry: &'a BehaviorRegistry,
    scheduler: SchedulerKind,
}

impl<'a> SimBatch<'a> {
    /// A batch over `top_impl`, using the event-driven scheduler.
    pub fn new(
        project: &'a Project,
        top_impl: impl Into<String>,
        registry: &'a BehaviorRegistry,
    ) -> SimBatch<'a> {
        SimBatch {
            project,
            top_impl: top_impl.into(),
            registry,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Selects the cycle loop used for every scenario.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> SimBatch<'a> {
        self.scheduler = kind;
        self
    }

    /// Runs all scenarios, sharded across threads, and aggregates
    /// their reports. A failing scenario does not abort the batch:
    /// every scenario runs to completion and per-scenario failures
    /// land in [`BatchReport::errors`], named and structured. Only a
    /// design that cannot be flattened at all — no scenario could ever
    /// run — fails the whole batch.
    ///
    /// The design is flattened exactly once; every scenario clones the
    /// resulting (empty-channel) [`SimGraph`] instead of re-walking the
    /// implementation hierarchy, so a batch of N scenarios pays for one
    /// flatten, not N.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<BatchReport, BatchError> {
        let graph = flatten(self.project, &self.top_impl, 2).map_err(|e| BatchError {
            scenario: scenarios
                .first()
                .map(|s| s.name.clone())
                .unwrap_or_else(|| "<empty batch>".to_string()),
            error: SimError::Graph(e),
        })?;
        let workers = rayon::current_num_threads().max(1);
        let results = rayon::map_stealing(scenarios.len(), workers, |i| {
            self.run_scenario(&graph, &scenarios[i])
        });
        let mut report = BatchReport::default();
        for result in results {
            match result {
                Ok(scenario) => report.scenarios.push(scenario),
                Err(error) => report.errors.push(error),
            }
        }
        Ok(report)
    }

    fn run_scenario(
        &self,
        graph: &SimGraph,
        scenario: &Scenario,
    ) -> Result<ScenarioReport, BatchError> {
        let _span = tydi_obs::trace::span_named("tydi-sim", || format!("sim:{}", scenario.name));
        let attribute = |error: SimError| BatchError {
            scenario: scenario.name.clone(),
            error,
        };
        let mut sim =
            Simulator::from_graph(self.project, graph.clone(), self.registry).map_err(attribute)?;
        sim.set_scheduler(self.scheduler);
        if let Some(threshold) = scenario.idle_threshold {
            sim.set_idle_threshold(threshold);
        }
        for (port, every) in &scenario.backpressure {
            sim.set_probe_backpressure(port, *every)
                .map_err(attribute)?;
        }
        for (port, packets) in &scenario.feeds {
            sim.feed(port, packets.iter().copied()).map_err(attribute)?;
        }
        if let Some(plan) = &scenario.faults {
            sim.set_fault_plan(plan).map_err(attribute)?;
        }
        let result = sim.run(scenario.max_cycles);
        let mut outputs = Vec::new();
        for port in sim.output_ports() {
            let received = sim.outputs(&port).map_err(attribute)?.to_vec();
            outputs.push((port, received));
        }
        Ok(ScenarioReport {
            scenario: scenario.name.clone(),
            result,
            outputs,
            bottlenecks: sim.bottlenecks(),
            channels: sim.channel_stats(),
            fault_stats: sim.fault_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_lang::{compile, CompileOptions};
    use tydi_stdlib::with_stdlib;

    fn pipeline_project() -> Project {
        let source = r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance a(passthrough_i<type Byte>),
    instance b(passthrough_i<type Byte>),
    i => a.i,
    a.o => b.i,
    b.o => o,
}
"#;
        let sources = with_stdlib(&[("app.td", source)]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        compile(&refs, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("compile failed:\n{e}"))
            .project
    }

    fn scenarios(count: usize) -> Vec<Scenario> {
        (0..count)
            .map(|k| {
                Scenario::new(format!("scenario-{k}"))
                    .with_feed("i", (0..16).map(|v| Packet::data(v + 100 * k as i64)))
                    .with_backpressure("o", 1 + k as u64 % 4)
            })
            .collect()
    }

    #[test]
    fn batch_aggregates_scenarios() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let batch = SimBatch::new(&project, "top_i", &registry);
        let report = batch.run(&scenarios(4)).expect("batch");
        assert_eq!(report.scenarios.len(), 4);
        assert_eq!(report.completed(), 4);
        assert!(report.deadlocked().is_empty());
        assert_eq!(report.total_delivered(), 4 * 16);
        // Scenario order matches submission order despite sharding.
        for (k, s) in report.scenarios.iter().enumerate() {
            assert_eq!(s.scenario, format!("scenario-{k}"));
            let (_, out) = &s.outputs[0];
            assert_eq!(out.len(), 16);
            assert_eq!(out[0].1, Packet::data(100 * k as i64));
        }
        // Backpressured scenarios take longer than the free-running one.
        assert!(report.scenarios[3].result.cycles > report.scenarios[0].result.cycles);
        let text = report.to_string();
        assert!(text.contains("4 completed"));
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let batch_report = SimBatch::new(&project, "top_i", &registry)
            .run(&scenarios(4))
            .expect("batch");
        for (scenario, batched) in scenarios(4).iter().zip(&batch_report.scenarios) {
            let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
            for (port, every) in &scenario.backpressure {
                sim.set_probe_backpressure(port, *every).unwrap();
            }
            for (port, packets) in &scenario.feeds {
                sim.feed(port, packets.iter().copied()).unwrap();
            }
            let result = sim.run(scenario.max_cycles);
            assert_eq!(result, batched.result, "{}", scenario.name);
            assert_eq!(sim.outputs("o").unwrap(), &batched.outputs[0].1[..]);
        }
    }

    #[test]
    fn batch_reports_deadlocked_scenarios() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let mix = vec![
            Scenario::new("clean").with_feed("i", (0..4).map(Packet::data)),
            Scenario::new("stuck")
                .with_feed("i", (0..16).map(Packet::data))
                .with_backpressure("o", u64::MAX)
                .with_max_cycles(5_000),
        ];
        let report = SimBatch::new(&project, "top_i", &registry)
            .run(&mix)
            .expect("batch");
        assert_eq!(report.completed(), 1);
        assert_eq!(report.deadlocked(), vec!["stuck"]);
        // The merged blockage table names the congested output.
        let worst = report.worst_blockages();
        assert!(worst.iter().any(|b| b.port == "o"));
        // Channel ground truth per scenario: the stuck run saturated a
        // channel and recorded producer-side credit stalls, the clean
        // run did not.
        let stuck = &report.scenarios[1];
        assert!(stuck
            .channels
            .iter()
            .any(|c| c.saturated() && c.refused_pushes > 0));
        let clean = &report.scenarios[0];
        assert!(clean.channels.iter().all(|c| c.occupancy == 0));
    }

    #[test]
    fn batch_errors_name_the_scenario_without_aborting_the_batch() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        // One broken scenario sandwiched between two good ones: the
        // good ones still run, the failure is reported structured and
        // named instead of aborting the whole batch.
        let mix = vec![
            Scenario::new("good-0").with_feed("i", (0..4).map(Packet::data)),
            Scenario::new("typo").with_feed("nope", [Packet::data(1)]),
            Scenario::new("good-1").with_feed("i", (4..8).map(Packet::data)),
        ];
        let report = SimBatch::new(&project, "top_i", &registry)
            .run(&mix)
            .expect("per-scenario errors must not abort the batch");
        assert_eq!(report.scenarios.len(), 2);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failed(), 1);
        let err = &report.errors[0];
        assert_eq!(err.scenario, "typo");
        assert!(matches!(err.error, SimError::UnknownBoundaryPort { .. }));
        assert!(err.to_string().contains("typo"));
        // The rendered report names the failure too.
        let text = report.to_string();
        assert!(text.contains("typo"), "{text}");
        assert!(text.contains("ERROR"), "{text}");
        assert!(text.contains("1 failed"), "{text}");
    }

    #[test]
    fn faulted_scenario_stalls_and_reports_blocked_channels() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        // Permanently stall the boundary output: the pipeline wedges
        // exactly as if the consumer withheld ready forever.
        let plan = FaultPlan::parse("stall(boundary.o,0,*)").expect("plan");
        let faulty = vec![Scenario::new("stalled")
            .with_feed("i", (0..16).map(Packet::data))
            .with_faults(plan)
            .with_max_cycles(5_000)];
        let report = SimBatch::new(&project, "top_i", &registry)
            .run(&faulty)
            .expect("batch");
        assert_eq!(report.deadlocked(), vec!["stalled"]);
        let scenario = &report.scenarios[0];
        let StopReason::Deadlocked {
            blocked_channels, ..
        } = &scenario.result.reason
        else {
            panic!("expected Deadlocked, got {:?}", scenario.result.reason);
        };
        assert!(blocked_channels.contains(&"boundary.o".to_string()));
        assert!(scenario.fault_stats.gated_cycles > 0);
    }

    #[test]
    fn unknown_fault_target_is_a_named_batch_error() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let plan = FaultPlan::parse("stall(no.such.channel,0,*)").expect("plan");
        let bad = vec![Scenario::new("ghost")
            .with_feed("i", [Packet::data(1)])
            .with_faults(plan)];
        let report = SimBatch::new(&project, "top_i", &registry)
            .run(&bad)
            .expect("aggregated");
        assert_eq!(report.failed(), 1);
        assert_eq!(report.errors[0].scenario, "ghost");
        assert!(matches!(
            report.errors[0].error,
            SimError::UnknownFaultTarget {
                kind: "channel",
                ..
            }
        ));
    }

    #[test]
    fn fault_sweep_is_deterministic_per_seed() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let base = FaultPlan::parse("jitter(boundary.o,1,3)").expect("plan");
        let sweep = |seeds: &[u64]| -> Vec<String> {
            let scenarios: Vec<Scenario> = seeds
                .iter()
                .map(|&seed| {
                    Scenario::new(format!("fault-s{seed}"))
                        .with_feed("i", (0..12).map(Packet::data))
                        .with_faults(base.reseeded(seed))
                })
                .collect();
            SimBatch::new(&project, "top_i", &registry)
                .run(&scenarios)
                .expect("sweep")
                .scenarios
                .iter()
                .map(|s| format!("{:?}|{:?}", s.result, s.outputs))
                .collect()
        };
        let first = sweep(&[1, 2, 3]);
        let second = sweep(&[1, 2, 3]);
        assert_eq!(first, second, "same seeds must replay identically");
        // Different seeds roll different jitter: arrival schedules
        // diverge between sweep arms.
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn polling_batch_agrees_with_event_driven_batch() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let event = SimBatch::new(&project, "top_i", &registry)
            .run(&scenarios(3))
            .expect("event batch");
        let polling = SimBatch::new(&project, "top_i", &registry)
            .with_scheduler(SchedulerKind::Polling)
            .run(&scenarios(3))
            .expect("polling batch");
        for (e, p) in event.scenarios.iter().zip(&polling.scenarios) {
            assert_eq!(e.outputs, p.outputs);
            assert_eq!(e.result.finished, p.result.finished);
        }
    }
}
