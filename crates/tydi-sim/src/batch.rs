//! Sharded multi-scenario simulation.
//!
//! A [`SimBatch`] runs N independent stimulus *scenarios* — distinct
//! feeds and backpressure schedules over the same flattened design —
//! and aggregates the per-scenario [`BottleneckReport`]s into one
//! [`BatchReport`]. The design is flattened once and shared immutably;
//! each scenario clones the empty-channel graph into its own
//! [`Simulator`], so scenarios share nothing mutable and shard across
//! threads via the rayon shim's work-stealing `map_stealing` (workers
//! pull the next unclaimed scenario, so one slow scenario never idles
//! the rest); `TYDI_THREADS=1` forces the sequential fallback for
//! debugging and benchmarking.

use crate::behavior::BehaviorRegistry;
use crate::channel::Packet;
use crate::engine::{RunResult, SchedulerKind, SimError, Simulator, StopReason};
use crate::graph::{flatten, SimGraph};
use crate::report::{BottleneckReport, ChannelStats, PortBlockage};
use std::collections::HashMap;
use std::fmt;
use tydi_ir::Project;

/// One stimulus scenario: what to feed, how hard to backpressure, and
/// how long to run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name, used in reports and errors.
    pub name: String,
    /// Packets to queue per boundary input port.
    pub feeds: Vec<(String, Vec<Packet>)>,
    /// `(output port, accept_every)` backpressure schedule.
    pub backpressure: Vec<(String, u64)>,
    /// Simulation budget in cycles.
    pub max_cycles: u64,
    /// Optional override of the quiescence threshold.
    pub idle_threshold: Option<u64>,
}

impl Scenario {
    /// A scenario with no feeds, no backpressure and a 100k-cycle
    /// budget.
    pub fn new(name: impl Into<String>) -> Scenario {
        Scenario {
            name: name.into(),
            feeds: Vec::new(),
            backpressure: Vec::new(),
            max_cycles: 100_000,
            idle_threshold: None,
        }
    }

    /// Queues stimulus packets on a boundary input port.
    pub fn with_feed(
        mut self,
        port: impl Into<String>,
        packets: impl IntoIterator<Item = Packet>,
    ) -> Scenario {
        self.feeds
            .push((port.into(), packets.into_iter().collect()));
        self
    }

    /// Applies backpressure on an output port: accept only every
    /// `n`-th cycle.
    pub fn with_backpressure(mut self, port: impl Into<String>, every: u64) -> Scenario {
        self.backpressure.push((port.into(), every));
        self
    }

    /// Sets the cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Scenario {
        self.max_cycles = max_cycles;
        self
    }

    /// Overrides the quiescence threshold.
    pub fn with_idle_threshold(mut self, cycles: u64) -> Scenario {
        self.idle_threshold = Some(cycles);
        self
    }
}

/// The outcome of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario name.
    pub scenario: String,
    /// Run outcome (cycles, termination reason, deadlock report).
    pub result: RunResult,
    /// Packets observed per boundary output, with arrival cycles,
    /// sorted by port name.
    pub outputs: Vec<(String, Vec<(u64, Packet)>)>,
    /// The scenario's bottleneck report.
    pub bottlenecks: BottleneckReport,
    /// Per-channel occupancy/credit statistics, sorted by name.
    pub channels: Vec<ChannelStats>,
}

impl ScenarioReport {
    /// Total packets delivered across all output ports.
    pub fn delivered(&self) -> usize {
        self.outputs.iter().map(|(_, v)| v.len()).sum()
    }
}

/// A simulation failure attributed to the scenario that hit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// The scenario that failed.
    pub scenario: String,
    /// The underlying structured error.
    pub error: SimError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario `{}`: {}", self.scenario, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Aggregated outcomes of a scenario batch.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Per-scenario reports, in submission order.
    pub scenarios: Vec<ScenarioReport>,
}

impl BatchReport {
    /// Scenarios that ran to proven or assumed completion.
    pub fn completed(&self) -> usize {
        self.scenarios.iter().filter(|s| s.result.finished).count()
    }

    /// Names of scenarios that deadlocked.
    pub fn deadlocked(&self) -> Vec<&str> {
        self.scenarios
            .iter()
            .filter(|s| matches!(s.result.reason, StopReason::Deadlocked { .. }))
            .map(|s| s.scenario.as_str())
            .collect()
    }

    /// Sum of simulated cycles over all scenarios.
    pub fn total_cycles(&self) -> u64 {
        self.scenarios.iter().map(|s| s.result.cycles).sum()
    }

    /// Total packets delivered over all scenarios.
    pub fn total_delivered(&self) -> usize {
        self.scenarios.iter().map(|s| s.delivered()).sum()
    }

    /// Blocked-port totals merged across scenarios: the same
    /// `component.port` blocked in several scenarios accumulates, so
    /// a systemic bottleneck outranks a scenario-local one.
    pub fn worst_blockages(&self) -> Vec<PortBlockage> {
        let mut merged: HashMap<(String, String), u64> = HashMap::new();
        for scenario in &self.scenarios {
            for b in &scenario.bottlenecks.blockages {
                *merged
                    .entry((b.component.clone(), b.port.clone()))
                    .or_insert(0) += b.blocked_cycles;
            }
        }
        let mut blockages: Vec<PortBlockage> = merged
            .into_iter()
            .map(|((component, port), blocked_cycles)| PortBlockage {
                component,
                port,
                blocked_cycles,
            })
            .collect();
        blockages.sort_by(|a, b| {
            b.blocked_cycles
                .cmp(&a.blocked_cycles)
                .then_with(|| a.component.cmp(&b.component))
                .then_with(|| a.port.cmp(&b.port))
        });
        blockages
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Batch report over {} scenario(s):", self.scenarios.len())?;
        for s in &self.scenarios {
            let reason = match &s.result.reason {
                StopReason::Completed => "completed".to_string(),
                StopReason::IdleTimeout => "idle timeout".to_string(),
                StopReason::CycleLimit => "cycle limit".to_string(),
                StopReason::Deadlocked {
                    blocked_ports,
                    blocked_channels,
                } => {
                    let at = if blocked_ports.is_empty() {
                        blocked_channels.join(", ")
                    } else {
                        blocked_ports.join(", ")
                    };
                    format!("DEADLOCKED ({at})")
                }
            };
            writeln!(
                f,
                "  {:<16} {:>8} cycles  {:>6} packet(s)  {reason}",
                s.scenario,
                s.result.cycles,
                s.delivered()
            )?;
        }
        writeln!(
            f,
            "  total: {} completed, {} deadlocked, {} packet(s) in {} cycles",
            self.completed(),
            self.deadlocked().len(),
            self.total_delivered(),
            self.total_cycles()
        )?;
        let worst = self.worst_blockages();
        if !worst.is_empty() {
            writeln!(f, "  worst blocked ports across scenarios:")?;
            for b in worst.iter().take(5) {
                writeln!(
                    f,
                    "    {:>8} blocked cycles  {}.{}",
                    b.blocked_cycles, b.component, b.port
                )?;
            }
        }
        Ok(())
    }
}

/// Shards independent scenarios of one design across threads.
pub struct SimBatch<'a> {
    project: &'a Project,
    top_impl: String,
    registry: &'a BehaviorRegistry,
    scheduler: SchedulerKind,
}

impl<'a> SimBatch<'a> {
    /// A batch over `top_impl`, using the event-driven scheduler.
    pub fn new(
        project: &'a Project,
        top_impl: impl Into<String>,
        registry: &'a BehaviorRegistry,
    ) -> SimBatch<'a> {
        SimBatch {
            project,
            top_impl: top_impl.into(),
            registry,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Selects the cycle loop used for every scenario.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> SimBatch<'a> {
        self.scheduler = kind;
        self
    }

    /// Runs all scenarios, sharded across threads, and aggregates
    /// their reports. The first failure aborts the batch with the
    /// offending scenario named.
    ///
    /// The design is flattened exactly once; every scenario clones the
    /// resulting (empty-channel) [`SimGraph`] instead of re-walking the
    /// implementation hierarchy, so a batch of N scenarios pays for one
    /// flatten, not N.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<BatchReport, BatchError> {
        let graph = flatten(self.project, &self.top_impl, 2).map_err(|e| BatchError {
            scenario: scenarios
                .first()
                .map(|s| s.name.clone())
                .unwrap_or_else(|| "<empty batch>".to_string()),
            error: SimError::Graph(e),
        })?;
        let workers = rayon::current_num_threads().max(1);
        let results = rayon::map_stealing(scenarios.len(), workers, |i| {
            self.run_scenario(&graph, &scenarios[i])
        });
        let mut reports = Vec::with_capacity(results.len());
        for result in results {
            reports.push(result?);
        }
        Ok(BatchReport { scenarios: reports })
    }

    fn run_scenario(
        &self,
        graph: &SimGraph,
        scenario: &Scenario,
    ) -> Result<ScenarioReport, BatchError> {
        let _span = tydi_obs::trace::span_named("tydi-sim", || format!("sim:{}", scenario.name));
        let attribute = |error: SimError| BatchError {
            scenario: scenario.name.clone(),
            error,
        };
        let mut sim =
            Simulator::from_graph(self.project, graph.clone(), self.registry).map_err(attribute)?;
        sim.set_scheduler(self.scheduler);
        if let Some(threshold) = scenario.idle_threshold {
            sim.set_idle_threshold(threshold);
        }
        for (port, every) in &scenario.backpressure {
            sim.set_probe_backpressure(port, *every)
                .map_err(attribute)?;
        }
        for (port, packets) in &scenario.feeds {
            sim.feed(port, packets.iter().copied()).map_err(attribute)?;
        }
        let result = sim.run(scenario.max_cycles);
        let mut outputs = Vec::new();
        for port in sim.output_ports() {
            let received = sim.outputs(&port).map_err(attribute)?.to_vec();
            outputs.push((port, received));
        }
        Ok(ScenarioReport {
            scenario: scenario.name.clone(),
            result,
            outputs,
            bottlenecks: sim.bottlenecks(),
            channels: sim.channel_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_lang::{compile, CompileOptions};
    use tydi_stdlib::with_stdlib;

    fn pipeline_project() -> Project {
        let source = r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance a(passthrough_i<type Byte>),
    instance b(passthrough_i<type Byte>),
    i => a.i,
    a.o => b.i,
    b.o => o,
}
"#;
        let sources = with_stdlib(&[("app.td", source)]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        compile(&refs, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("compile failed:\n{e}"))
            .project
    }

    fn scenarios(count: usize) -> Vec<Scenario> {
        (0..count)
            .map(|k| {
                Scenario::new(format!("scenario-{k}"))
                    .with_feed("i", (0..16).map(|v| Packet::data(v + 100 * k as i64)))
                    .with_backpressure("o", 1 + k as u64 % 4)
            })
            .collect()
    }

    #[test]
    fn batch_aggregates_scenarios() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let batch = SimBatch::new(&project, "top_i", &registry);
        let report = batch.run(&scenarios(4)).expect("batch");
        assert_eq!(report.scenarios.len(), 4);
        assert_eq!(report.completed(), 4);
        assert!(report.deadlocked().is_empty());
        assert_eq!(report.total_delivered(), 4 * 16);
        // Scenario order matches submission order despite sharding.
        for (k, s) in report.scenarios.iter().enumerate() {
            assert_eq!(s.scenario, format!("scenario-{k}"));
            let (_, out) = &s.outputs[0];
            assert_eq!(out.len(), 16);
            assert_eq!(out[0].1, Packet::data(100 * k as i64));
        }
        // Backpressured scenarios take longer than the free-running one.
        assert!(report.scenarios[3].result.cycles > report.scenarios[0].result.cycles);
        let text = report.to_string();
        assert!(text.contains("4 completed"));
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let batch_report = SimBatch::new(&project, "top_i", &registry)
            .run(&scenarios(4))
            .expect("batch");
        for (scenario, batched) in scenarios(4).iter().zip(&batch_report.scenarios) {
            let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
            for (port, every) in &scenario.backpressure {
                sim.set_probe_backpressure(port, *every).unwrap();
            }
            for (port, packets) in &scenario.feeds {
                sim.feed(port, packets.iter().copied()).unwrap();
            }
            let result = sim.run(scenario.max_cycles);
            assert_eq!(result, batched.result, "{}", scenario.name);
            assert_eq!(sim.outputs("o").unwrap(), &batched.outputs[0].1[..]);
        }
    }

    #[test]
    fn batch_reports_deadlocked_scenarios() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let mix = vec![
            Scenario::new("clean").with_feed("i", (0..4).map(Packet::data)),
            Scenario::new("stuck")
                .with_feed("i", (0..16).map(Packet::data))
                .with_backpressure("o", u64::MAX)
                .with_max_cycles(5_000),
        ];
        let report = SimBatch::new(&project, "top_i", &registry)
            .run(&mix)
            .expect("batch");
        assert_eq!(report.completed(), 1);
        assert_eq!(report.deadlocked(), vec!["stuck"]);
        // The merged blockage table names the congested output.
        let worst = report.worst_blockages();
        assert!(worst.iter().any(|b| b.port == "o"));
        // Channel ground truth per scenario: the stuck run saturated a
        // channel and recorded producer-side credit stalls, the clean
        // run did not.
        let stuck = &report.scenarios[1];
        assert!(stuck
            .channels
            .iter()
            .any(|c| c.saturated() && c.refused_pushes > 0));
        let clean = &report.scenarios[0];
        assert!(clean.channels.iter().all(|c| c.occupancy == 0));
    }

    #[test]
    fn batch_errors_name_the_scenario() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let bad = vec![Scenario::new("typo").with_feed("nope", [Packet::data(1)])];
        let err = SimBatch::new(&project, "top_i", &registry)
            .run(&bad)
            .expect_err("unknown port must fail");
        assert_eq!(err.scenario, "typo");
        assert!(matches!(err.error, SimError::UnknownBoundaryPort { .. }));
        assert!(err.to_string().contains("typo"));
    }

    #[test]
    fn polling_batch_agrees_with_event_driven_batch() {
        let project = pipeline_project();
        let registry = BehaviorRegistry::with_std();
        let event = SimBatch::new(&project, "top_i", &registry)
            .run(&scenarios(3))
            .expect("event batch");
        let polling = SimBatch::new(&project, "top_i", &registry)
            .with_scheduler(SchedulerKind::Polling)
            .run(&scenarios(3))
            .expect("polling batch");
        for (e, p) in event.scenarios.iter().zip(&polling.scenarios) {
            assert_eq!(e.outputs, p.outputs);
            assert_eq!(e.result.finished, p.result.finished);
        }
    }
}
