//! Behavioural models for the standard-library builtins.
//!
//! These are the simulator-side twins of the RTL generators in
//! `tydi-stdlib`: same keys, same handshake semantics, cycle-level
//! timing.

use crate::behavior::{Behavior, BehaviorRegistry, IoCtx, Wake};
use crate::channel::Packet;
use tydi_ir::{Implementation, PortDirection, Streamlet};

/// Registers behaviours for every `std.*` key.
pub fn register_std_behaviors(registry: &mut BehaviorRegistry) {
    registry.register("std.passthrough", |_, _| Ok(Box::new(Passthrough)));
    registry.register("std.duplicator", |_, s| {
        Ok(Box::new(Duplicator {
            outputs: out_ports(s),
        }))
    });
    registry.register("std.voider", |_, _| Ok(Box::new(Voider)));
    registry.register("std.add", binop_factory(|a, b| a.wrapping_add(b)));
    registry.register("std.sub", binop_factory(|a, b| a.wrapping_sub(b)));
    registry.register("std.mul", binop_factory(|a, b| a.wrapping_mul(b)));
    registry.register(
        "std.div",
        binop_factory(|a, b| if b == 0 { 0 } else { a / b }),
    );
    registry.register("std.cmp_eq", binop_factory(|a, b| (a == b) as i64));
    registry.register("std.cmp_ne", binop_factory(|a, b| (a != b) as i64));
    registry.register("std.cmp_lt", binop_factory(|a, b| (a < b) as i64));
    registry.register("std.cmp_le", binop_factory(|a, b| (a <= b) as i64));
    registry.register("std.cmp_gt", binop_factory(|a, b| (a > b) as i64));
    registry.register("std.cmp_ge", binop_factory(|a, b| (a >= b) as i64));
    registry.register("std.eq_const", compare_const_factory(|a, v| a == v));
    registry.register("std.ne_const", compare_const_factory(|a, v| a != v));
    registry.register("std.lt_const", compare_const_factory(|a, v| a < v));
    registry.register("std.le_const", compare_const_factory(|a, v| a <= v));
    registry.register("std.gt_const", compare_const_factory(|a, v| a > v));
    registry.register("std.ge_const", compare_const_factory(|a, v| a >= v));
    registry.register("std.and_n", logic_factory(true));
    registry.register("std.or_n", logic_factory(false));
    registry.register("std.not", |_, _| Ok(Box::new(NotGate)));
    registry.register("std.filter", |_, _| Ok(Box::new(Filter)));
    registry.register("std.sum", reduce_factory(ReduceKind::Sum));
    registry.register("std.count", reduce_factory(ReduceKind::Count));
    registry.register("std.min", reduce_factory(ReduceKind::Min));
    registry.register("std.max", reduce_factory(ReduceKind::Max));
    registry.register("std.demux", |_, s| {
        Ok(Box::new(Demux {
            outputs: out_ports(s),
            sel: 0,
        }))
    });
    registry.register("std.mux", |_, s| {
        Ok(Box::new(Mux {
            inputs: in_ports(s),
            sel: 0,
        }))
    });
    registry.register("std.group_split2", |_, s| {
        let (wa, wb) = group2_widths(s, "i")?;
        Ok(Box::new(GroupSplit2 { wa, wb }))
    });
    registry.register("std.group_combine2", |_, s| {
        let (wa, wb) = group2_widths(s, "o")?;
        Ok(Box::new(GroupCombine2 { wa, wb }))
    });
    registry.register("std.const", |i, _| {
        let remaining = i
            .attributes
            .get("param_n")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| "template parameter `n` is not an integer".to_string())
            })
            .transpose()?;
        Ok(Box::new(ConstSource {
            value: int_param(i, "v")?,
            remaining,
        }))
    });
}

fn out_ports(streamlet: &Streamlet) -> Vec<String> {
    streamlet
        .ports
        .iter()
        .filter(|p| p.direction == PortDirection::Out)
        .map(|p| p.name.clone())
        .collect()
}

fn in_ports(streamlet: &Streamlet) -> Vec<String> {
    streamlet
        .ports
        .iter()
        .filter(|p| p.direction == PortDirection::In)
        .map(|p| p.name.clone())
        .collect()
}

fn int_param(implementation: &Implementation, name: &str) -> Result<i64, String> {
    implementation
        .attributes
        .get(&format!("param_{name}"))
        .ok_or_else(|| format!("missing template parameter `{name}`"))?
        .parse::<i64>()
        .map_err(|_| format!("template parameter `{name}` is not an integer"))
}

/// Optional latency parameter shared by the data operators.
fn latency_of(implementation: &Implementation) -> u64 {
    implementation
        .attributes
        .get("param_latency")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Field widths of the two-field Group carried by `port`.
fn group2_widths(streamlet: &Streamlet, port: &str) -> Result<(u32, u32), String> {
    let p = streamlet
        .port(port)
        .ok_or_else(|| format!("missing port `{port}`"))?;
    let tydi_spec::LogicalType::Stream { element, .. } = &*p.ty else {
        return Err(format!("port `{port}` is not a stream"));
    };
    let fields = element.fields();
    if fields.len() < 2 {
        return Err(format!("port `{port}` must carry a two-field Group"));
    }
    Ok((fields[0].ty.bit_width(), fields[1].ty.bit_width()))
}

fn mask_bits(width: u32) -> i64 {
    if width >= 63 {
        -1
    } else {
        (1i64 << width) - 1
    }
}

/// Splits a packed two-field Group element into its field streams
/// (field `a` occupies the low bits).
struct GroupSplit2 {
    wa: u32,
    wb: u32,
}

impl Behavior for GroupSplit2 {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        let Some(p) = io.peek("i") else { return };
        if io.can_send("a") && io.can_send("b") {
            io.send(
                "a",
                Packet {
                    data: p.data & mask_bits(self.wa),
                    ..p
                },
            );
            io.send(
                "b",
                Packet {
                    data: (p.data >> self.wa) & mask_bits(self.wb),
                    ..p
                },
            );
            io.recv("i");
        } else {
            for port in ["a", "b"] {
                if !io.can_send(port) {
                    io.note_blocked(port);
                }
            }
        }
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

/// Packs two element streams into a Group element.
struct GroupCombine2 {
    wa: u32,
    wb: u32,
}

impl Behavior for GroupCombine2 {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        let (Some(a), Some(b)) = (io.peek("a"), io.peek("b")) else {
            return;
        };
        if !io.can_send("o") {
            io.note_blocked("o");
            return;
        }
        io.recv("a");
        io.recv("b");
        io.send(
            "o",
            Packet {
                data: (a.data & mask_bits(self.wa)) | ((b.data & mask_bits(self.wb)) << self.wa),
                last: a.last.max(b.last),
                empty: a.empty && b.empty,
            },
        );
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

// ---- plumbing -------------------------------------------------------------

struct Passthrough;

impl Behavior for Passthrough {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        if let Some(p) = io.peek("i") {
            if io.can_send("o") {
                io.send("o", p);
                io.recv("i");
            } else {
                io.note_blocked("o");
            }
        }
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

struct Duplicator {
    outputs: Vec<String>,
}

impl Behavior for Duplicator {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        let Some(p) = io.peek("i") else { return };
        // Only acknowledge the input when all outputs accept
        // (paper §IV-C).
        if self.outputs.iter().all(|o| io.can_send(o)) {
            for o in &self.outputs {
                io.send(o, p);
            }
            io.recv("i");
        } else {
            for o in &self.outputs {
                if !io.can_send(o) {
                    io.note_blocked(o);
                }
            }
        }
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

struct Voider;

impl Behavior for Voider {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        io.recv("i");
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

// ---- data operators ---------------------------------------------------------

/// Two-input operator with configurable blocking latency.
struct Binop {
    op: fn(i64, i64) -> i64,
    latency: u64,
    /// (ready-at cycle, packet) when busy.
    pending: Option<(u64, Packet)>,
}

impl Behavior for Binop {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        if let Some((ready_at, packet)) = self.pending {
            if io.cycle() >= ready_at {
                if io.can_send("o") {
                    io.send("o", packet);
                    self.pending = None;
                } else {
                    io.note_blocked("o");
                }
            }
            return;
        }
        let (Some(a), Some(b)) = (io.peek("in0"), io.peek("in1")) else {
            return;
        };
        io.recv("in0");
        io.recv("in1");
        let packet = Packet {
            data: (self.op)(a.data, b.data),
            last: a.last.max(b.last),
            empty: a.empty && b.empty,
        };
        self.pending = Some((io.cycle() + self.latency - 1, packet));
    }

    fn state_label(&self) -> Option<String> {
        Some(
            if self.pending.is_some() {
                "busy"
            } else {
                "idle"
            }
            .to_string(),
        )
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        // The internal latency timer must fire even when both input
        // channels are empty.
        match self.pending {
            Some((ready_at, _)) => Wake::AtCycle(ready_at),
            None => Wake::Auto,
        }
    }
}

fn binop_factory(
    op: fn(i64, i64) -> i64,
) -> impl Fn(&Implementation, &Streamlet) -> Result<Box<dyn Behavior>, String> + Send + Sync {
    move |implementation, _| {
        Ok(Box::new(Binop {
            op,
            latency: latency_of(implementation),
            pending: None,
        }))
    }
}

/// Single-input compare against a constant.
struct CompareConst {
    op: fn(i64, i64) -> bool,
    value: i64,
}

impl Behavior for CompareConst {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        let Some(p) = io.peek("i") else { return };
        if io.can_send("o") {
            io.send(
                "o",
                Packet {
                    data: (self.op)(p.data, self.value) as i64,
                    last: p.last,
                    empty: p.empty,
                },
            );
            io.recv("i");
        } else {
            io.note_blocked("o");
        }
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

fn compare_const_factory(
    op: fn(i64, i64) -> bool,
) -> impl Fn(&Implementation, &Streamlet) -> Result<Box<dyn Behavior>, String> + Send + Sync {
    move |implementation, _| {
        Ok(Box::new(CompareConst {
            op,
            value: int_param(implementation, "v")?,
        }))
    }
}

/// N-ary and/or over boolean streams.
struct LogicN {
    inputs: Vec<String>,
    is_and: bool,
}

impl Behavior for LogicN {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        if !self.inputs.iter().all(|p| io.can_recv(p)) {
            return;
        }
        if !io.can_send("o") {
            io.note_blocked("o");
            return;
        }
        let mut acc = self.is_and;
        let mut last = 0u32;
        let mut all_empty = true;
        for p in &self.inputs {
            let packet = io.recv(p).expect("head checked");
            let b = packet.data != 0;
            acc = if self.is_and { acc && b } else { acc || b };
            last = last.max(packet.last);
            all_empty &= packet.empty;
        }
        io.send(
            "o",
            Packet {
                data: acc as i64,
                last,
                empty: all_empty,
            },
        );
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

fn logic_factory(
    is_and: bool,
) -> impl Fn(&Implementation, &Streamlet) -> Result<Box<dyn Behavior>, String> + Send + Sync {
    move |_, streamlet| {
        Ok(Box::new(LogicN {
            inputs: in_ports(streamlet),
            is_and,
        }))
    }
}

struct NotGate;

impl Behavior for NotGate {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        let Some(p) = io.peek("i") else { return };
        if io.can_send("o") {
            io.send(
                "o",
                Packet {
                    data: (p.data == 0) as i64,
                    ..p
                },
            );
            io.recv("i");
        } else {
            io.note_blocked("o");
        }
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

// ---- stream manipulation -----------------------------------------------------

/// Drops packets whose `keep` flag is 0, preserving dimension closes
/// with empty packets.
struct Filter;

impl Behavior for Filter {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        let (Some(data), Some(keep)) = (io.peek("i"), io.peek("keep")) else {
            return;
        };
        if !io.can_send("o") {
            io.note_blocked("o");
            return;
        }
        io.recv("i");
        io.recv("keep");
        if data.empty || keep.data != 0 {
            io.send("o", data);
        } else if data.last > 0 {
            io.send("o", Packet::close(data.last));
        }
        // Otherwise: silently dropped.
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceKind {
    Sum,
    Count,
    Min,
    Max,
}

/// Reduction over the innermost dimension: consumes a `d >= 1` stream
/// and emits one element per closed innermost sequence.
struct Reduce {
    kind: ReduceKind,
    acc: i64,
    seen: bool,
    pending: Option<Packet>,
}

impl Reduce {
    fn new(kind: ReduceKind) -> Self {
        Reduce {
            kind,
            acc: Self::init(kind),
            seen: false,
            pending: None,
        }
    }

    fn init(kind: ReduceKind) -> i64 {
        match kind {
            ReduceKind::Sum | ReduceKind::Count => 0,
            ReduceKind::Min => i64::MAX,
            ReduceKind::Max => i64::MIN,
        }
    }

    fn absorb(&mut self, value: i64) {
        self.seen = true;
        self.acc = match self.kind {
            ReduceKind::Sum => self.acc.wrapping_add(value),
            ReduceKind::Count => self.acc + 1,
            ReduceKind::Min => self.acc.min(value),
            ReduceKind::Max => self.acc.max(value),
        };
    }
}

impl Behavior for Reduce {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        if let Some(packet) = self.pending {
            if io.can_send("o") {
                io.send("o", packet);
                self.pending = None;
            } else {
                io.note_blocked("o");
            }
            return;
        }
        let Some(p) = io.peek("i") else { return };
        io.recv("i");
        if !p.empty {
            self.absorb(p.data);
        }
        if p.last >= 1 {
            let value = if self.seen { self.acc } else { 0 };
            let out = Packet {
                data: value,
                last: p.last - 1,
                empty: !self.seen && self.kind != ReduceKind::Count && self.kind != ReduceKind::Sum,
            };
            self.acc = Self::init(self.kind);
            self.seen = false;
            if io.can_send("o") {
                io.send("o", out);
            } else {
                self.pending = Some(out);
                io.note_blocked("o");
            }
        }
    }

    fn state_label(&self) -> Option<String> {
        Some(
            if self.pending.is_some() {
                "emit"
            } else if self.seen {
                "accumulating"
            } else {
                "idle"
            }
            .to_string(),
        )
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        // A held result is released by downstream credit (a channel
        // event); otherwise the reducer is input-driven.
        if self.pending.is_some() {
            Wake::OnEvent
        } else {
            Wake::Auto
        }
    }
}

fn reduce_factory(
    kind: ReduceKind,
) -> impl Fn(&Implementation, &Streamlet) -> Result<Box<dyn Behavior>, String> + Send + Sync {
    move |_, _| Ok(Box::new(Reduce::new(kind)))
}

/// Round-robin distributor (the paper's parallelize pattern).
struct Demux {
    outputs: Vec<String>,
    sel: usize,
}

impl Behavior for Demux {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        let Some(p) = io.peek("i") else { return };
        let target = self.outputs[self.sel].clone();
        if io.can_send(&target) {
            io.send(&target, p);
            io.recv("i");
            self.sel = (self.sel + 1) % self.outputs.len();
        } else {
            io.note_blocked(&target);
        }
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

/// Round-robin collector.
struct Mux {
    inputs: Vec<String>,
    sel: usize,
}

impl Behavior for Mux {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        let source = self.inputs[self.sel].clone();
        if io.peek(&source).is_some() {
            if io.can_send("o") {
                let p = io.recv(&source).expect("head checked");
                io.send("o", p);
                self.sel = (self.sel + 1) % self.inputs.len();
            } else {
                io.note_blocked("o");
            }
        }
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::Auto
    }
}

/// Constant source: unbounded (`remaining: None`) or a finite column
/// of `n` rows closing its sequence on the final row.
struct ConstSource {
    value: i64,
    remaining: Option<u64>,
}

impl Behavior for ConstSource {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        match self.remaining {
            Some(0) => {}
            Some(1) => {
                if io.send("o", Packet::last(self.value, 1)) {
                    self.remaining = Some(0);
                }
            }
            Some(n) => {
                if io.send("o", Packet::data(self.value)) {
                    self.remaining = Some(n - 1);
                }
            }
            None => {
                if io.can_send("o") {
                    io.send("o", Packet::data(self.value));
                }
            }
        }
    }

    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        // A spontaneous source drives itself until drained.
        match self.remaining {
            Some(0) => Wake::OnEvent,
            _ => Wake::NextCycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use std::collections::HashMap;

    /// A tiny harness around one behaviour: named input and output
    /// channels plus a tick driver.
    struct Rig {
        behavior: Box<dyn Behavior>,
        channels: Vec<Channel>,
        inputs: HashMap<String, usize>,
        outputs: HashMap<String, usize>,
        blocked: HashMap<String, u64>,
        cycle: u64,
    }

    impl Rig {
        fn new(behavior: Box<dyn Behavior>, ins: &[&str], outs: &[&str]) -> Rig {
            let mut channels = Vec::new();
            let mut inputs = HashMap::new();
            let mut outputs = HashMap::new();
            for name in ins {
                inputs.insert(name.to_string(), channels.len());
                channels.push(Channel::new(format!("in:{name}"), 8));
            }
            for name in outs {
                outputs.insert(name.to_string(), channels.len());
                channels.push(Channel::new(format!("out:{name}"), 8));
            }
            Rig {
                behavior,
                channels,
                inputs,
                outputs,
                blocked: HashMap::new(),
                cycle: 0,
            }
        }

        fn feed(&mut self, port: &str, packets: &[Packet]) {
            let idx = self.inputs[port];
            for p in packets {
                assert!(self.channels[idx].push(*p));
            }
            self.channels[idx].commit();
        }

        fn tick(&mut self) {
            let mut activity = false;
            let mut io = IoCtx {
                cycle: self.cycle,
                channels: &mut self.channels,
                inputs: &self.inputs,
                outputs: &self.outputs,
                blocked: &mut self.blocked,
                activity: &mut activity,
            };
            self.behavior.tick(&mut io);
            for c in &mut self.channels {
                c.commit();
            }
            self.cycle += 1;
        }

        fn drain(&mut self, port: &str) -> Vec<Packet> {
            let idx = self.outputs[port];
            let mut out = Vec::new();
            while let Some(p) = self.channels[idx].pop() {
                out.push(p);
            }
            out
        }

        fn run(&mut self, cycles: u64) {
            for _ in 0..cycles {
                self.tick();
            }
        }
    }

    fn build_std(key: &str, ins: &[&str], outs: &[&str], params: &[(&str, &str)]) -> Rig {
        let registry = BehaviorRegistry::with_std();
        let mut streamlet = Streamlet::new("s");
        let ty = tydi_spec::LogicalType::stream(
            tydi_spec::LogicalType::Bit(32),
            tydi_spec::StreamParams::new(),
        );
        for name in ins {
            streamlet
                .ports
                .push(tydi_ir::Port::new(*name, PortDirection::In, ty.clone()));
        }
        for name in outs {
            streamlet
                .ports
                .push(tydi_ir::Port::new(*name, PortDirection::Out, ty.clone()));
        }
        let mut implementation = Implementation::external("x", "s");
        for (k, v) in params {
            implementation
                .attributes
                .insert(format!("param_{k}"), v.to_string());
        }
        let behavior = registry.build(key, &implementation, &streamlet).unwrap();
        Rig::new(behavior, ins, outs)
    }

    #[test]
    fn adder_adds() {
        let mut rig = build_std("std.add", &["in0", "in1"], &["o"], &[]);
        rig.feed("in0", &[Packet::data(2), Packet::data(10)]);
        rig.feed("in1", &[Packet::data(3), Packet::last(20, 1)]);
        rig.run(6);
        let out = rig.drain("o");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].data, 5);
        assert_eq!(out[1].data, 30);
        assert_eq!(out[1].last, 1);
    }

    #[test]
    fn adder_latency_throttles() {
        // An 8-cycle adder processes at most 1 packet per 8 cycles
        // (the paper's §IV-B motivating example).
        let mut rig = build_std("std.add", &["in0", "in1"], &["o"], &[("latency", "8")]);
        let inputs: Vec<Packet> = (0..4).map(Packet::data).collect();
        rig.feed("in0", &inputs);
        rig.feed("in1", &inputs);
        rig.run(16);
        assert_eq!(
            rig.drain("o").len(),
            2,
            "2 results in 16 cycles at latency 8"
        );
    }

    #[test]
    fn comparator_emits_bool() {
        let mut rig = build_std("std.cmp_lt", &["in0", "in1"], &["o"], &[]);
        rig.feed("in0", &[Packet::data(1), Packet::data(9)]);
        rig.feed("in1", &[Packet::data(5), Packet::data(5)]);
        rig.run(6);
        let out = rig.drain("o");
        assert_eq!(out.iter().map(|p| p.data).collect::<Vec<_>>(), vec![1, 0]);
    }

    #[test]
    fn const_compare() {
        let mut rig = build_std("std.ge_const", &["i"], &["o"], &[("v", "10")]);
        rig.feed("i", &[Packet::data(9), Packet::data(10), Packet::data(11)]);
        rig.run(5);
        let out = rig.drain("o");
        assert_eq!(
            out.iter().map(|p| p.data).collect::<Vec<_>>(),
            vec![0, 1, 1]
        );
    }

    #[test]
    fn and_or_gates() {
        let mut rig = build_std("std.and_n", &["i_0", "i_1"], &["o"], &[]);
        rig.feed("i_0", &[Packet::data(1), Packet::data(1)]);
        rig.feed("i_1", &[Packet::data(0), Packet::data(1)]);
        rig.run(4);
        assert_eq!(
            rig.drain("o").iter().map(|p| p.data).collect::<Vec<_>>(),
            vec![0, 1]
        );

        let mut rig = build_std("std.or_n", &["i_0", "i_1"], &["o"], &[]);
        rig.feed("i_0", &[Packet::data(1), Packet::data(0)]);
        rig.feed("i_1", &[Packet::data(0), Packet::data(0)]);
        rig.run(4);
        assert_eq!(
            rig.drain("o").iter().map(|p| p.data).collect::<Vec<_>>(),
            vec![1, 0]
        );
    }

    #[test]
    fn filter_drops_and_preserves_last() {
        let mut rig = build_std("std.filter", &["i", "keep"], &["o"], &[]);
        rig.feed("i", &[Packet::data(1), Packet::data(2), Packet::last(3, 1)]);
        rig.feed("keep", &[Packet::data(1), Packet::data(0), Packet::data(0)]);
        rig.run(6);
        let out = rig.drain("o");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Packet::data(1));
        // The dropped final element still closes the sequence.
        assert!(out[1].empty);
        assert_eq!(out[1].last, 1);
    }

    #[test]
    fn sum_reduces_innermost_dimension() {
        let mut rig = build_std("std.sum", &["i"], &["o"], &[]);
        rig.feed(
            "i",
            &[
                Packet::data(1),
                Packet::data(2),
                Packet::last(3, 1),
                Packet::last(10, 2),
            ],
        );
        rig.run(8);
        let out = rig.drain("o");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].data, 6);
        assert_eq!(out[0].last, 0);
        assert_eq!(out[1].data, 10);
        assert_eq!(out[1].last, 1); // one level consumed
    }

    #[test]
    fn count_min_max() {
        let mut rig = build_std("std.count", &["i"], &["o"], &[]);
        rig.feed("i", &[Packet::data(5), Packet::data(5), Packet::last(5, 1)]);
        rig.run(6);
        assert_eq!(rig.drain("o")[0].data, 3);

        let mut rig = build_std("std.min", &["i"], &["o"], &[]);
        rig.feed("i", &[Packet::data(5), Packet::data(2), Packet::last(9, 1)]);
        rig.run(6);
        assert_eq!(rig.drain("o")[0].data, 2);

        let mut rig = build_std("std.max", &["i"], &["o"], &[]);
        rig.feed("i", &[Packet::data(5), Packet::data(2), Packet::last(9, 1)]);
        rig.run(6);
        assert_eq!(rig.drain("o")[0].data, 9);
    }

    #[test]
    fn demux_round_robin() {
        let mut rig = build_std("std.demux", &["i"], &["o_0", "o_1"], &[]);
        rig.feed(
            "i",
            &[
                Packet::data(0),
                Packet::data(1),
                Packet::data(2),
                Packet::data(3),
            ],
        );
        rig.run(8);
        assert_eq!(
            rig.drain("o_0").iter().map(|p| p.data).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            rig.drain("o_1").iter().map(|p| p.data).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn mux_round_robin() {
        let mut rig = build_std("std.mux", &["i_0", "i_1"], &["o"], &[]);
        rig.feed("i_0", &[Packet::data(0), Packet::data(2)]);
        rig.feed("i_1", &[Packet::data(1), Packet::data(3)]);
        rig.run(8);
        assert_eq!(
            rig.drain("o").iter().map(|p| p.data).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn const_source_fills_channel() {
        let mut rig = build_std("std.const", &[], &["o"], &[("v", "7")]);
        rig.run(3);
        let out = rig.drain("o");
        assert!(!out.is_empty());
        assert!(out.iter().all(|p| p.data == 7));
    }

    #[test]
    fn duplicator_waits_for_all_sinks() {
        let registry = BehaviorRegistry::with_std();
        let ty = tydi_spec::LogicalType::stream(
            tydi_spec::LogicalType::Bit(8),
            tydi_spec::StreamParams::new(),
        );
        let streamlet = Streamlet::new("s")
            .with_port(tydi_ir::Port::new("i", PortDirection::In, ty.clone()))
            .with_port(tydi_ir::Port::new("o_0", PortDirection::Out, ty.clone()))
            .with_port(tydi_ir::Port::new("o_1", PortDirection::Out, ty));
        let implementation = Implementation::external("d", "s");
        let behavior = registry
            .build("std.duplicator", &implementation, &streamlet)
            .unwrap();
        let mut rig = Rig::new(behavior, &["i"], &["o_0", "o_1"]);
        rig.feed("i", &[Packet::data(42)]);
        rig.run(3);
        assert_eq!(rig.drain("o_0"), vec![Packet::data(42)]);
        assert_eq!(rig.drain("o_1"), vec![Packet::data(42)]);
    }

    #[test]
    fn voider_consumes_everything() {
        let mut rig = build_std("std.voider", &["i"], &[], &[]);
        rig.feed("i", &[Packet::data(1), Packet::data(2)]);
        rig.run(4);
        assert_eq!(rig.channels[rig.inputs["i"]].len(), 0);
    }
}
