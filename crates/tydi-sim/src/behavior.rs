//! Component behaviour models and the behaviour registry.

use crate::channel::{Channel, Packet};
use std::collections::HashMap;
use tydi_ir::{Implementation, Streamlet};

/// The per-tick I/O view a behaviour gets: peek/receive on input
/// ports, send on output ports, and blockage bookkeeping for the
/// bottleneck analysis (paper §V-B).
pub struct IoCtx<'a> {
    pub(crate) cycle: u64,
    pub(crate) channels: &'a mut [Channel],
    pub(crate) inputs: &'a HashMap<String, usize>,
    pub(crate) outputs: &'a HashMap<String, usize>,
    /// Blocked-output counters, shared with the engine. Index is the
    /// component's output port slot.
    pub(crate) blocked: &'a mut HashMap<String, u64>,
    /// Set when any packet moved (for quiescence detection).
    pub(crate) activity: &'a mut bool,
}

impl IoCtx<'_> {
    /// The current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// True when an input port has a packet at its head.
    pub fn can_recv(&self, port: &str) -> bool {
        self.inputs
            .get(port)
            .is_some_and(|&c| self.channels[c].peek().is_some())
    }

    /// The packet at the head of an input port.
    pub fn peek(&self, port: &str) -> Option<Packet> {
        self.inputs
            .get(port)
            .and_then(|&c| self.channels[c].peek().copied())
    }

    /// Consumes (acknowledges) the packet at the head of an input.
    pub fn recv(&mut self, port: &str) -> Option<Packet> {
        let c = *self.inputs.get(port)?;
        let p = self.channels[c].pop();
        if p.is_some() {
            *self.activity = true;
        }
        p
    }

    /// True when an output port can accept a packet this cycle.
    pub fn can_send(&self, port: &str) -> bool {
        self.outputs
            .get(port)
            .is_some_and(|&c| self.channels[c].can_push())
    }

    /// Sends a packet on an output port; returns false (and records a
    /// blocked cycle) when the channel is full.
    pub fn send(&mut self, port: &str, packet: Packet) -> bool {
        let Some(&c) = self.outputs.get(port) else {
            return false;
        };
        if self.channels[c].push(packet) {
            *self.activity = true;
            true
        } else {
            *self.blocked.entry(port.to_string()).or_insert(0) += 1;
            false
        }
    }

    /// Records that the component wanted to send on `port` but was
    /// held up, without attempting the send.
    pub fn note_blocked(&mut self, port: &str) {
        *self.blocked.entry(port.to_string()).or_insert(0) += 1;
    }

    /// True when the channel behind an output port is completely
    /// drained (used to approximate the `port.ack` event).
    pub fn output_drained(&self, port: &str) -> bool {
        self.outputs
            .get(port)
            .is_some_and(|&c| self.channels[c].is_empty())
    }

    /// Input port names, sorted.
    pub fn input_ports(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inputs.keys().cloned().collect();
        v.sort();
        v
    }

    /// Output port names, sorted.
    pub fn output_ports(&self) -> Vec<String> {
        let mut v: Vec<String> = self.outputs.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Scheduling hint returned by [`Behavior::wake`] after every tick.
///
/// Regardless of the hint, a component is always re-stepped when one
/// of its input channels gains a packet or one of its output channels
/// gains credit (a downstream pop); the hint only adds wake-ups the
/// channels cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Channel events are sufficient: the component is a pure function
    /// of its ports and holds no packet internally.
    OnEvent,
    /// Re-tick next cycle unconditionally. The safe default: correct
    /// for any behaviour, including spontaneous sources, at the cost
    /// of polling.
    NextCycle,
    /// An internal timer (e.g. `delay(n)`) fires at the given cycle;
    /// sleep until then unless a channel event arrives earlier.
    AtCycle(u64),
    /// Engine heuristic: poll while any input channel still holds a
    /// packet (the component may consume more), otherwise wait for
    /// channel events. Right for input-driven components without
    /// internal timers.
    Auto,
}

/// A component behaviour model. `tick` is called once per cycle.
pub trait Behavior: Send {
    /// Advances the component by one cycle.
    fn tick(&mut self, io: &mut IoCtx<'_>);

    /// A state label for the state-transition table (paper §V-B);
    /// `None` for stateless components.
    fn state_label(&self) -> Option<String> {
        None
    }

    /// When must the scheduler re-tick this component even without
    /// channel activity? Defaults to the conservative
    /// [`Wake::NextCycle`] (polling) so behaviours that produce
    /// packets spontaneously stay correct without opting in.
    fn wake(&self, _io: &IoCtx<'_>) -> Wake {
        Wake::NextCycle
    }
}

/// Factory signature: builds a behaviour for a concrete elaborated
/// component.
pub type BehaviorFactory =
    dyn Fn(&Implementation, &Streamlet) -> Result<Box<dyn Behavior>, String> + Send + Sync;

/// Maps builtin keys (`std.add`, ...) to behaviour factories.
pub struct BehaviorRegistry {
    factories: HashMap<String, Box<BehaviorFactory>>,
}

impl Default for BehaviorRegistry {
    fn default() -> Self {
        Self::with_std()
    }
}

impl BehaviorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BehaviorRegistry {
            factories: HashMap::new(),
        }
    }

    /// A registry preloaded with every standard-library behaviour.
    pub fn with_std() -> Self {
        let mut reg = BehaviorRegistry::new();
        crate::builtin_behaviors::register_std_behaviors(&mut reg);
        reg
    }

    /// Registers (or replaces) a factory.
    pub fn register(
        &mut self,
        key: impl Into<String>,
        factory: impl Fn(&Implementation, &Streamlet) -> Result<Box<dyn Behavior>, String>
            + Send
            + Sync
            + 'static,
    ) {
        self.factories.insert(key.into(), Box::new(factory));
    }

    /// True when `key` is registered.
    pub fn contains(&self, key: &str) -> bool {
        self.factories.contains_key(key)
    }

    /// Builds a behaviour for `key`.
    pub fn build(
        &self,
        key: &str,
        implementation: &Implementation,
        streamlet: &Streamlet,
    ) -> Result<Box<dyn Behavior>, String> {
        match self.factories.get(key) {
            Some(f) => f(implementation, streamlet),
            None => Err(format!("no behaviour registered for builtin `{key}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;

    fn io_fixture() -> (Vec<Channel>, HashMap<String, usize>, HashMap<String, usize>) {
        let channels = vec![Channel::new("in", 2), Channel::new("out", 1)];
        let mut inputs = HashMap::new();
        inputs.insert("i".to_string(), 0);
        let mut outputs = HashMap::new();
        outputs.insert("o".to_string(), 1);
        (channels, inputs, outputs)
    }

    #[test]
    fn io_recv_send_roundtrip() {
        let (mut channels, inputs, outputs) = io_fixture();
        channels[0].push(Packet::data(7));
        channels[0].commit();
        let mut blocked = HashMap::new();
        let mut activity = false;
        let mut io = IoCtx {
            cycle: 0,
            channels: &mut channels,
            inputs: &inputs,
            outputs: &outputs,
            blocked: &mut blocked,
            activity: &mut activity,
        };
        assert!(io.can_recv("i"));
        assert_eq!(io.peek("i"), Some(Packet::data(7)));
        let p = io.recv("i").unwrap();
        assert!(io.send("o", p));
        assert!(activity);
    }

    #[test]
    fn send_to_full_channel_counts_blockage() {
        let (mut channels, inputs, outputs) = io_fixture();
        let mut blocked = HashMap::new();
        let mut activity = false;
        let mut io = IoCtx {
            cycle: 0,
            channels: &mut channels,
            inputs: &inputs,
            outputs: &outputs,
            blocked: &mut blocked,
            activity: &mut activity,
        };
        assert!(io.send("o", Packet::data(1)));
        assert!(!io.send("o", Packet::data(2))); // capacity 1
        io.note_blocked("o");
        let _ = io;
        assert_eq!(blocked.get("o"), Some(&2));
    }

    #[test]
    fn registry_lookup() {
        let reg = BehaviorRegistry::with_std();
        assert!(reg.contains("std.add"));
        assert!(reg.contains("std.duplicator"));
        assert!(!reg.contains("std.nothing"));
    }
}
