//! Deterministic, seed-reproducible fault injection.
//!
//! A [`FaultPlan`] describes adversarial conditions to weave into a
//! simulation run: credit stalls, randomized ready-latency (jitter),
//! frozen components and periodically dropped credit. Faults gate the
//! *credit* side of the handshake — a faulted channel refuses pushes,
//! exactly as if its consumer withheld `ready` — so every downstream
//! observable (refused-push counters, blocked ports, deadlock reports
//! with exact blocked channels) keeps working unchanged.
//!
//! Randomized faults are driven by a counter-mode PRNG: the decision
//! for `(channel, cycle)` is a pure function of the plan seed, the
//! fault seed, the channel name and the cycle. No mutable RNG state
//! exists anywhere, so a faulted run is byte-deterministic for a given
//! plan + seed at any `TYDI_THREADS` setting and under either
//! scheduler.

use std::fmt;

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Withhold all credit on `channel` for `cycles` cycles starting
    /// at `from_cycle` (`u64::MAX` cycles = forever). The producer
    /// sees a full FIFO and records refused pushes.
    Stall {
        /// Channel name in the flattened graph's scheme.
        channel: String,
        /// First faulted cycle.
        from_cycle: u64,
        /// Fault duration in cycles (saturating).
        cycles: u64,
    },
    /// Randomized ready-latency on `channel`: each cycle, credit is
    /// granted only when the seeded PRNG rolls 0 out of
    /// `max_delay + 1`, giving a mean extra latency of `max_delay`
    /// cycles. `max_delay = 0` is a no-op.
    Jitter {
        /// Channel name in the flattened graph's scheme.
        channel: String,
        /// Per-fault seed, mixed with the plan seed.
        seed: u64,
        /// Mean extra ready-latency in cycles.
        max_delay: u64,
    },
    /// Stop `component` from firing at `at_cycle` and every cycle
    /// after: the component is removed from the scheduler's due list,
    /// so its inputs back up and its outputs starve.
    Freeze {
        /// Hierarchical component path in the flattened graph.
        component: String,
        /// First cycle at which the component no longer fires.
        at_cycle: u64,
    },
    /// Drop credit on `channel` every `every_n`-th cycle (cycles
    /// `n-1, 2n-1, ...`). `every_n = 1` blocks every cycle.
    DropCredit {
        /// Channel name in the flattened graph's scheme.
        channel: String,
        /// Period of the credit drop (minimum 1).
        every_n: u64,
    },
}

impl Fault {
    /// The channel or component this fault targets.
    pub fn target(&self) -> &str {
        match self {
            Fault::Stall { channel, .. }
            | Fault::Jitter { channel, .. }
            | Fault::DropCredit { channel, .. } => channel,
            Fault::Freeze { component, .. } => component,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Stall {
                channel,
                from_cycle,
                cycles,
            } => {
                if *cycles == u64::MAX {
                    write!(f, "stall({channel},{from_cycle},*)")
                } else {
                    write!(f, "stall({channel},{from_cycle},{cycles})")
                }
            }
            Fault::Jitter {
                channel,
                seed,
                max_delay,
            } => write!(f, "jitter({channel},{seed},{max_delay})"),
            Fault::Freeze {
                component,
                at_cycle,
            } => write!(f, "freeze({component},{at_cycle})"),
            Fault::DropCredit { channel, every_n } => write!(f, "drop({channel},{every_n})"),
        }
    }
}

/// A set of faults plus a plan-level seed mixed into every randomized
/// decision. [`FaultPlan::reseeded`] derives per-sweep variants that
/// keep the same structure but roll different jitter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The injected faults, in spec order.
    pub faults: Vec<Fault>,
    /// Plan-level seed (sweeps re-seed this).
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Sets the plan-level seed.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The same fault structure under a different plan seed — one arm
    /// of an `--inject-sweep`.
    pub fn reseeded(&self, seed: u64) -> FaultPlan {
        FaultPlan {
            faults: self.faults.clone(),
            seed,
        }
    }

    /// Parses an inject spec: `;`-separated clauses, each
    /// `kind(target,args...)`.
    ///
    /// | clause | meaning |
    /// |---|---|
    /// | `stall(CH,FROM,N)` | withhold credit on `CH` for `N` cycles from cycle `FROM` (`N` = `*` for forever) |
    /// | `jitter(CH,SEED,MAX)` | randomized ready-latency on `CH`, mean `MAX` cycles |
    /// | `freeze(COMP,AT)` | component `COMP` stops firing at cycle `AT` |
    /// | `drop(CH,N)` | drop credit on `CH` every `N`-th cycle |
    ///
    /// Channel names use the flattened graph's scheme (e.g.
    /// `boundary.o` or `top.dup.o[1] -> top.drag.i`), which may contain
    /// anything except `(`, `)`, `,` and `;`.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultParseError> {
        let mut plan = FaultPlan::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            plan.faults.push(parse_clause(clause)?);
        }
        if plan.is_empty() {
            return Err(FaultParseError {
                clause: spec.to_string(),
                message: "no fault clauses found".to_string(),
            });
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// A malformed `--inject` spec clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The offending clause.
    pub clause: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault clause `{}`: {}",
            self.clause, self.message
        )
    }
}

impl std::error::Error for FaultParseError {}

fn parse_clause(clause: &str) -> Result<Fault, FaultParseError> {
    let err = |message: &str| FaultParseError {
        clause: clause.to_string(),
        message: message.to_string(),
    };
    let open = clause
        .find('(')
        .ok_or_else(|| err("expected `kind(...)`"))?;
    if !clause.ends_with(')') {
        return Err(err("expected closing `)`"));
    }
    let kind = clause[..open].trim();
    let body = &clause[open + 1..clause.len() - 1];
    let args: Vec<&str> = body.split(',').map(str::trim).collect();
    let arity = |n: usize| {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(&format!(
                "expected {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    let number = |text: &str, what: &str| {
        text.parse::<u64>().map_err(|_| {
            err(&format!(
                "{what} must be a non-negative integer, got `{text}`"
            ))
        })
    };
    let target = |text: &str, what: &str| {
        if text.is_empty() {
            Err(err(&format!("{what} name is empty")))
        } else {
            Ok(text.to_string())
        }
    };
    match kind {
        "stall" => {
            arity(3)?;
            let cycles = if args[2] == "*" {
                u64::MAX
            } else {
                number(args[2], "cycles")?
            };
            Ok(Fault::Stall {
                channel: target(args[0], "channel")?,
                from_cycle: number(args[1], "from_cycle")?,
                cycles,
            })
        }
        "jitter" => {
            arity(3)?;
            Ok(Fault::Jitter {
                channel: target(args[0], "channel")?,
                seed: number(args[1], "seed")?,
                max_delay: number(args[2], "max_delay")?,
            })
        }
        "freeze" => {
            arity(2)?;
            Ok(Fault::Freeze {
                component: target(args[0], "component")?,
                at_cycle: number(args[1], "at_cycle")?,
            })
        }
        "drop" => {
            arity(2)?;
            let every_n = number(args[1], "every_n")?;
            if every_n == 0 {
                return Err(err("every_n must be at least 1"));
            }
            Ok(Fault::DropCredit {
                channel: target(args[0], "channel")?,
                every_n,
            })
        }
        other => Err(err(&format!(
            "unknown fault kind `{other}` (expected stall, jitter, freeze or drop)"
        ))),
    }
}

/// Counters of what the injected faults actually did, published under
/// `sim.fault.*` by the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Channel-cycles on which a fault withheld credit.
    pub gated_cycles: u64,
    /// Component ticks suppressed by `Freeze` faults.
    pub frozen_ticks: u64,
}

/// Counter-mode PRNG decision: stateless `splitmix64`-style finalizer
/// over `(seed, salt, cycle)`. Used for jitter; never mutated, so the
/// schedule is reproducible from the plan alone.
pub(crate) fn mix(seed: u64, salt: u64, cycle: u64) -> u64 {
    let mut z = seed ^ salt.rotate_left(17) ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a of a name: the per-channel salt for [`mix`].
pub(crate) fn name_salt(name: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let plan = FaultPlan::parse(
            "stall(boundary.o,5,10); jitter(a -> b,7,3); freeze(top.drag,12); drop(x,4)",
        )
        .expect("parse");
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(
            plan.faults[0],
            Fault::Stall {
                channel: "boundary.o".to_string(),
                from_cycle: 5,
                cycles: 10,
            }
        );
        assert_eq!(
            plan.faults[1],
            Fault::Jitter {
                channel: "a -> b".to_string(),
                seed: 7,
                max_delay: 3,
            }
        );
        assert_eq!(
            plan.faults[2],
            Fault::Freeze {
                component: "top.drag".to_string(),
                at_cycle: 12,
            }
        );
        assert_eq!(
            plan.faults[3],
            Fault::DropCredit {
                channel: "x".to_string(),
                every_n: 4,
            }
        );
    }

    #[test]
    fn round_trips_through_display() {
        let spec = "stall(boundary.o,0,*);jitter(a -> b,7,3);freeze(top.drag,12);drop(x,4)";
        let plan = FaultPlan::parse(spec).expect("parse");
        assert_eq!(plan.to_string(), spec);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn indefinite_stall_uses_star() {
        let plan = FaultPlan::parse("stall(ch,3,*)").unwrap();
        assert_eq!(
            plan.faults[0],
            Fault::Stall {
                channel: "ch".to_string(),
                from_cycle: 3,
                cycles: u64::MAX,
            }
        );
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "",
            "stall",
            "stall(ch,1)",
            "stall(,1,2)",
            "stall(ch,x,2)",
            "drop(ch,0)",
            "wobble(ch,1)",
            "stall(ch,1,2",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn reseed_keeps_structure() {
        let plan = FaultPlan::parse("jitter(ch,1,3)").unwrap();
        let other = plan.reseeded(99);
        assert_eq!(other.faults, plan.faults);
        assert_eq!(other.seed, 99);
    }

    #[test]
    fn mix_is_deterministic_and_seed_sensitive() {
        let salt = name_salt("boundary.o");
        assert_eq!(mix(1, salt, 10), mix(1, salt, 10));
        assert_ne!(mix(1, salt, 10), mix(2, salt, 10));
        assert_ne!(mix(1, salt, 10), mix(1, salt, 11));
        assert_ne!(mix(1, salt, 10), mix(1, name_salt("boundary.x"), 10));
    }
}
