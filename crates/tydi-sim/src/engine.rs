//! The simulation engine: event-driven scheduler, stimulus feeders,
//! output probes, quiescence/deadlock detection and metric collection.
//!
//! Components are stepped from a ready-set worklist rather than polled
//! every cycle: a component runs when one of its input channels gained
//! a packet, one of its output channels gained credit, or its own
//! [`Wake`] hint (internal `delay(n)` timers, spontaneous sources)
//! says so. Cycles in which nothing is scheduled are skipped outright,
//! so sparse or heavily backpressured stimulus costs time proportional
//! to the *events*, not to the simulated cycle count. The original
//! poll-everything loop is kept behind [`SchedulerKind::Polling`] for
//! differential testing and benchmarking.

use crate::behavior::{Behavior, BehaviorRegistry, IoCtx, Wake};
use crate::channel::{Channel, Packet};
use crate::fault::{self, Fault, FaultPlan, FaultStats};
use crate::graph::{flatten, ComponentNode, GraphError, SimGraph};
use crate::interp::SimInterpreter;
use crate::report::{BottleneckReport, ChannelStats, PortBlockage, SimReport};
use std::collections::{BTreeMap, HashMap};
use tydi_ir::Project;

/// Simulator construction/run errors.
///
/// Every variant carries the component path and/or port it concerns as
/// structured fields, so batch reports can aggregate failures without
/// parsing rendered strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Graph construction failed.
    Graph(GraphError),
    /// A component references IR the project does not contain — an
    /// inconsistency that used to be papered over with a fabricated
    /// `__wire` implementation.
    MissingIr {
        /// Hierarchical path of the component.
        component: String,
        /// The definition that could not be found.
        missing: String,
    },
    /// A behaviour could not be built.
    Behaviour {
        /// Hierarchical path of the component.
        component: String,
        /// Why the behaviour factory failed.
        message: String,
    },
    /// A port name passed to `feed`/`outputs` is not a boundary port.
    UnknownBoundaryPort {
        /// The requested port.
        port: String,
        /// The boundary ports that do exist, sorted.
        available: Vec<String>,
    },
    /// A fault plan targets a channel or component the flattened
    /// design does not contain.
    UnknownFaultTarget {
        /// `"channel"` or `"component"`.
        kind: &'static str,
        /// The requested name.
        target: String,
        /// The names that do exist, sorted.
        available: Vec<String>,
    },
}

impl SimError {
    fn unknown_port(port: &str, known: &HashMap<String, impl Sized>) -> SimError {
        let mut available: Vec<String> = known.keys().cloned().collect();
        available.sort();
        SimError::UnknownBoundaryPort {
            port: port.to_string(),
            available,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Graph(e) => write!(f, "{e}"),
            SimError::MissingIr { component, missing } => {
                write!(
                    f,
                    "component `{component}` references missing IR: {missing}"
                )
            }
            SimError::Behaviour { component, message } => {
                write!(f, "cannot build behaviour for `{component}`: {message}")
            }
            SimError::UnknownBoundaryPort { port, available } => {
                write!(
                    f,
                    "unknown boundary port `{port}` (available: {})",
                    available.join(", ")
                )
            }
            SimError::UnknownFaultTarget {
                kind,
                target,
                available,
            } => {
                write!(
                    f,
                    "fault plan targets unknown {kind} `{target}` (available: {})",
                    available.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<GraphError> for SimError {
    fn from(e: GraphError) -> Self {
        SimError::Graph(e)
    }
}

struct RunningComponent {
    node: ComponentNode,
    behavior: Box<dyn Behavior>,
    blocked: HashMap<String, u64>,
    last_state: Option<String>,
}

struct Feeder {
    channel: usize,
    pending: std::collections::VecDeque<Packet>,
    sent: Vec<(u64, Packet)>,
}

struct Probe {
    channel: usize,
    received: Vec<(u64, Packet)>,
    /// Accept a packet only every `accept_every` cycles (1 = always).
    accept_every: u64,
}

/// A [`FaultPlan`] resolved against one flattened design: names mapped
/// to channel/component indices, plus the per-channel gate state the
/// scheduler uses to detect fault transitions.
#[derive(Default)]
struct FaultState {
    /// `(channel, from, until-exclusive)` credit stalls.
    stalls: Vec<(usize, u64, u64)>,
    /// `(channel, effective seed, name salt, max_delay)` jitters.
    jitters: Vec<(usize, u64, u64, u64)>,
    /// `(channel, period)` periodic credit drops.
    drops: Vec<(usize, u64)>,
    /// `(component, at_cycle)` freezes.
    freezes: Vec<(usize, u64)>,
    /// Sorted unique channel indices carrying at least one credit
    /// fault; `prev` holds the gate value last applied per entry.
    gated: Vec<usize>,
    prev: Vec<bool>,
    stats: FaultStats,
}

impl FaultState {
    fn is_empty(&self) -> bool {
        self.stalls.is_empty()
            && self.jitters.is_empty()
            && self.drops.is_empty()
            && self.freezes.is_empty()
    }

    /// Whether any fault withholds `channel`'s credit on `cycle` — a
    /// pure function of the plan, so the schedule is reproducible.
    fn blocked_at(&self, channel: usize, cycle: u64) -> bool {
        self.stalls
            .iter()
            .any(|&(c, from, until)| c == channel && cycle >= from && cycle < until)
            || self
                .drops
                .iter()
                .any(|&(c, n)| c == channel && cycle % n == n - 1)
            || self.jitters.iter().any(|&(c, seed, salt, max)| {
                c == channel && max > 0 && !fault::mix(seed, salt, cycle).is_multiple_of(max + 1)
            })
    }

    fn frozen(&self, component: usize, cycle: u64) -> bool {
        self.freezes
            .iter()
            .any(|&(c, at)| c == component && cycle >= at)
    }

    /// The earliest cycle strictly after `cycle` at which some credit
    /// gate may change state. Jitter and periodic drops can flip every
    /// cycle, so their presence pins this to `cycle + 1`; permanent
    /// stalls (`until == u64::MAX`) never transition.
    fn next_transition(&self, cycle: u64) -> Option<u64> {
        if !self.drops.is_empty() || self.jitters.iter().any(|&(_, _, _, max)| max > 0) {
            return Some(cycle.saturating_add(1));
        }
        self.stalls
            .iter()
            .flat_map(|&(_, from, until)| [from, until])
            .filter(|&at| at > cycle && at != u64::MAX)
            .min()
    }
}

/// Which cycle loop drives the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Event-driven ready-set worklist (the default): components are
    /// stepped only when scheduled, inert cycles are skipped.
    #[default]
    EventDriven,
    /// The original poll-everything loop: every component ticks every
    /// cycle. Kept for differential testing and benchmarks.
    Polling,
}

/// Why a [`Simulator::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// Provably quiescent with every feeder drained, every channel
    /// empty and nothing scheduled: the run is complete.
    Completed,
    /// Quiescent with packets still in flight or stimuli undelivered.
    Deadlocked {
        /// `component.port` names with blocked-send time, worst first.
        blocked_ports: Vec<String>,
        /// The full blocked cycle as channel names: every channel still
        /// holding packets or refusing pushes when the design stalled,
        /// worst first. Channel names match the flattened graph's
        /// scheme, so static stall cones are directly comparable.
        blocked_channels: Vec<String>,
    },
    /// No packet moved for the idle threshold, but components were
    /// still being polled, so quiescence is assumed rather than
    /// proven (raise the threshold via
    /// [`Simulator::set_idle_threshold`] for long internal delays).
    IdleTimeout,
    /// The `max_cycles` budget ran out while the design was active.
    CycleLimit,
}

/// Outcome of a [`Simulator::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Cycles actually simulated.
    pub cycles: u64,
    /// True when the design went quiescent with nothing in flight.
    pub finished: bool,
    /// A deadlock/stall report when the design went quiescent with
    /// packets still in flight (paper §V-B deadlock identification).
    pub deadlock: Option<DeadlockReport>,
    /// The typed termination reason.
    pub reason: StopReason,
}

/// Where a stalled design is stuck.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle at which quiescence was declared.
    pub cycle: u64,
    /// Channels still holding packets: `(name, occupancy)`.
    pub stuck_channels: Vec<(String, usize)>,
    /// Boundary ports with undelivered stimuli.
    pub pending_inputs: Vec<String>,
}

/// A handshake-accurate simulator for one top-level implementation.
pub struct Simulator {
    channels: Vec<Channel>,
    components: Vec<RunningComponent>,
    feeders: HashMap<String, Feeder>,
    probes: HashMap<String, Probe>,
    cycle: u64,
    last_activity: u64,
    /// Recorded `(cycle, component path, from, to)` state transitions.
    transitions: Vec<(u64, String, String, String)>,
    /// Quiescence threshold in idle cycles.
    idle_threshold: u64,
    /// Mapping from the simulated clock domain to a physical clock
    /// (paper §V-B: "the mapping from the clock-domain to physical
    /// frequency and phase").
    physical_clock: Option<tydi_spec::clock::PhysicalClock>,
    scheduler: SchedulerKind,
    /// Future component wake-ups: cycle -> component indices. Entries
    /// are lazily invalidated through `next_wake`.
    wakes: BTreeMap<u64, Vec<usize>>,
    /// Earliest queued wake-up per component (`u64::MAX` = none).
    next_wake: Vec<u64>,
    /// Channel index -> components reading it (woken on new packets).
    channel_sinks: Vec<Vec<usize>>,
    /// Channel index -> components writing it (woken on new credit).
    channel_sources: Vec<Vec<usize>>,
    /// Resolved fault plan (empty = no injection).
    faults: FaultState,
}

/// Builds the behaviour for one flattened component, resolving its IR
/// from the project. Synthetic nodes (implicit wires fabricated by the
/// flattener) use a reconstructed streamlet; for real nodes a failed
/// lookup is an IR inconsistency and errors instead of being masked.
fn build_behavior(
    project: &Project,
    registry: &BehaviorRegistry,
    node: &ComponentNode,
) -> Result<Box<dyn Behavior>, SimError> {
    if let Some(key) = &node.builtin {
        let (implementation, streamlet) = if node.synthetic {
            (
                tydi_ir::Implementation::external("__wire", "__wire"),
                reconstruct_streamlet(node),
            )
        } else {
            let implementation = project
                .implementation(&node.impl_name)
                .cloned()
                .ok_or_else(|| SimError::MissingIr {
                    component: node.path.clone(),
                    missing: format!("implementation `{}`", node.impl_name),
                })?;
            let streamlet = project
                .streamlet(&implementation.streamlet)
                .cloned()
                .ok_or_else(|| SimError::MissingIr {
                    component: node.path.clone(),
                    missing: format!("streamlet `{}`", implementation.streamlet),
                })?;
            (implementation, streamlet)
        };
        registry
            .build(key, &implementation, &streamlet)
            .map_err(|message| SimError::Behaviour {
                component: node.path.clone(),
                message,
            })
    } else if let Some(source) = &node.sim_source {
        Ok(Box::new(SimInterpreter::from_source(source).map_err(
            |message| SimError::Behaviour {
                component: node.path.clone(),
                message,
            },
        )?))
    } else {
        Err(SimError::Behaviour {
            component: node.path.clone(),
            message: "no behaviour available".to_string(),
        })
    }
}

/// Queues a wake-up for component `index` at `cycle` (no-op when an
/// earlier wake-up is already queued).
fn schedule(
    wakes: &mut BTreeMap<u64, Vec<usize>>,
    next_wake: &mut [u64],
    index: usize,
    cycle: u64,
) {
    if cycle < next_wake[index] {
        next_wake[index] = cycle;
        wakes.entry(cycle).or_default().push(index);
    }
}

impl Simulator {
    /// Builds a simulator for `top_impl`, resolving behaviours from
    /// `registry` (builtin keys) and from simulation code.
    pub fn new(
        project: &Project,
        top_impl: &str,
        registry: &BehaviorRegistry,
    ) -> Result<Simulator, SimError> {
        let graph = flatten(project, top_impl, 2)?;
        Simulator::from_graph(project, graph, registry)
    }

    /// Builds a simulator from an already-flattened graph. Batch runs
    /// flatten the design once and clone the (empty-channel) graph per
    /// scenario instead of re-walking the hierarchy every time.
    pub fn from_graph(
        project: &Project,
        graph: SimGraph,
        registry: &BehaviorRegistry,
    ) -> Result<Simulator, SimError> {
        let mut components = Vec::with_capacity(graph.components.len());
        for node in graph.components {
            let behavior = build_behavior(project, registry, &node)?;
            components.push(RunningComponent {
                node,
                behavior,
                blocked: HashMap::new(),
                last_state: None,
            });
        }
        let feeders = graph
            .boundary_inputs
            .into_iter()
            .map(|(port, channel)| {
                (
                    port,
                    Feeder {
                        channel,
                        pending: Default::default(),
                        sent: Vec::new(),
                    },
                )
            })
            .collect();
        let probes = graph
            .boundary_outputs
            .into_iter()
            .map(|(port, channel)| {
                (
                    port,
                    Probe {
                        channel,
                        received: Vec::new(),
                        accept_every: 1,
                    },
                )
            })
            .collect();
        // Every component gets an initial tick at cycle 0; after that
        // the wake lists and hints drive the schedule.
        let component_count = components.len();
        let mut wakes = BTreeMap::new();
        if component_count > 0 {
            wakes.insert(0u64, (0..component_count).collect::<Vec<_>>());
        }
        Ok(Simulator {
            channels: graph.channels,
            components,
            feeders,
            probes,
            cycle: 0,
            last_activity: 0,
            transitions: Vec::new(),
            idle_threshold: 64,
            physical_clock: None,
            scheduler: SchedulerKind::default(),
            wakes,
            next_wake: vec![0; component_count],
            channel_sinks: graph.channel_sinks,
            channel_sources: graph.channel_sources,
            faults: FaultState::default(),
        })
    }

    /// Installs a fault plan, resolving its channel and component
    /// names against the flattened design. Replaces any previous plan;
    /// unknown targets produce [`SimError::UnknownFaultTarget`].
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        let mut state = FaultState::default();
        let channels = &self.channels;
        let components = &self.components;
        let channel_index = |name: &str| -> Result<usize, SimError> {
            channels.iter().position(|c| c.name == name).ok_or_else(|| {
                let mut available: Vec<String> = channels.iter().map(|c| c.name.clone()).collect();
                available.sort();
                SimError::UnknownFaultTarget {
                    kind: "channel",
                    target: name.to_string(),
                    available,
                }
            })
        };
        let component_index = |name: &str| -> Result<usize, SimError> {
            components
                .iter()
                .position(|c| c.node.path == name)
                .ok_or_else(|| {
                    let mut available: Vec<String> =
                        components.iter().map(|c| c.node.path.clone()).collect();
                    available.sort();
                    SimError::UnknownFaultTarget {
                        kind: "component",
                        target: name.to_string(),
                        available,
                    }
                })
        };
        for injected in &plan.faults {
            match injected {
                Fault::Stall {
                    channel,
                    from_cycle,
                    cycles,
                } => {
                    state.stalls.push((
                        channel_index(channel)?,
                        *from_cycle,
                        from_cycle.saturating_add(*cycles),
                    ));
                }
                Fault::Jitter {
                    channel,
                    seed,
                    max_delay,
                } => {
                    let effective = plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
                    state.jitters.push((
                        channel_index(channel)?,
                        effective,
                        fault::name_salt(channel),
                        *max_delay,
                    ));
                }
                Fault::Freeze {
                    component,
                    at_cycle,
                } => {
                    state.freezes.push((component_index(component)?, *at_cycle));
                }
                Fault::DropCredit { channel, every_n } => {
                    state
                        .drops
                        .push((channel_index(channel)?, (*every_n).max(1)));
                }
            }
        }
        let mut gated: Vec<usize> = state
            .stalls
            .iter()
            .map(|&(c, _, _)| c)
            .chain(state.jitters.iter().map(|&(c, _, _, _)| c))
            .chain(state.drops.iter().map(|&(c, _)| c))
            .collect();
        gated.sort_unstable();
        gated.dedup();
        state.prev = vec![false; gated.len()];
        state.gated = gated;
        for channel in &mut self.channels {
            channel.set_fault_blocked(false);
        }
        self.faults = state;
        Ok(())
    }

    /// Counters of what the installed faults actually did so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats
    }

    /// Selects the cycle loop (event-driven by default).
    pub fn set_scheduler(&mut self, kind: SchedulerKind) {
        self.scheduler = kind;
        if matches!(kind, SchedulerKind::EventDriven) {
            // Re-arm everything: the polling loop does not maintain
            // the wake queue.
            for index in 0..self.components.len() {
                let cycle = self.cycle;
                schedule(&mut self.wakes, &mut self.next_wake, index, cycle);
            }
        }
    }

    /// The active cycle loop.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Sets the quiescence threshold: how many consecutive idle cycles
    /// before a run is declared terminated. Designs with internal
    /// delays longer than the default of 64 must raise it.
    pub fn set_idle_threshold(&mut self, cycles: u64) {
        self.idle_threshold = cycles.max(1);
    }

    /// Binds the simulation's clock domain to a physical frequency so
    /// cycle counts convert to wall-clock time (paper §V-B).
    pub fn set_physical_clock(&mut self, clock: tydi_spec::clock::PhysicalClock) {
        self.physical_clock = Some(clock);
    }

    /// The current simulated time in seconds, when a physical clock
    /// has been bound.
    pub fn elapsed_seconds(&self) -> Option<f64> {
        self.physical_clock
            .as_ref()
            .map(|c| c.cycles_to_seconds(self.cycle))
    }

    /// Cycles up to the last packet movement: the active window,
    /// excluding any trailing idle cycles spent detecting quiescence.
    pub fn active_cycles(&self) -> u64 {
        self.last_activity
    }

    /// Observed throughput of an output port in elements per second,
    /// when a physical clock has been bound. Computed over the active
    /// window ([`active_cycles`](Simulator::active_cycles)), so the
    /// trailing idle tail of a run does not dilute the figure.
    pub fn throughput_hz(&self, port: &str) -> Result<Option<f64>, SimError> {
        let delivered = self.outputs(port)?.len() as f64;
        Ok(self
            .physical_clock
            .as_ref()
            .map(|c| c.cycles_to_seconds(self.active_cycles()))
            .filter(|&s| s > 0.0)
            .map(|s| delivered / s))
    }

    /// Queues stimulus packets on a boundary input port.
    pub fn feed(
        &mut self,
        port: &str,
        packets: impl IntoIterator<Item = Packet>,
    ) -> Result<(), SimError> {
        let feeder = match self.feeders.get_mut(port) {
            Some(f) => f,
            None => return Err(SimError::unknown_port(port, &self.feeders)),
        };
        feeder.pending.extend(packets);
        Ok(())
    }

    /// Applies backpressure on an output: accept only every `n`-th
    /// cycle.
    pub fn set_probe_backpressure(&mut self, port: &str, n: u64) -> Result<(), SimError> {
        let probe = match self.probes.get_mut(port) {
            Some(p) => p,
            None => return Err(SimError::unknown_port(port, &self.probes)),
        };
        probe.accept_every = n.max(1);
        Ok(())
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Packets observed on a boundary output, with arrival cycles.
    pub fn outputs(&self, port: &str) -> Result<&[(u64, Packet)], SimError> {
        self.probes
            .get(port)
            .map(|p| p.received.as_slice())
            .ok_or_else(|| SimError::unknown_port(port, &self.probes))
    }

    /// Stimuli actually injected, with injection cycles.
    pub fn injected(&self, port: &str) -> Result<&[(u64, Packet)], SimError> {
        self.feeders
            .get(port)
            .map(|f| f.sent.as_slice())
            .ok_or_else(|| SimError::unknown_port(port, &self.feeders))
    }

    /// The components due to tick this cycle: every queued wake-up at
    /// or before the current cycle, deduplicated and in index order so
    /// results match the polling loop's iteration order.
    fn take_due(&mut self) -> Vec<usize> {
        let mut due = Vec::new();
        while let Some((&at, _)) = self.wakes.first_key_value() {
            if at > self.cycle {
                break;
            }
            let (_, indices) = self.wakes.pop_first().expect("checked non-empty");
            for index in indices {
                // Entries whose component was re-queued earlier are
                // stale; the live entry is the one matching next_wake.
                if self.next_wake[index] <= self.cycle {
                    self.next_wake[index] = u64::MAX;
                    due.push(index);
                }
            }
        }
        due.sort_unstable();
        due.dedup();
        due
    }

    /// Applies this cycle's injected credit gates to the faulted
    /// channels. A gate releasing (blocked last cycle, clear now) is a
    /// credit event: producers are woken exactly as if a pop freed
    /// FIFO space, so stalled components resume without polling.
    fn apply_fault_gates(&mut self) {
        let event_driven = matches!(self.scheduler, SchedulerKind::EventDriven);
        for slot in 0..self.faults.gated.len() {
            let channel = self.faults.gated[slot];
            let blocked = self.faults.blocked_at(channel, self.cycle);
            let was = self.faults.prev[slot];
            self.faults.prev[slot] = blocked;
            self.channels[channel].set_fault_blocked(blocked);
            if blocked {
                self.faults.stats.gated_cycles += 1;
            }
            if event_driven && was && !blocked {
                let cycle = self.cycle;
                for index in 0..self.channel_sources[channel].len() {
                    let source = self.channel_sources[channel][index];
                    schedule(&mut self.wakes, &mut self.next_wake, source, cycle);
                }
            }
        }
    }

    /// Advances one cycle; returns true when anything moved.
    pub fn step(&mut self) -> bool {
        let mut activity = false;
        let event_driven = matches!(self.scheduler, SchedulerKind::EventDriven);
        // 0. Injected faults gate channel credit for this cycle.
        if !self.faults.gated.is_empty() {
            self.apply_fault_gates();
        }
        // 1. Feeders inject stimuli.
        for feeder in self.feeders.values_mut() {
            if let Some(&packet) = feeder.pending.front() {
                if self.channels[feeder.channel].push(packet) {
                    feeder.pending.pop_front();
                    feeder.sent.push((self.cycle, packet));
                    activity = true;
                }
            }
        }
        // 2. Scheduled components tick (all of them under polling).
        // Frozen components are dropped from the due list: their
        // queued wake is consumed and they never reschedule.
        let mut due = if event_driven {
            self.take_due()
        } else {
            (0..self.components.len()).collect()
        };
        if !self.faults.freezes.is_empty() {
            let before = due.len();
            let (faults, cycle) = (&self.faults, self.cycle);
            due.retain(|&index| !faults.frozen(index, cycle));
            self.faults.stats.frozen_ticks += (before - due.len()) as u64;
        }
        let mut hints: Vec<(usize, Wake)> = Vec::with_capacity(due.len());
        for index in due {
            let component = &mut self.components[index];
            let mut io = IoCtx {
                cycle: self.cycle,
                channels: &mut self.channels,
                inputs: &component.node.inputs,
                outputs: &component.node.outputs,
                blocked: &mut component.blocked,
                activity: &mut activity,
            };
            {
                let _span = tydi_obs::trace::fine_span_named("tydi-sim", || {
                    format!("fire:{}", component.node.path)
                });
                component.behavior.tick(&mut io);
            }
            if event_driven {
                hints.push((index, component.behavior.wake(&io)));
            }
            let state = component.behavior.state_label();
            if state != component.last_state {
                if let (Some(old), Some(new)) = (&component.last_state, &state) {
                    self.transitions.push((
                        self.cycle,
                        component.node.path.clone(),
                        old.clone(),
                        new.clone(),
                    ));
                }
                component.last_state = state;
            }
        }
        // 3. Probes drain boundary outputs.
        for probe in self.probes.values_mut() {
            if self.cycle.is_multiple_of(probe.accept_every) {
                if let Some(packet) = self.channels[probe.channel].pop() {
                    probe.received.push((self.cycle, packet));
                    activity = true;
                }
            }
        }
        // 4. Commit staged pushes; propagate channel events into the
        // wake queue (new packets wake sinks, new credit wakes
        // sources).
        for index in 0..self.channels.len() {
            let committed = self.channels[index].commit();
            let popped = self.channels[index].take_popped();
            if committed {
                activity = true;
            }
            if event_driven {
                let next = self.cycle + 1;
                if committed {
                    for &sink in &self.channel_sinks[index] {
                        schedule(&mut self.wakes, &mut self.next_wake, sink, next);
                    }
                }
                if popped {
                    for &source in &self.channel_sources[index] {
                        schedule(&mut self.wakes, &mut self.next_wake, source, next);
                    }
                }
            }
        }
        // 5. Apply the components' own wake hints.
        if event_driven {
            for (index, hint) in hints {
                let resolved = match hint {
                    Wake::Auto => {
                        let has_input = self.components[index]
                            .node
                            .inputs
                            .values()
                            .any(|&c| self.channels[c].has_visible());
                        if has_input {
                            Wake::NextCycle
                        } else {
                            Wake::OnEvent
                        }
                    }
                    other => other,
                };
                match resolved {
                    Wake::OnEvent => {}
                    Wake::NextCycle => {
                        let next = self.cycle + 1;
                        schedule(&mut self.wakes, &mut self.next_wake, index, next);
                    }
                    Wake::AtCycle(at) => {
                        let at = at.max(self.cycle + 1);
                        schedule(&mut self.wakes, &mut self.next_wake, index, at);
                    }
                    Wake::Auto => unreachable!("resolved above"),
                }
            }
        }
        self.cycle += 1;
        if activity {
            self.last_activity = self.cycle;
        }
        activity
    }

    /// The next cycle at which anything is scheduled to happen: a
    /// queued component wake-up, a feeder with both stimulus and
    /// channel space, or a probe due to accept from a non-empty
    /// channel. `None` means the design can provably never move again.
    fn next_event_cycle(&self) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |cycle: u64| {
            next = Some(next.map_or(cycle, |n: u64| n.min(cycle)));
        };
        // Feeder readiness consults the fault plan directly rather
        // than the channel's gate flag, which is only refreshed when a
        // step actually runs and may be stale after a skip.
        let gate = |channel: usize| {
            !self.faults.gated.is_empty() && self.faults.blocked_at(channel, self.cycle)
        };
        if self.feeders.values().any(|f| {
            !f.pending.is_empty() && self.channels[f.channel].has_space() && !gate(f.channel)
        }) {
            consider(self.cycle);
        }
        if let Some((&at, _)) = self.wakes.first_key_value() {
            consider(at.max(self.cycle));
        }
        for probe in self.probes.values() {
            if self.channels[probe.channel].has_visible() {
                consider(next_accept(self.cycle, probe.accept_every));
            }
        }
        // Fault-gate transitions release credit that nothing else will
        // signal; while work remains in flight, the next transition is
        // an event. Plans with only permanent stalls have none, so a
        // provoked wedge still terminates as a *proven* deadlock.
        if !self.faults.is_empty() {
            let pending_work = self.feeders.values().any(|f| !f.pending.is_empty())
                || self.channels.iter().any(|c| !c.is_empty());
            if pending_work {
                if let Some(at) = self.faults.next_transition(self.cycle) {
                    consider(at.max(self.cycle));
                }
            }
        }
        next
    }

    /// Runs until quiescence, deadlock or `max_cycles`.
    ///
    /// Under the event-driven scheduler, stretches of cycles with
    /// nothing scheduled are skipped in one jump, and a design with no
    /// remaining events terminates immediately with a proven
    /// [`StopReason::Completed`] / [`StopReason::Deadlocked`] instead
    /// of waiting out the idle threshold.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        let end = self.cycle.saturating_add(max_cycles);
        // proven: quiescence was established from the event queue, not
        // assumed after an idle window.
        let (ran_out, proven) = loop {
            if self.cycle >= end {
                break (true, false);
            }
            if matches!(self.scheduler, SchedulerKind::EventDriven) {
                match self.next_event_cycle() {
                    None => break (false, true),
                    Some(at) => {
                        // The polling loop stops at whichever boundary
                        // comes first: the idle window (quiescence
                        // declared at idle_limit + 1) or the cycle
                        // budget (`end`).
                        let idle_limit = self.last_activity.saturating_add(self.idle_threshold);
                        if at > idle_limit && idle_limit < end {
                            self.cycle = idle_limit + 1;
                            break (false, false);
                        }
                        if at >= end {
                            self.cycle = end;
                            break (true, false);
                        }
                        self.cycle = at;
                    }
                }
            }
            self.step();
            if self.cycle.saturating_sub(self.last_activity) > self.idle_threshold {
                break (false, false);
            }
        };
        let in_flight: Vec<(String, usize)> = self
            .channels
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| (c.name.clone(), c.len()))
            .collect();
        let pending_inputs: Vec<String> = self
            .feeders
            .iter()
            .filter(|(_, f)| !f.pending.is_empty())
            .map(|(p, _)| p.clone())
            .collect();
        let stuck = !ran_out && (!in_flight.is_empty() || !pending_inputs.is_empty());
        let reason = if ran_out {
            StopReason::CycleLimit
        } else if stuck {
            StopReason::Deadlocked {
                blocked_ports: self.blocked_ports(),
                blocked_channels: self.blocked_channels(),
            }
        } else if proven {
            StopReason::Completed
        } else {
            StopReason::IdleTimeout
        };
        RunResult {
            cycles: self.cycle,
            finished: matches!(reason, StopReason::Completed | StopReason::IdleTimeout),
            deadlock: if stuck {
                Some(DeadlockReport {
                    cycle: self.last_activity,
                    stuck_channels: in_flight,
                    pending_inputs,
                })
            } else {
                None
            },
            reason,
        }
    }

    /// `component.port` names with blocked-send time, worst first
    /// (the bottleneck table, flattened to names).
    fn blocked_ports(&self) -> Vec<String> {
        self.bottlenecks()
            .blockages
            .iter()
            .map(|b| format!("{}.{}", b.component, b.port))
            .collect()
    }

    /// Channel names participating in the blocked cycle: every channel
    /// still holding packets, with refused pushes, or whose producer
    /// recorded blocked-send pressure (behaviours that probe
    /// `can_send` and note the blockage never attempt the push, so the
    /// refusal counter alone would miss e.g. a fault-stalled but empty
    /// channel), worst first by (occupancy, refusals). Names match the
    /// flattened graph, so the list lines up with the static
    /// analyzer's stall cones.
    fn blocked_channels(&self) -> Vec<String> {
        let mut pressured: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for component in &self.components {
            for (port, &cycles) in &component.blocked {
                if cycles > 0 {
                    if let Some(&channel) = component.node.outputs.get(port) {
                        pressured.insert(channel);
                    }
                }
            }
        }
        let mut stuck: Vec<&Channel> = self
            .channels
            .iter()
            .enumerate()
            .filter(|(index, c)| {
                !c.is_empty() || c.refused_pushes() > 0 || pressured.contains(index)
            })
            .map(|(_, c)| c)
            .collect();
        stuck.sort_by(|a, b| {
            (b.len(), b.refused_pushes(), &a.name).cmp(&(a.len(), a.refused_pushes(), &b.name))
        });
        stuck.iter().map(|c| c.name.clone()).collect()
    }

    /// Per-channel occupancy/credit statistics, sorted by name — the
    /// dynamic ground truth differential tests compare the static
    /// analyzer against.
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        let mut stats: Vec<ChannelStats> = self
            .channels
            .iter()
            .map(|c| ChannelStats {
                name: c.name.clone(),
                capacity: c.capacity(),
                occupancy: c.len(),
                max_occupancy: c.max_occupancy(),
                transferred: c.transferred,
                refused_pushes: c.refused_pushes(),
            })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }

    /// Bundles a finished run's [`RunResult`] with channel statistics
    /// and the bottleneck table.
    pub fn report(&self, result: RunResult) -> SimReport {
        SimReport {
            result,
            channels: self.channel_stats(),
            bottlenecks: self.bottlenecks(),
        }
    }

    /// The bottleneck report: output-port blockage counts, worst
    /// first (paper §V-B: "investigate the output ports with the
    /// longest blockage to find the bottleneck component").
    pub fn bottlenecks(&self) -> BottleneckReport {
        let mut blockages: Vec<PortBlockage> = Vec::new();
        for component in &self.components {
            for (port, &cycles) in &component.blocked {
                if cycles > 0 {
                    blockages.push(PortBlockage {
                        component: component.node.path.clone(),
                        port: port.clone(),
                        blocked_cycles: cycles,
                    });
                }
            }
        }
        blockages.sort_by_key(|b| std::cmp::Reverse(b.blocked_cycles));
        BottleneckReport {
            blockages,
            total_cycles: self.cycle,
        }
    }

    /// Recorded state transitions: `(cycle, component, from, to)`.
    pub fn state_transitions(&self) -> &[(u64, String, String, String)] {
        &self.transitions
    }

    /// Hierarchical paths of all flattened components, sorted — the
    /// valid targets for a `freeze` fault.
    pub fn component_paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .components
            .iter()
            .map(|c| c.node.path.clone())
            .collect();
        v.sort();
        v
    }

    /// Names of boundary input ports.
    pub fn input_ports(&self) -> Vec<String> {
        let mut v: Vec<String> = self.feeders.keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of boundary output ports.
    pub fn output_ports(&self) -> Vec<String> {
        let mut v: Vec<String> = self.probes.keys().cloned().collect();
        v.sort();
        v
    }
}

/// The first cycle at or after `cycle` that is a multiple of `every`
/// (saturating at `u64::MAX` instead of wrapping).
fn next_accept(cycle: u64, every: u64) -> u64 {
    let remainder = cycle % every;
    if remainder == 0 {
        cycle
    } else {
        (cycle - remainder).saturating_add(every)
    }
}

/// Reconstructs a minimal streamlet for synthetic nodes (implicit
/// wires) that have no project entry.
fn reconstruct_streamlet(node: &ComponentNode) -> tydi_ir::Streamlet {
    let ty = tydi_spec::LogicalType::stream(
        tydi_spec::LogicalType::Bit(1),
        tydi_spec::StreamParams::new(),
    );
    let mut s = tydi_ir::Streamlet::new("__wire");
    for name in node.inputs.keys() {
        s.ports.push(tydi_ir::Port::new(
            name.clone(),
            tydi_ir::PortDirection::In,
            ty.clone(),
        ));
    }
    for name in node.outputs.keys() {
        s.ports.push(tydi_ir::Port::new(
            name.clone(),
            tydi_ir::PortDirection::Out,
            ty.clone(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_lang::{compile, CompileOptions};
    use tydi_stdlib::with_stdlib;

    fn compile_app(user: &str) -> Project {
        let sources = with_stdlib(&[("app.td", user)]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        compile(&refs, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("compile failed:\n{e}"))
            .project
    }

    #[test]
    fn passthrough_chain_end_to_end() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance a(passthrough_i<type Byte>),
    instance b(passthrough_i<type Byte>),
    i => a.i,
    a.o => b.i,
    b.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.feed("i", (0..10).map(Packet::data)).unwrap();
        let result = sim.run(1000);
        assert!(result.finished, "{result:?}");
        let out = sim.outputs("o").unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].1, Packet::data(0));
        assert_eq!(out[9].1, Packet::data(9));
    }

    #[test]
    fn arithmetic_pipeline_computes() {
        // (a + b) via stdlib adder.
        let project = compile_app(
            r#"
package app;
use std;
type W32 = Stream(Bit(32));
streamlet top_s { a : W32 in, b : W32 in, s : W32 out, }
impl top_i of top_s {
    instance add(adder_i<type W32, type W32, type W32>),
    a => add.in0,
    b => add.in1,
    add.o => s,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.feed("a", [Packet::data(10), Packet::data(20)]).unwrap();
        sim.feed("b", [Packet::data(1), Packet::data(2)]).unwrap();
        let result = sim.run(1000);
        assert!(result.finished);
        let out: Vec<i64> = sim
            .outputs("s")
            .unwrap()
            .iter()
            .map(|(_, p)| p.data)
            .collect();
        assert_eq!(out, vec![11, 22]);
    }

    #[test]
    fn sugared_fanout_simulates() {
        // One input feeding two adders: the duplicator comes from
        // sugaring, and the simulation must still be correct.
        let project = compile_app(
            r#"
package app;
use std;
type W32 = Stream(Bit(32));
streamlet top_s { a : W32 in, b : W32 in, s0 : W32 out, s1 : W32 out, }
impl top_i of top_s {
    instance add0(adder_i<type W32, type W32, type W32>),
    instance add1(adder_i<type W32, type W32, type W32>),
    a => add0.in0,
    a => add1.in0,
    b => add0.in1,
    b => add1.in1,
    add0.o => s0,
    add1.o => s1,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.feed("a", [Packet::data(5)]).unwrap();
        sim.feed("b", [Packet::data(7)]).unwrap();
        let result = sim.run(1000);
        assert!(result.finished);
        assert_eq!(sim.outputs("s0").unwrap()[0].1.data, 12);
        assert_eq!(sim.outputs("s1").unwrap()[0].1.data, 12);
    }

    #[test]
    fn deadlock_detected_when_sink_never_drains() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        // Probe that never accepts: downstream congestion.
        sim.set_probe_backpressure("o", u64::MAX).unwrap();
        sim.feed("i", (0..20).map(Packet::data)).unwrap();
        let result = sim.run(5000);
        let deadlock = result.deadlock.expect("expected a stall report");
        assert!(!deadlock.stuck_channels.is_empty());
        assert!(deadlock.pending_inputs.contains(&"i".to_string()));
        // The passthrough's output is the blocked port.
        let report = sim.bottlenecks();
        assert!(!report.blockages.is_empty());
        assert_eq!(report.blockages[0].port, "o");
    }

    #[test]
    fn backpressure_throttles_throughput() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.set_probe_backpressure("o", 4).unwrap();
        sim.feed("i", (0..8).map(Packet::data)).unwrap();
        let result = sim.run(1000);
        assert!(result.finished);
        let out = sim.outputs("o").unwrap();
        assert_eq!(out.len(), 8);
        // Arrival spacing is at least 4 cycles.
        for pair in out.windows(2) {
            assert!(pair[1].0 - pair[0].0 >= 4);
        }
    }

    /// The event-driven scheduler must agree with the polling loop on
    /// every observable: delivered packets, arrival cycles, injection
    /// cycles and termination classification.
    #[test]
    fn event_driven_matches_polling() {
        let source = r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance a(passthrough_i<type Byte>),
    instance b(passthrough_i<type Byte>),
    i => a.i,
    a.o => b.i,
    b.o => o,
}
"#;
        for stall in [1u64, 3, 7] {
            let project = compile_app(source);
            let registry = BehaviorRegistry::with_std();
            let run = |kind: SchedulerKind| {
                let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
                sim.set_scheduler(kind);
                sim.set_probe_backpressure("o", stall).unwrap();
                sim.feed("i", (0..12).map(Packet::data)).unwrap();
                let result = sim.run(10_000);
                (result.finished, sim.outputs("o").unwrap().to_vec())
            };
            let (finished_poll, out_poll) = run(SchedulerKind::Polling);
            let (finished_event, out_event) = run(SchedulerKind::EventDriven);
            assert_eq!(finished_poll, finished_event, "stall {stall}");
            assert_eq!(out_poll, out_event, "stall {stall}");
        }
    }

    #[test]
    fn completed_run_reports_typed_reason() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.feed("i", (0..4).map(Packet::data)).unwrap();
        let result = sim.run(1000);
        // Quiescence is proven from the event queue: no idle tail.
        assert_eq!(result.reason, StopReason::Completed);
        assert!(result.finished);
        assert!(
            result.cycles < 64,
            "completed run should not wait out the idle threshold, took {}",
            result.cycles
        );
    }

    #[test]
    fn deadlock_reason_names_blocked_ports() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.set_probe_backpressure("o", u64::MAX).unwrap();
        sim.feed("i", (0..20).map(Packet::data)).unwrap();
        let result = sim.run(5000);
        let StopReason::Deadlocked {
            blocked_ports,
            blocked_channels,
        } = &result.reason
        else {
            panic!("expected Deadlocked, got {:?}", result.reason);
        };
        assert!(blocked_ports.iter().any(|p| p.ends_with(".o")));
        // The blocked cycle is reported as channel names too: the
        // boundary output channel the probe never drained, and the
        // upstream hops that filled behind it.
        assert!(blocked_channels.contains(&"boundary.o".to_string()));
        assert!(blocked_channels.contains(&"boundary.i".to_string()));
        assert!(!result.finished);
        // Channel ground truth: the congested hop saturated and
        // recorded refused pushes.
        let report = sim.report(result.clone());
        let hot = report.saturated_channels();
        assert!(!hot.is_empty());
        assert!(hot.iter().any(|c| c.refused_pushes > 0));
    }

    #[test]
    fn cycle_budget_exhaustion_reports_cycle_limit() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.feed("i", (0..100).map(Packet::data)).unwrap();
        let result = sim.run(3);
        assert_eq!(result.reason, StopReason::CycleLimit);
        assert!(!result.finished);
    }

    /// Regression: when the next event lies beyond both the idle
    /// window and the cycle budget, the event-driven loop must report
    /// CycleLimit at exactly `end` — not fabricate a deadlock, and not
    /// let the clock overshoot the budget.
    #[test]
    fn budget_exhaustion_beyond_idle_window_matches_polling() {
        let source = r#"
package app;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s external {
    simulation {
        on (i.recv) {
            delay(100);
            send(o, i.data);
            ack(i);
        }
    }
}
"#;
        let project = compile_app(source);
        let registry = BehaviorRegistry::with_std();
        let run = |kind: SchedulerKind, threshold: u64, budget: u64| {
            let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
            sim.set_scheduler(kind);
            sim.set_idle_threshold(threshold);
            sim.feed("i", [Packet::data(7)]).unwrap();
            sim.run(budget)
        };
        // Budget expires mid-delay (delay 100 > budget 50 > idle 64's
        // worth of remaining events): both loops must agree.
        let polling = run(SchedulerKind::Polling, 64, 50);
        let event = run(SchedulerKind::EventDriven, 64, 50);
        assert_eq!(polling.reason, StopReason::CycleLimit);
        assert_eq!(event.reason, StopReason::CycleLimit);
        assert_eq!(polling.finished, event.finished);
        assert_eq!(polling.deadlock, event.deadlock);
        assert_eq!(polling.cycles, 50);
        assert_eq!(event.cycles, 50, "clock must not overshoot the budget");
        // A large threshold with a tiny budget: same story.
        let clamped = run(SchedulerKind::EventDriven, 500, 10);
        assert_eq!(clamped.reason, StopReason::CycleLimit);
        assert_eq!(clamped.cycles, 10);
        // Idle window expiring *before* the budget: both loops must
        // declare the stall at the same cycle, not run to the budget.
        let polling_idle = run(SchedulerKind::Polling, 10, 50);
        let event_idle = run(SchedulerKind::EventDriven, 10, 50);
        assert_eq!(polling_idle, event_idle);
        assert!(matches!(event_idle.reason, StopReason::Deadlocked { .. }));
        assert!(event_idle.cycles < 50);
    }

    #[test]
    fn idle_threshold_is_configurable() {
        // A unit with a 40-cycle internal delay: a threshold of 8
        // gives up mid-delay, the default of 64 sees it through.
        let source = r#"
package app;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s external {
    simulation {
        on (i.recv) {
            delay(40);
            send(o, i.data);
            ack(i);
        }
    }
}
"#;
        let project = compile_app(source);
        let registry = BehaviorRegistry::with_std();
        let mut impatient = Simulator::new(&project, "top_i", &registry).unwrap();
        impatient.set_idle_threshold(8);
        impatient.feed("i", [Packet::data(1)]).unwrap();
        let early = impatient.run(1000);
        assert!(!early.finished, "{early:?}");
        let mut patient = Simulator::new(&project, "top_i", &registry).unwrap();
        patient.feed("i", [Packet::data(1)]).unwrap();
        let full = patient.run(1000);
        assert!(full.finished, "{full:?}");
        assert_eq!(patient.outputs("o").unwrap().len(), 1);
    }

    /// Regression: a non-synthetic node whose IR lookup fails must
    /// surface [`SimError::MissingIr`] instead of fabricating a
    /// `__wire` implementation that masks the inconsistency.
    #[test]
    fn missing_ir_is_an_error_not_a_fabricated_wire() {
        let project = Project::new("t");
        let registry = BehaviorRegistry::with_std();
        let node = ComponentNode {
            path: "top.ghost".to_string(),
            impl_name: "ghost_i".to_string(),
            builtin: Some("std.passthrough".to_string()),
            sim_source: None,
            inputs: HashMap::new(),
            outputs: HashMap::new(),
            synthetic: false,
        };
        match build_behavior(&project, &registry, &node) {
            Err(SimError::MissingIr { component, missing }) => {
                assert_eq!(component, "top.ghost");
                assert!(missing.contains("ghost_i"));
            }
            Err(other) => panic!("expected MissingIr, got {other:?}"),
            Ok(_) => panic!("expected MissingIr, got a behaviour"),
        }
        // Synthetic wires (flattener-fabricated) still build fine.
        let wire = ComponentNode {
            synthetic: true,
            ..node
        };
        assert!(build_behavior(&project, &registry, &wire).is_ok());
    }

    #[test]
    fn unknown_port_error_lists_available_ports() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        let err = sim.feed("nope", [Packet::data(1)]).unwrap_err();
        match err {
            SimError::UnknownBoundaryPort { port, available } => {
                assert_eq!(port, "nope");
                assert_eq!(available, vec!["i".to_string()]);
            }
            other => panic!("expected UnknownBoundaryPort, got {other:?}"),
        }
    }

    #[test]
    fn stall_fault_matches_probe_backpressure_semantics() {
        // An indefinite stall on the boundary output behaves like a
        // probe that never accepts: same deadlock classification, and
        // the stalled channel is named in the blocked set.
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.set_fault_plan(&FaultPlan::parse("stall(boundary.o,0,*)").unwrap())
            .unwrap();
        sim.feed("i", (0..20).map(Packet::data)).unwrap();
        let result = sim.run(5000);
        let StopReason::Deadlocked {
            blocked_channels, ..
        } = &result.reason
        else {
            panic!("expected Deadlocked, got {:?}", result.reason);
        };
        assert!(blocked_channels.contains(&"boundary.o".to_string()));
        assert!(blocked_channels.contains(&"boundary.i".to_string()));
        assert!(sim.fault_stats().gated_cycles > 0);
    }

    #[test]
    fn finite_stall_delays_but_completes() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let baseline = {
            let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
            sim.feed("i", (0..8).map(Packet::data)).unwrap();
            assert!(sim.run(10_000).finished);
            sim.outputs("o").unwrap().last().unwrap().0
        };
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        // Hold the input channel shut for 20 cycles, then release.
        sim.set_fault_plan(&FaultPlan::parse("stall(boundary.i,0,20)").unwrap())
            .unwrap();
        sim.feed("i", (0..8).map(Packet::data)).unwrap();
        let result = sim.run(10_000);
        assert!(result.finished, "{result:?}");
        let out = sim.outputs("o").unwrap();
        assert_eq!(out.len(), 8);
        assert!(
            out.last().unwrap().0 >= baseline + 20,
            "stall must delay delivery: {} vs baseline {}",
            out.last().unwrap().0,
            baseline
        );
    }

    #[test]
    fn frozen_component_deadlock_names_its_channels() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance a(passthrough_i<type Byte>),
    instance b(passthrough_i<type Byte>),
    i => a.i,
    a.o => b.i,
    b.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        let frozen = sim
            .component_paths()
            .into_iter()
            .find(|p| p.ends_with(".b"))
            .expect("component b");
        sim.set_fault_plan(&FaultPlan {
            faults: vec![Fault::Freeze {
                component: frozen.clone(),
                at_cycle: 0,
            }],
            seed: 0,
        })
        .unwrap();
        sim.feed("i", (0..20).map(Packet::data)).unwrap();
        let result = sim.run(5000);
        let StopReason::Deadlocked {
            blocked_channels, ..
        } = &result.reason
        else {
            panic!("expected Deadlocked, got {:?}", result.reason);
        };
        // The wedge is attributable to the frozen component: one of
        // the blocked channels names it (its starved input hop,
        // `... => b.i` in the flattened scheme).
        assert!(
            blocked_channels.iter().any(|c| c.contains("b.i")),
            "blocked channels {blocked_channels:?} must name the frozen component `{frozen}`"
        );
        assert!(sim.fault_stats().frozen_ticks > 0);
        assert!(!result.finished);
    }

    #[test]
    fn faulted_run_agrees_across_schedulers() {
        // Polling and event-driven must see the exact same faulted
        // world: same outputs, same arrival cycles, same termination.
        let source = r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance a(passthrough_i<type Byte>),
    instance b(passthrough_i<type Byte>),
    i => a.i,
    a.o => b.i,
    b.o => o,
}
"#;
        let project = compile_app(source);
        let registry = BehaviorRegistry::with_std();
        for spec in [
            "stall(boundary.i,3,9)",
            "drop(boundary.o,3)",
            "jitter(boundary.o,42,2)",
            "stall(boundary.o,0,*)",
        ] {
            let run = |kind: SchedulerKind| {
                let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
                sim.set_scheduler(kind);
                sim.set_fault_plan(&FaultPlan::parse(spec).unwrap())
                    .unwrap();
                sim.feed("i", (0..12).map(Packet::data)).unwrap();
                let result = sim.run(10_000);
                (result.finished, sim.outputs("o").unwrap().to_vec())
            };
            let (finished_poll, out_poll) = run(SchedulerKind::Polling);
            let (finished_event, out_event) = run(SchedulerKind::EventDriven);
            assert_eq!(finished_poll, finished_event, "{spec}");
            assert_eq!(out_poll, out_event, "{spec}");
        }
    }

    #[test]
    fn drop_credit_throttles_delivery() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let last_arrival = |spec: Option<&str>| {
            let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
            if let Some(spec) = spec {
                sim.set_fault_plan(&FaultPlan::parse(spec).unwrap())
                    .unwrap();
            }
            sim.feed("i", (0..16).map(Packet::data)).unwrap();
            assert!(sim.run(10_000).finished);
            sim.outputs("o").unwrap().last().unwrap().0
        };
        let clean = last_arrival(None);
        let dropped = last_arrival(Some("drop(boundary.i,2)"));
        assert!(
            dropped > clean,
            "dropping every 2nd credit must slow delivery ({dropped} vs {clean})"
        );
    }

    #[test]
    fn unknown_fault_targets_error_with_availability() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        let err = sim
            .set_fault_plan(&FaultPlan::parse("stall(ghost,0,*)").unwrap())
            .unwrap_err();
        match err {
            SimError::UnknownFaultTarget {
                kind,
                target,
                available,
            } => {
                assert_eq!(kind, "channel");
                assert_eq!(target, "ghost");
                assert!(available.contains(&"boundary.i".to_string()));
            }
            other => panic!("expected UnknownFaultTarget, got {other:?}"),
        }
        let err = sim
            .set_fault_plan(&FaultPlan::parse("freeze(ghost,0)").unwrap())
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::UnknownFaultTarget {
                kind: "component",
                ..
            }
        ));
    }

    #[test]
    fn next_accept_rounds_up() {
        assert_eq!(next_accept(0, 4), 0);
        assert_eq!(next_accept(1, 4), 4);
        assert_eq!(next_accept(4, 4), 4);
        assert_eq!(next_accept(5, 4), 8);
        assert_eq!(next_accept(3, 1), 3);
        assert_eq!(next_accept(1, u64::MAX), u64::MAX);
    }

    #[test]
    fn unknown_port_errors() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        assert!(sim.feed("nope", [Packet::data(1)]).is_err());
        assert!(sim.outputs("nope").is_err());
    }
}
