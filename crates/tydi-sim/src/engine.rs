//! The simulation engine: cycle loop, stimulus feeders, output
//! probes, quiescence/deadlock detection and metric collection.

use crate::behavior::{Behavior, BehaviorRegistry, IoCtx};
use crate::channel::{Channel, Packet};
use crate::graph::{flatten, ComponentNode, GraphError};
use crate::interp::SimInterpreter;
use crate::report::{BottleneckReport, PortBlockage};
use std::collections::HashMap;
use tydi_ir::Project;

/// Simulator construction/run errors.
#[derive(Debug)]
pub enum SimError {
    /// Graph construction failed.
    Graph(GraphError),
    /// A behaviour could not be built.
    Behaviour {
        /// Hierarchical path of the component.
        component: String,
        /// Why the behaviour factory failed.
        message: String,
    },
    /// A port name passed to `feed`/`outputs` is not a boundary port.
    UnknownBoundaryPort(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Graph(e) => write!(f, "{e}"),
            SimError::Behaviour { component, message } => {
                write!(f, "cannot build behaviour for `{component}`: {message}")
            }
            SimError::UnknownBoundaryPort(p) => write!(f, "unknown boundary port `{p}`"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<GraphError> for SimError {
    fn from(e: GraphError) -> Self {
        SimError::Graph(e)
    }
}

struct RunningComponent {
    node: ComponentNode,
    behavior: Box<dyn Behavior>,
    blocked: HashMap<String, u64>,
    last_state: Option<String>,
}

struct Feeder {
    channel: usize,
    pending: std::collections::VecDeque<Packet>,
    sent: Vec<(u64, Packet)>,
}

struct Probe {
    channel: usize,
    received: Vec<(u64, Packet)>,
    /// Accept a packet only every `accept_every` cycles (1 = always).
    accept_every: u64,
}

/// Outcome of a [`Simulator::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Cycles actually simulated.
    pub cycles: u64,
    /// True when the design went quiescent (no activity for the idle
    /// threshold) with nothing in flight.
    pub finished: bool,
    /// A deadlock/stall report when the design went quiescent with
    /// packets still in flight (paper §V-B deadlock identification).
    pub deadlock: Option<DeadlockReport>,
}

/// Where a stalled design is stuck.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle at which quiescence was declared.
    pub cycle: u64,
    /// Channels still holding packets: `(name, occupancy)`.
    pub stuck_channels: Vec<(String, usize)>,
    /// Boundary ports with undelivered stimuli.
    pub pending_inputs: Vec<String>,
}

/// A handshake-accurate simulator for one top-level implementation.
pub struct Simulator {
    channels: Vec<Channel>,
    components: Vec<RunningComponent>,
    feeders: HashMap<String, Feeder>,
    probes: HashMap<String, Probe>,
    cycle: u64,
    last_activity: u64,
    /// Recorded `(cycle, component path, from, to)` state transitions.
    transitions: Vec<(u64, String, String, String)>,
    /// Quiescence threshold in idle cycles.
    idle_threshold: u64,
    /// Mapping from the simulated clock domain to a physical clock
    /// (paper §V-B: "the mapping from the clock-domain to physical
    /// frequency and phase").
    physical_clock: Option<tydi_spec::clock::PhysicalClock>,
}

impl Simulator {
    /// Builds a simulator for `top_impl`, resolving behaviours from
    /// `registry` (builtin keys) and from simulation code.
    pub fn new(
        project: &Project,
        top_impl: &str,
        registry: &BehaviorRegistry,
    ) -> Result<Simulator, SimError> {
        let graph = flatten(project, top_impl, 2)?;
        let mut components = Vec::with_capacity(graph.components.len());
        for node in graph.components {
            let behavior: Box<dyn Behavior> = if let Some(key) = &node.builtin {
                let implementation = project
                    .implementation(&node.impl_name)
                    .cloned()
                    .unwrap_or_else(|| tydi_ir::Implementation::external("__wire", "__wire"));
                let streamlet = project
                    .streamlet(&implementation.streamlet)
                    .cloned()
                    .unwrap_or_else(|| reconstruct_streamlet(&node));
                registry
                    .build(key, &implementation, &streamlet)
                    .map_err(|message| SimError::Behaviour {
                        component: node.path.clone(),
                        message,
                    })?
            } else if let Some(source) = &node.sim_source {
                Box::new(SimInterpreter::from_source(source).map_err(|message| {
                    SimError::Behaviour {
                        component: node.path.clone(),
                        message,
                    }
                })?)
            } else {
                return Err(SimError::Behaviour {
                    component: node.path.clone(),
                    message: "no behaviour available".to_string(),
                });
            };
            components.push(RunningComponent {
                node,
                behavior,
                blocked: HashMap::new(),
                last_state: None,
            });
        }
        let feeders = graph
            .boundary_inputs
            .into_iter()
            .map(|(port, channel)| {
                (
                    port,
                    Feeder {
                        channel,
                        pending: Default::default(),
                        sent: Vec::new(),
                    },
                )
            })
            .collect();
        let probes = graph
            .boundary_outputs
            .into_iter()
            .map(|(port, channel)| {
                (
                    port,
                    Probe {
                        channel,
                        received: Vec::new(),
                        accept_every: 1,
                    },
                )
            })
            .collect();
        Ok(Simulator {
            channels: graph.channels,
            components,
            feeders,
            probes,
            cycle: 0,
            last_activity: 0,
            transitions: Vec::new(),
            idle_threshold: 64,
            physical_clock: None,
        })
    }

    /// Binds the simulation's clock domain to a physical frequency so
    /// cycle counts convert to wall-clock time (paper §V-B).
    pub fn set_physical_clock(&mut self, clock: tydi_spec::clock::PhysicalClock) {
        self.physical_clock = Some(clock);
    }

    /// The current simulated time in seconds, when a physical clock
    /// has been bound.
    pub fn elapsed_seconds(&self) -> Option<f64> {
        self.physical_clock
            .as_ref()
            .map(|c| c.cycles_to_seconds(self.cycle))
    }

    /// Observed throughput of an output port in elements per second,
    /// when a physical clock has been bound.
    pub fn throughput_hz(&self, port: &str) -> Result<Option<f64>, SimError> {
        let delivered = self.outputs(port)?.len() as f64;
        Ok(self
            .elapsed_seconds()
            .filter(|&s| s > 0.0)
            .map(|s| delivered / s))
    }

    /// Queues stimulus packets on a boundary input port.
    pub fn feed(
        &mut self,
        port: &str,
        packets: impl IntoIterator<Item = Packet>,
    ) -> Result<(), SimError> {
        let feeder = self
            .feeders
            .get_mut(port)
            .ok_or_else(|| SimError::UnknownBoundaryPort(port.to_string()))?;
        feeder.pending.extend(packets);
        Ok(())
    }

    /// Applies backpressure on an output: accept only every `n`-th
    /// cycle.
    pub fn set_probe_backpressure(&mut self, port: &str, n: u64) -> Result<(), SimError> {
        let probe = self
            .probes
            .get_mut(port)
            .ok_or_else(|| SimError::UnknownBoundaryPort(port.to_string()))?;
        probe.accept_every = n.max(1);
        Ok(())
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Packets observed on a boundary output, with arrival cycles.
    pub fn outputs(&self, port: &str) -> Result<&[(u64, Packet)], SimError> {
        self.probes
            .get(port)
            .map(|p| p.received.as_slice())
            .ok_or_else(|| SimError::UnknownBoundaryPort(port.to_string()))
    }

    /// Stimuli actually injected, with injection cycles.
    pub fn injected(&self, port: &str) -> Result<&[(u64, Packet)], SimError> {
        self.feeders
            .get(port)
            .map(|f| f.sent.as_slice())
            .ok_or_else(|| SimError::UnknownBoundaryPort(port.to_string()))
    }

    /// Advances one cycle; returns true when anything moved.
    pub fn step(&mut self) -> bool {
        let mut activity = false;
        // 1. Feeders inject stimuli.
        for feeder in self.feeders.values_mut() {
            if let Some(&packet) = feeder.pending.front() {
                if self.channels[feeder.channel].push(packet) {
                    feeder.pending.pop_front();
                    feeder.sent.push((self.cycle, packet));
                    activity = true;
                }
            }
        }
        // 2. Components tick.
        for component in &mut self.components {
            let mut io = IoCtx {
                cycle: self.cycle,
                channels: &mut self.channels,
                inputs: &component.node.inputs,
                outputs: &component.node.outputs,
                blocked: &mut component.blocked,
                activity: &mut activity,
            };
            component.behavior.tick(&mut io);
            let state = component.behavior.state_label();
            if state != component.last_state {
                if let (Some(old), Some(new)) = (&component.last_state, &state) {
                    self.transitions.push((
                        self.cycle,
                        component.node.path.clone(),
                        old.clone(),
                        new.clone(),
                    ));
                }
                component.last_state = state;
            }
        }
        // 3. Probes drain boundary outputs.
        for probe in self.probes.values_mut() {
            if self.cycle.is_multiple_of(probe.accept_every) {
                if let Some(packet) = self.channels[probe.channel].pop() {
                    probe.received.push((self.cycle, packet));
                    activity = true;
                }
            }
        }
        // 4. Commit staged pushes.
        for channel in &mut self.channels {
            if channel.commit() {
                activity = true;
            }
        }
        self.cycle += 1;
        if activity {
            self.last_activity = self.cycle;
        }
        activity
    }

    /// Runs until quiescence or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        let end = self.cycle + max_cycles;
        while self.cycle < end {
            self.step();
            if self.cycle - self.last_activity > self.idle_threshold {
                break;
            }
        }
        let in_flight: Vec<(String, usize)> = self
            .channels
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| (c.name.clone(), c.len()))
            .collect();
        let pending_inputs: Vec<String> = self
            .feeders
            .iter()
            .filter(|(_, f)| !f.pending.is_empty())
            .map(|(p, _)| p.clone())
            .collect();
        let quiescent = self.cycle - self.last_activity > self.idle_threshold;
        let stuck = quiescent && (!in_flight.is_empty() || !pending_inputs.is_empty());
        RunResult {
            cycles: self.cycle,
            finished: quiescent && !stuck,
            deadlock: if stuck {
                Some(DeadlockReport {
                    cycle: self.last_activity,
                    stuck_channels: in_flight,
                    pending_inputs,
                })
            } else {
                None
            },
        }
    }

    /// The bottleneck report: output-port blockage counts, worst
    /// first (paper §V-B: "investigate the output ports with the
    /// longest blockage to find the bottleneck component").
    pub fn bottlenecks(&self) -> BottleneckReport {
        let mut blockages: Vec<PortBlockage> = Vec::new();
        for component in &self.components {
            for (port, &cycles) in &component.blocked {
                if cycles > 0 {
                    blockages.push(PortBlockage {
                        component: component.node.path.clone(),
                        port: port.clone(),
                        blocked_cycles: cycles,
                    });
                }
            }
        }
        blockages.sort_by_key(|b| std::cmp::Reverse(b.blocked_cycles));
        BottleneckReport {
            blockages,
            total_cycles: self.cycle,
        }
    }

    /// Recorded state transitions: `(cycle, component, from, to)`.
    pub fn state_transitions(&self) -> &[(u64, String, String, String)] {
        &self.transitions
    }

    /// Names of boundary input ports.
    pub fn input_ports(&self) -> Vec<String> {
        let mut v: Vec<String> = self.feeders.keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of boundary output ports.
    pub fn output_ports(&self) -> Vec<String> {
        let mut v: Vec<String> = self.probes.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Reconstructs a minimal streamlet for synthetic nodes (implicit
/// wires) that have no project entry.
fn reconstruct_streamlet(node: &ComponentNode) -> tydi_ir::Streamlet {
    let ty = tydi_spec::LogicalType::stream(
        tydi_spec::LogicalType::Bit(1),
        tydi_spec::StreamParams::new(),
    );
    let mut s = tydi_ir::Streamlet::new("__wire");
    for name in node.inputs.keys() {
        s.ports.push(tydi_ir::Port::new(
            name.clone(),
            tydi_ir::PortDirection::In,
            ty.clone(),
        ));
    }
    for name in node.outputs.keys() {
        s.ports.push(tydi_ir::Port::new(
            name.clone(),
            tydi_ir::PortDirection::Out,
            ty.clone(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_lang::{compile, CompileOptions};
    use tydi_stdlib::with_stdlib;

    fn compile_app(user: &str) -> Project {
        let sources = with_stdlib(&[("app.td", user)]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        compile(&refs, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("compile failed:\n{e}"))
            .project
    }

    #[test]
    fn passthrough_chain_end_to_end() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance a(passthrough_i<type Byte>),
    instance b(passthrough_i<type Byte>),
    i => a.i,
    a.o => b.i,
    b.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.feed("i", (0..10).map(Packet::data)).unwrap();
        let result = sim.run(1000);
        assert!(result.finished, "{result:?}");
        let out = sim.outputs("o").unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].1, Packet::data(0));
        assert_eq!(out[9].1, Packet::data(9));
    }

    #[test]
    fn arithmetic_pipeline_computes() {
        // (a + b) via stdlib adder.
        let project = compile_app(
            r#"
package app;
use std;
type W32 = Stream(Bit(32));
streamlet top_s { a : W32 in, b : W32 in, s : W32 out, }
impl top_i of top_s {
    instance add(adder_i<type W32, type W32, type W32>),
    a => add.in0,
    b => add.in1,
    add.o => s,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.feed("a", [Packet::data(10), Packet::data(20)]).unwrap();
        sim.feed("b", [Packet::data(1), Packet::data(2)]).unwrap();
        let result = sim.run(1000);
        assert!(result.finished);
        let out: Vec<i64> = sim
            .outputs("s")
            .unwrap()
            .iter()
            .map(|(_, p)| p.data)
            .collect();
        assert_eq!(out, vec![11, 22]);
    }

    #[test]
    fn sugared_fanout_simulates() {
        // One input feeding two adders: the duplicator comes from
        // sugaring, and the simulation must still be correct.
        let project = compile_app(
            r#"
package app;
use std;
type W32 = Stream(Bit(32));
streamlet top_s { a : W32 in, b : W32 in, s0 : W32 out, s1 : W32 out, }
impl top_i of top_s {
    instance add0(adder_i<type W32, type W32, type W32>),
    instance add1(adder_i<type W32, type W32, type W32>),
    a => add0.in0,
    a => add1.in0,
    b => add0.in1,
    b => add1.in1,
    add0.o => s0,
    add1.o => s1,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.feed("a", [Packet::data(5)]).unwrap();
        sim.feed("b", [Packet::data(7)]).unwrap();
        let result = sim.run(1000);
        assert!(result.finished);
        assert_eq!(sim.outputs("s0").unwrap()[0].1.data, 12);
        assert_eq!(sim.outputs("s1").unwrap()[0].1.data, 12);
    }

    #[test]
    fn deadlock_detected_when_sink_never_drains() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        // Probe that never accepts: downstream congestion.
        sim.set_probe_backpressure("o", u64::MAX).unwrap();
        sim.feed("i", (0..20).map(Packet::data)).unwrap();
        let result = sim.run(5000);
        let deadlock = result.deadlock.expect("expected a stall report");
        assert!(!deadlock.stuck_channels.is_empty());
        assert!(deadlock.pending_inputs.contains(&"i".to_string()));
        // The passthrough's output is the blocked port.
        let report = sim.bottlenecks();
        assert!(!report.blockages.is_empty());
        assert_eq!(report.blockages[0].port, "o");
    }

    #[test]
    fn backpressure_throttles_throughput() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        sim.set_probe_backpressure("o", 4).unwrap();
        sim.feed("i", (0..8).map(Packet::data)).unwrap();
        let result = sim.run(1000);
        assert!(result.finished);
        let out = sim.outputs("o").unwrap();
        assert_eq!(out.len(), 8);
        // Arrival spacing is at least 4 cycles.
        for pair in out.windows(2) {
            assert!(pair[1].0 - pair[0].0 >= 4);
        }
    }

    #[test]
    fn unknown_port_errors() {
        let project = compile_app(
            r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#,
        );
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).unwrap();
        assert!(sim.feed("nope", [Packet::data(1)]).is_err());
        assert!(sim.outputs("nope").is_err());
    }
}
