//! Bottleneck reporting (paper §V-B) and the per-run [`SimReport`]
//! with channel-level occupancy/credit ground truth.

use crate::engine::RunResult;
use std::fmt;

/// Blocked-cycles count for one output port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortBlockage {
    /// Hierarchical component path.
    pub component: String,
    /// Output port name.
    pub port: String,
    /// Cycles the component wanted to send but the sink was not ready.
    pub blocked_cycles: u64,
}

/// All blockages observed during a run, worst first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BottleneckReport {
    /// Sorted blockages (descending blocked cycles).
    pub blockages: Vec<PortBlockage>,
    /// Total simulated cycles, for computing blockage ratios.
    pub total_cycles: u64,
}

impl BottleneckReport {
    /// The `n` worst blocked ports.
    pub fn top(&self, n: usize) -> &[PortBlockage] {
        &self.blockages[..self.blockages.len().min(n)]
    }

    /// Fraction of total cycles the worst port spent blocked.
    pub fn worst_ratio(&self) -> f64 {
        match self.blockages.first() {
            Some(b) if self.total_cycles > 0 => b.blocked_cycles as f64 / self.total_cycles as f64,
            _ => 0.0,
        }
    }
}

impl fmt::Display for BottleneckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Bottleneck report over {} cycles:", self.total_cycles)?;
        if self.blockages.is_empty() {
            writeln!(f, "  no blocked output ports")?;
        }
        for b in self.top(10) {
            writeln!(
                f,
                "  {:>8} blocked cycles  {}.{}",
                b.blocked_cycles, b.component, b.port
            )?;
        }
        Ok(())
    }
}

/// Occupancy and credit statistics for one simulated channel,
/// collected over a whole run.
///
/// This is the dynamic ground truth the static analyzer's differential
/// tests diff against: `max_occupancy == capacity` marks a channel
/// that filled up at least once, and `refused_pushes` counts the
/// cycles a producer held data the channel had no credit for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelStats {
    /// Channel name, matching the flattened graph's naming scheme.
    pub name: String,
    /// FIFO capacity (credit depth).
    pub capacity: usize,
    /// Packets still held when the run stopped.
    pub occupancy: usize,
    /// High-water mark of held packets over the run.
    pub max_occupancy: usize,
    /// Total packets that passed through.
    pub transferred: u64,
    /// Pushes refused for lack of credit (producer-side stalls).
    pub refused_pushes: u64,
}

impl ChannelStats {
    /// True when the channel was completely full at least once.
    pub fn saturated(&self) -> bool {
        self.max_occupancy >= self.capacity
    }
}

/// The full outcome of one simulation run: the typed [`RunResult`],
/// per-channel occupancy/credit counters, and the bottleneck table.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycles, termination reason, deadlock details.
    pub result: RunResult,
    /// Per-channel statistics, sorted by channel name.
    pub channels: Vec<ChannelStats>,
    /// Output-port blockage counts, worst first.
    pub bottlenecks: BottleneckReport,
}

impl SimReport {
    /// Channels that filled to capacity at least once, worst stall
    /// count first — the dynamic view of backpressure hot spots.
    pub fn saturated_channels(&self) -> Vec<&ChannelStats> {
        let mut hot: Vec<&ChannelStats> = self.channels.iter().filter(|c| c.saturated()).collect();
        hot.sort_by_key(|c| std::cmp::Reverse(c.refused_pushes));
        hot
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Channel report over {} cycles ({} channel(s)):",
            self.result.cycles,
            self.channels.len()
        )?;
        writeln!(
            f,
            "  {:>11}  {:>9}  {:>7}  {:>7}  channel",
            "transferred", "max/cap", "held", "refused"
        )?;
        for c in &self.channels {
            writeln!(
                f,
                "  {:>11}  {:>5}/{:<3}  {:>7}  {:>7}  {}{}",
                c.transferred,
                c.max_occupancy,
                c.capacity,
                c.occupancy,
                c.refused_pushes,
                c.name,
                if c.saturated() { "  [saturated]" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StopReason;

    fn report() -> BottleneckReport {
        BottleneckReport {
            blockages: vec![
                PortBlockage {
                    component: "top.a".into(),
                    port: "o".into(),
                    blocked_cycles: 80,
                },
                PortBlockage {
                    component: "top.b".into(),
                    port: "o".into(),
                    blocked_cycles: 10,
                },
            ],
            total_cycles: 100,
        }
    }

    #[test]
    fn top_limits() {
        let r = report();
        assert_eq!(r.top(1).len(), 1);
        assert_eq!(r.top(10).len(), 2);
        assert_eq!(r.top(1)[0].component, "top.a");
    }

    #[test]
    fn worst_ratio() {
        assert!((report().worst_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(BottleneckReport::default().worst_ratio(), 0.0);
    }

    #[test]
    fn display_mentions_ports() {
        let text = report().to_string();
        assert!(text.contains("top.a.o"));
        assert!(text.contains("80"));
    }

    fn sim_report() -> SimReport {
        SimReport {
            result: RunResult {
                cycles: 100,
                finished: true,
                deadlock: None,
                reason: StopReason::Completed,
            },
            channels: vec![
                ChannelStats {
                    name: "top.a.o => b.i".into(),
                    capacity: 2,
                    occupancy: 0,
                    max_occupancy: 2,
                    transferred: 40,
                    refused_pushes: 13,
                },
                ChannelStats {
                    name: "boundary.i".into(),
                    capacity: 2,
                    occupancy: 0,
                    max_occupancy: 1,
                    transferred: 40,
                    refused_pushes: 0,
                },
            ],
            bottlenecks: BottleneckReport::default(),
        }
    }

    #[test]
    fn saturated_channels_filter_and_sort() {
        let r = sim_report();
        let hot = r.saturated_channels();
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].name, "top.a.o => b.i");
        assert!(hot[0].saturated());
        assert!(!r.channels[1].saturated());
    }

    #[test]
    fn sim_report_display_tabulates_channels() {
        let text = sim_report().to_string();
        assert!(text.contains("top.a.o => b.i"));
        assert!(text.contains("[saturated]"));
        assert!(text.contains("boundary.i"));
        assert!(text.contains("13"));
    }
}
