//! Bottleneck reporting (paper §V-B).

use std::fmt;

/// Blocked-cycles count for one output port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortBlockage {
    /// Hierarchical component path.
    pub component: String,
    /// Output port name.
    pub port: String,
    /// Cycles the component wanted to send but the sink was not ready.
    pub blocked_cycles: u64,
}

/// All blockages observed during a run, worst first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BottleneckReport {
    /// Sorted blockages (descending blocked cycles).
    pub blockages: Vec<PortBlockage>,
    /// Total simulated cycles, for computing blockage ratios.
    pub total_cycles: u64,
}

impl BottleneckReport {
    /// The `n` worst blocked ports.
    pub fn top(&self, n: usize) -> &[PortBlockage] {
        &self.blockages[..self.blockages.len().min(n)]
    }

    /// Fraction of total cycles the worst port spent blocked.
    pub fn worst_ratio(&self) -> f64 {
        match self.blockages.first() {
            Some(b) if self.total_cycles > 0 => b.blocked_cycles as f64 / self.total_cycles as f64,
            _ => 0.0,
        }
    }
}

impl fmt::Display for BottleneckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Bottleneck report over {} cycles:", self.total_cycles)?;
        if self.blockages.is_empty() {
            writeln!(f, "  no blocked output ports")?;
        }
        for b in self.top(10) {
            writeln!(
                f,
                "  {:>8} blocked cycles  {}.{}",
                b.blocked_cycles, b.component, b.port
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BottleneckReport {
        BottleneckReport {
            blockages: vec![
                PortBlockage {
                    component: "top.a".into(),
                    port: "o".into(),
                    blocked_cycles: 80,
                },
                PortBlockage {
                    component: "top.b".into(),
                    port: "o".into(),
                    blocked_cycles: 10,
                },
            ],
            total_cycles: 100,
        }
    }

    #[test]
    fn top_limits() {
        let r = report();
        assert_eq!(r.top(1).len(), 1);
        assert_eq!(r.top(10).len(), 2);
        assert_eq!(r.top(1)[0].component, "top.a");
    }

    #[test]
    fn worst_ratio() {
        assert!((report().worst_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(BottleneckReport::default().worst_ratio(), 0.0);
    }

    #[test]
    fn display_mentions_ports() {
        let text = report().to_string();
        assert!(text.contains("top.a.o"));
        assert!(text.contains("80"));
    }
}
