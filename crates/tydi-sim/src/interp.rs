//! Interpreter for event-driven simulation code (paper §V-A).
//!
//! External implementations carry `simulation { ... }` blocks with
//! state variables and `on (event) { actions }` handlers. This module
//! executes those blocks as a [`Behavior`]:
//!
//! * `port.recv` is true while a packet waits at the head of an input;
//! * `port.ack` is true when everything previously sent on an output
//!   has been accepted downstream;
//! * `delay(n)` makes the component busy: the *remaining* actions of
//!   the handler run `n` cycles later (top-level actions only;
//!   a nested `delay` just extends the busy window);
//! * `send` respects backpressure through an internal pending queue.

use crate::behavior::{Behavior, IoCtx, Wake};
use crate::channel::Packet;
use std::collections::{HashMap, VecDeque};
use tydi_lang::sim_ast::{SimAction, SimBlock, SimEvent, SimExpr, SimOp};

/// Interpreted behaviour for one simulation block.
pub struct SimInterpreter {
    block: SimBlock,
    states: HashMap<String, String>,
    /// The component does nothing until this cycle.
    busy_until: u64,
    /// Actions deferred by a top-level `delay`, with their loop-var
    /// environment.
    deferred: Option<(Vec<SimAction>, HashMap<String, i64>)>,
    /// Packets produced by `send` that wait for channel space.
    out_pending: VecDeque<(String, Packet)>,
    /// Output ports with unacknowledged sends (drives `port.ack`).
    sent_outstanding: HashMap<String, bool>,
    /// Recorded (cycle, from-state, to-state) transitions.
    transitions: Vec<(u64, String, String)>,
}

impl SimInterpreter {
    /// Builds an interpreter from a parsed simulation block.
    pub fn new(block: SimBlock) -> Self {
        let states = block
            .states
            .iter()
            .map(|s| (s.name.clone(), s.init.clone()))
            .collect();
        SimInterpreter {
            block,
            states,
            busy_until: 0,
            deferred: None,
            out_pending: VecDeque::new(),
            sent_outstanding: HashMap::new(),
            transitions: Vec::new(),
        }
    }

    /// Parses simulation source and builds an interpreter.
    pub fn from_source(source: &str) -> Result<Self, String> {
        let block = tydi_lang::parse_simulation(source).map_err(|d| {
            format!(
                "simulation parse error: {:?}",
                d.first().map(|x| &x.message)
            )
        })?;
        Ok(SimInterpreter::new(block))
    }

    /// The recorded state-transition table (paper §V-B).
    pub fn transitions(&self) -> &[(u64, String, String)] {
        &self.transitions
    }

    fn flush_pending(&mut self, io: &mut IoCtx<'_>) -> bool {
        while let Some((port, packet)) = self.out_pending.front().cloned() {
            if io.send(&port, packet) {
                self.sent_outstanding.insert(port.clone(), true);
                self.out_pending.pop_front();
            } else {
                return false;
            }
        }
        true
    }

    fn event_true(&self, event: &SimEvent, io: &IoCtx<'_>) -> bool {
        match event {
            SimEvent::Recv(port) => io.can_recv(port),
            SimEvent::Ack(port) => {
                self.sent_outstanding.get(port).copied().unwrap_or(false)
                    && io.output_drained(port)
                    && self.out_pending.iter().all(|(p, _)| p != port)
            }
            SimEvent::StateIs(name, value) => {
                self.states.get(name).map(String::as_str) == Some(value.as_str())
            }
            SimEvent::StateIsNot(name, value) => {
                self.states.get(name).map(String::as_str) != Some(value.as_str())
            }
            SimEvent::And(a, b) => self.event_true(a, io) && self.event_true(b, io),
            SimEvent::Or(a, b) => self.event_true(a, io) || self.event_true(b, io),
            SimEvent::Not(e) => !self.event_true(e, io),
        }
    }

    fn eval(&self, expr: &SimExpr, env: &HashMap<String, i64>, io: &IoCtx<'_>) -> i64 {
        match expr {
            SimExpr::Int(v) => *v,
            SimExpr::Data(port) | SimExpr::Field(port, _) => {
                // Group fields are packed into the single element
                // payload at this abstraction level.
                io.peek(port).map(|p| p.data).unwrap_or(0)
            }
            SimExpr::Var(name) => env.get(name).copied().unwrap_or(0),
            SimExpr::Neg(e) => -self.eval(e, env, io),
            SimExpr::Not(e) => (self.eval(e, env, io) == 0) as i64,
            SimExpr::Binary(op, a, b) => {
                let x = self.eval(a, env, io);
                let y = self.eval(b, env, io);
                match op {
                    SimOp::Add => x.wrapping_add(y),
                    SimOp::Sub => x.wrapping_sub(y),
                    SimOp::Mul => x.wrapping_mul(y),
                    SimOp::Div => {
                        if y == 0 {
                            0
                        } else {
                            x / y
                        }
                    }
                    SimOp::Rem => {
                        if y == 0 {
                            0
                        } else {
                            x % y
                        }
                    }
                    SimOp::Eq => (x == y) as i64,
                    SimOp::Ne => (x != y) as i64,
                    SimOp::Lt => (x < y) as i64,
                    SimOp::Le => (x <= y) as i64,
                    SimOp::Gt => (x > y) as i64,
                    SimOp::Ge => (x >= y) as i64,
                    SimOp::And => ((x != 0) && (y != 0)) as i64,
                    SimOp::Or => ((x != 0) || (y != 0)) as i64,
                }
            }
        }
    }

    /// Executes `actions`; returns the index at which a top-level
    /// `delay` paused execution (the remainder is deferred).
    fn exec_actions(
        &mut self,
        actions: &[SimAction],
        env: &mut HashMap<String, i64>,
        io: &mut IoCtx<'_>,
        top_level: bool,
    ) -> Option<usize> {
        for (index, action) in actions.iter().enumerate() {
            match action {
                SimAction::Send { port, expr } => {
                    let value = self.eval(expr, env, io);
                    self.out_pending
                        .push_back((port.clone(), Packet::data(value)));
                }
                SimAction::Last { port, levels } => {
                    // Attach the close to the most recent pending
                    // packet for this port, or emit an empty close.
                    if let Some(entry) = self.out_pending.iter_mut().rev().find(|(p, _)| p == port)
                    {
                        entry.1.last += levels;
                    } else {
                        self.out_pending
                            .push_back((port.clone(), Packet::close(*levels)));
                    }
                }
                SimAction::Ack(port) => {
                    io.recv(port);
                }
                SimAction::Delay(expr) => {
                    let cycles = self.eval(expr, env, io).max(0) as u64;
                    self.busy_until = self.busy_until.max(io.cycle() + cycles);
                    if top_level {
                        return Some(index + 1);
                    }
                }
                SimAction::SetState(name, value) => {
                    let old = self
                        .states
                        .insert(name.clone(), value.clone())
                        .unwrap_or_default();
                    if old != *value {
                        self.transitions.push((io.cycle(), old, value.clone()));
                    }
                }
                SimAction::If {
                    cond,
                    then_actions,
                    else_actions,
                } => {
                    let branch = if self.eval(cond, env, io) != 0 {
                        then_actions
                    } else {
                        else_actions
                    };
                    self.exec_actions(branch, env, io, false);
                }
                SimAction::For {
                    var,
                    start,
                    end,
                    body,
                } => {
                    let from = self.eval(start, env, io);
                    let to = self.eval(end, env, io);
                    for value in from..to {
                        env.insert(var.clone(), value);
                        self.exec_actions(body, env, io, false);
                    }
                    env.remove(var);
                }
            }
        }
        None
    }
}

impl Behavior for SimInterpreter {
    fn tick(&mut self, io: &mut IoCtx<'_>) {
        // Backpressured sends first.
        if !self.flush_pending(io) {
            return;
        }
        if io.cycle() < self.busy_until {
            return;
        }
        // Resume a handler paused by delay().
        if let Some((actions, mut env)) = self.deferred.take() {
            if let Some(resume_at) = self.exec_actions(&actions, &mut env, io, true) {
                self.deferred = Some((actions[resume_at..].to_vec(), env));
            }
            self.flush_pending(io);
            return;
        }
        // Evaluate handlers in declaration order; each handler
        // re-checks its event because earlier handlers may have
        // consumed packets.
        for i in 0..self.block.handlers.len() {
            let handler = self.block.handlers[i].clone();
            if !self.event_true(&handler.event, io) {
                continue;
            }
            // Reset ack flags consumed by this event.
            reset_ack_flags(&handler.event, &mut self.sent_outstanding);
            let mut env = HashMap::new();
            if let Some(resume_at) = self.exec_actions(&handler.actions, &mut env, io, true) {
                self.deferred = Some((handler.actions[resume_at..].to_vec(), env));
                break;
            }
        }
        self.flush_pending(io);
    }

    fn state_label(&self) -> Option<String> {
        if self.states.is_empty() {
            return None;
        }
        let mut parts: Vec<String> = self
            .states
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        parts.sort();
        Some(parts.join(","))
    }

    fn wake(&self, io: &IoCtx<'_>) -> Wake {
        // A paused handler resumes when the delay window closes.
        if self.deferred.is_some() || io.cycle() < self.busy_until {
            return Wake::AtCycle(self.busy_until);
        }
        // Backpressured sends are unblocked by downstream credit,
        // which is a channel event.
        if !self.out_pending.is_empty() {
            return Wake::OnEvent;
        }
        // A handler that could fire right now (e.g. on a state set by
        // this very tick, or on an unconsumed input) needs another
        // tick; otherwise only a channel event can change anything.
        if self
            .block
            .handlers
            .iter()
            .any(|h| self.event_true(&h.event, io))
        {
            return Wake::NextCycle;
        }
        Wake::OnEvent
    }
}

fn reset_ack_flags(event: &SimEvent, flags: &mut HashMap<String, bool>) {
    match event {
        SimEvent::Ack(port) => {
            flags.insert(port.clone(), false);
        }
        SimEvent::And(a, b) | SimEvent::Or(a, b) => {
            reset_ack_flags(a, flags);
            reset_ack_flags(b, flags);
        }
        SimEvent::Not(e) => reset_ack_flags(e, flags),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;

    struct Rig {
        interp: SimInterpreter,
        channels: Vec<Channel>,
        inputs: HashMap<String, usize>,
        outputs: HashMap<String, usize>,
        blocked: HashMap<String, u64>,
        cycle: u64,
    }

    impl Rig {
        fn new(source: &str, ins: &[&str], outs: &[&str]) -> Rig {
            let interp = SimInterpreter::from_source(source).unwrap();
            let mut channels = Vec::new();
            let mut inputs = HashMap::new();
            let mut outputs = HashMap::new();
            for n in ins {
                inputs.insert(n.to_string(), channels.len());
                channels.push(Channel::new(*n, 8));
            }
            for n in outs {
                outputs.insert(n.to_string(), channels.len());
                channels.push(Channel::new(*n, 8));
            }
            Rig {
                interp,
                channels,
                inputs,
                outputs,
                blocked: HashMap::new(),
                cycle: 0,
            }
        }

        fn feed(&mut self, port: &str, packets: &[Packet]) {
            let idx = self.inputs[port];
            for p in packets {
                assert!(self.channels[idx].push(*p));
            }
            self.channels[idx].commit();
        }

        fn tick(&mut self) {
            let mut activity = false;
            let mut io = IoCtx {
                cycle: self.cycle,
                channels: &mut self.channels,
                inputs: &self.inputs,
                outputs: &self.outputs,
                blocked: &mut self.blocked,
                activity: &mut activity,
            };
            self.interp.tick(&mut io);
            for c in &mut self.channels {
                c.commit();
            }
            self.cycle += 1;
        }

        fn run(&mut self, n: u64) {
            for _ in 0..n {
                self.tick();
            }
        }

        fn drain(&mut self, port: &str) -> Vec<Packet> {
            let idx = self.outputs[port];
            let mut out = Vec::new();
            while let Some(p) = self.channels[idx].pop() {
                out.push(p);
            }
            out
        }
    }

    const ADDER: &str = r#"
state st = "idle";
on (in0.recv && in1.recv) {
    delay(8);
    send(outp, in0.data + in1.data);
    ack(in0);
    ack(in1);
    set_state(st, "busy");
}
on (outp.ack && st == "busy") {
    set_state(st, "idle");
}
"#;

    #[test]
    fn adder_simulation_code_adds_with_delay() {
        let mut rig = Rig::new(ADDER, &["in0", "in1"], &["outp"]);
        rig.feed("in0", &[Packet::data(2)]);
        rig.feed("in1", &[Packet::data(3)]);
        rig.run(6);
        // Delay of 8 cycles: nothing yet.
        assert!(rig.drain("outp").is_empty());
        rig.run(6);
        let out = rig.drain("outp");
        assert_eq!(out, vec![Packet::data(5)]);
    }

    #[test]
    fn adder_throughput_is_one_per_delay() {
        let mut rig = Rig::new(ADDER, &["in0", "in1"], &["outp"]);
        let packets: Vec<Packet> = (0..8).map(Packet::data).collect();
        rig.feed("in0", &packets);
        rig.feed("in1", &packets);
        rig.run(34);
        // ~4 results in 34 cycles at one result per ~8 cycles.
        let produced = rig.drain("outp").len();
        assert!((3..=5).contains(&produced), "produced {produced}");
    }

    #[test]
    fn state_transitions_recorded() {
        let mut rig = Rig::new(ADDER, &["in0", "in1"], &["outp"]);
        rig.feed("in0", &[Packet::data(1)]);
        rig.feed("in1", &[Packet::data(1)]);
        rig.run(24);
        // Drain so outp.ack fires.
        rig.drain("outp");
        rig.run(4);
        let transitions = rig.interp.transitions();
        assert!(transitions
            .iter()
            .any(|(_, from, to)| from == "idle" && to == "busy"));
        assert!(transitions
            .iter()
            .any(|(_, from, to)| from == "busy" && to == "idle"));
        assert_eq!(rig.interp.state_label().as_deref(), Some("st=idle"));
    }

    #[test]
    fn if_and_for_actions() {
        let src = r#"
on (i.recv) {
    if (i.data > 10) {
        send(o, i.data * 2);
    } else {
        for k in (0..3) {
            send(o, i.data + k);
        }
    }
    ack(i);
}
"#;
        let mut rig = Rig::new(src, &["i"], &["o"]);
        rig.feed("i", &[Packet::data(20), Packet::data(1)]);
        rig.run(6);
        let out: Vec<i64> = rig.drain("o").iter().map(|p| p.data).collect();
        assert_eq!(out, vec![40, 1, 2, 3]);
    }

    #[test]
    fn last_action_closes_dimension() {
        let src = r#"
on (i.recv) {
    send(o, i.data);
    last(o, 1);
    ack(i);
}
"#;
        let mut rig = Rig::new(src, &["i"], &["o"]);
        rig.feed("i", &[Packet::data(9)]);
        rig.run(3);
        assert_eq!(rig.drain("o"), vec![Packet::last(9, 1)]);
    }

    #[test]
    fn backpressure_holds_pending_sends() {
        let src = r#"
on (i.recv) {
    send(o, i.data);
    ack(i);
}
"#;
        let interp = SimInterpreter::from_source(src).unwrap();
        let mut channels = vec![Channel::new("i", 8), Channel::new("o", 1)];
        let mut inputs = HashMap::new();
        inputs.insert("i".to_string(), 0);
        let mut outputs = HashMap::new();
        outputs.insert("o".to_string(), 1);
        let mut rig = Rig {
            interp,
            channels: {
                channels[0].push(Packet::data(1));
                channels[0].push(Packet::data(2));
                channels[0].push(Packet::data(3));
                channels[0].commit();
                channels
            },
            inputs,
            outputs,
            blocked: HashMap::new(),
            cycle: 0,
        };
        // Capacity-1 output: progress is one packet per drain.
        rig.run(3);
        let idx = rig.outputs["o"];
        assert_eq!(rig.channels[idx].len(), 1);
        assert_eq!(rig.channels[idx].pop(), Some(Packet::data(1)));
        rig.run(3);
        let out = rig.drain("o");
        assert_eq!(out[0], Packet::data(2));
    }
}
