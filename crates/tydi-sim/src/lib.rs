//! # tydi-sim
//!
//! The Tydi simulator (paper §V): an event-driven, handshake-accurate
//! simulator for elaborated Tydi designs.
//!
//! The simulator flattens a validated [`tydi_ir::Project`] into a
//! graph of leaf components (external implementations) connected by
//! bounded FIFO channels that model the `valid`/`ready` handshake.
//! Component behaviour comes from three sources:
//!
//! * **builtin models** for every `std.*` standard-library component;
//! * **interpreted simulation code** (`simulation { ... }` blocks on
//!   external impls, paper §V-A) — state variables, composite events,
//!   explicit acknowledgement and `delay(n)`;
//! * **custom Rust behaviours** registered by the embedding crate
//!   (the Fletcher substrate uses this to feed table columns).
//!
//! The engine is an event-driven scheduler: components sit on a
//! ready-set worklist and are stepped only when an input channel gains
//! a packet, an output channel gains credit, or their own [`Wake`]
//! hint (internal delays, spontaneous sources) fires; inert cycles are
//! skipped outright. [`SimBatch`] shards N independent stimulus
//! scenarios over the same design across threads and merges their
//! bottleneck reports.
//!
//! Analyses reproduce the paper's §V-B capabilities: per-port blocked
//! time for *bottleneck* identification, quiescence-based *deadlock*
//! detection with typed [`StopReason`]s, data-flow recording, and
//! state-transition tables. The boundary recording lowers to a
//! [`tydi_ir::Testbench`], which `tydi-vhdl` turns into a VHDL
//! testbench (paper §V-C).

#![warn(missing_docs)]

pub mod batch;
pub mod behavior;
pub mod builtin_behaviors;
pub mod channel;
pub mod engine;
pub mod fault;
pub mod graph;
pub mod interp;
pub mod report;
pub mod testbench_gen;

pub use batch::{BatchError, BatchReport, Scenario, ScenarioReport, SimBatch};
pub use behavior::{Behavior, BehaviorRegistry, IoCtx, Wake};
pub use channel::{Channel, Packet};
pub use engine::{RunResult, SchedulerKind, SimError, Simulator, StopReason};
pub use fault::{Fault, FaultParseError, FaultPlan, FaultStats};
pub use report::{BottleneckReport, ChannelStats, PortBlockage, SimReport};
