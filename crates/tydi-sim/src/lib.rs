//! # tydi-sim
//!
//! The Tydi simulator (paper §V): an event-driven, handshake-accurate
//! simulator for elaborated Tydi designs.
//!
//! The simulator flattens a validated [`tydi_ir::Project`] into a
//! graph of leaf components (external implementations) connected by
//! bounded FIFO channels that model the `valid`/`ready` handshake.
//! Component behaviour comes from three sources:
//!
//! * **builtin models** for every `std.*` standard-library component;
//! * **interpreted simulation code** (`simulation { ... }` blocks on
//!   external impls, paper §V-A) — state variables, composite events,
//!   explicit acknowledgement and `delay(n)`;
//! * **custom Rust behaviours** registered by the embedding crate
//!   (the Fletcher substrate uses this to feed table columns).
//!
//! Analyses reproduce the paper's §V-B capabilities: per-port blocked
//! time for *bottleneck* identification, quiescence-based *deadlock*
//! detection, data-flow recording, and state-transition tables. The
//! boundary recording lowers to a [`tydi_ir::Testbench`], which
//! `tydi-vhdl` turns into a VHDL testbench (paper §V-C).

#![warn(missing_docs)]

pub mod behavior;
pub mod builtin_behaviors;
pub mod channel;
pub mod engine;
pub mod graph;
pub mod interp;
pub mod report;
pub mod testbench_gen;

pub use behavior::{Behavior, BehaviorRegistry, IoCtx};
pub use channel::{Channel, Packet};
pub use engine::{RunResult, SimError, Simulator};
pub use report::{BottleneckReport, PortBlockage};
