//! Lightweight structural checks on generated SystemVerilog.
//!
//! Not a Verilog parser; a tripwire used by the test suite to catch
//! codegen regressions: unbalanced `module`/`endmodule` and
//! `begin`/`end` pairs, unbalanced parentheses outside comments,
//! double semicolons, and empty port connections.

/// A single issue found by [`check_verilog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckIssue {
    /// 1-based line of the issue (0 when file-level).
    pub line: usize,
    /// Description.
    pub message: String,
}

/// Scans SystemVerilog text for structural problems; returns all
/// issues found.
pub fn check_verilog(text: &str) -> Vec<CheckIssue> {
    let mut issues = Vec::new();
    let mut modules = 0usize;
    let mut endmodules = 0usize;
    let mut begins = 0usize;
    let mut ends = 0usize;
    let mut paren_depth: i64 = 0;

    for (i, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line);
        let words: Vec<&str> = line
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .filter(|w| !w.is_empty())
            .collect();
        for w in &words {
            match *w {
                "module" => modules += 1,
                "endmodule" => endmodules += 1,
                "begin" => begins += 1,
                "end" => ends += 1,
                _ => {}
            }
        }
        for c in line.chars() {
            match c {
                '(' => paren_depth += 1,
                ')' => {
                    paren_depth -= 1;
                    if paren_depth < 0 {
                        issues.push(CheckIssue {
                            line: i + 1,
                            message: "unbalanced closing parenthesis".into(),
                        });
                        paren_depth = 0;
                    }
                }
                _ => {}
            }
        }
        if line.contains(";;") {
            issues.push(CheckIssue {
                line: i + 1,
                message: "double semicolon".into(),
            });
        }
        if line.contains("()") {
            issues.push(CheckIssue {
                line: i + 1,
                message: "empty port connection".into(),
            });
        }
    }
    if modules != endmodules {
        issues.push(CheckIssue {
            line: 0,
            message: format!("{modules} `module`(s) but {endmodules} `endmodule`(s)"),
        });
    }
    if begins != ends {
        issues.push(CheckIssue {
            line: 0,
            message: format!("{begins} `begin`(s) but {ends} `end`(s)"),
        });
    }
    if paren_depth != 0 {
        issues.push(CheckIssue {
            line: 0,
            message: format!("unbalanced parentheses (depth {paren_depth} at end of file)"),
        });
    }
    issues
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_module_passes() {
        let sv = "module x (\n  input logic a\n);\n  assign b = a;\nendmodule\n";
        assert!(check_verilog(sv).is_empty());
    }

    #[test]
    fn detects_missing_endmodule() {
        let sv = "module x (\n  input logic a\n);\n";
        let issues = check_verilog(sv);
        assert!(issues.iter().any(|i| i.message.contains("endmodule")));
    }

    #[test]
    fn detects_unbalanced_begin_end() {
        let sv = "module x (\n);\n  always_ff @(posedge clk) begin\n    a <= b;\nendmodule\n";
        let issues = check_verilog(sv);
        assert!(issues.iter().any(|i| i.message.contains("begin")));
    }

    #[test]
    fn comments_do_not_confuse_paren_count() {
        let sv = "module x (\n  input logic a // note ) stray\n);\nendmodule\n";
        assert!(check_verilog(sv).is_empty());
    }

    #[test]
    fn detects_double_semicolon_and_empty_connection() {
        let issues = check_verilog("assign x = y;;\n  .clk ()\n");
        assert!(issues.iter().any(|i| i.message.contains("semicolon")));
        assert!(issues.iter().any(|i| i.message.contains("empty port")));
    }

    #[test]
    fn word_matching_ignores_identifiers_containing_keywords() {
        // `endmodule_x` and `beginner` are identifiers, not keywords.
        let sv = "module x (\n);\n  logic endmodule_x;\n  logic beginner;\nendmodule\n";
        assert!(check_verilog(sv).is_empty());
    }
}
