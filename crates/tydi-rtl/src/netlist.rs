//! The backend-neutral structural netlist.
//!
//! A [`Netlist`] is the contract between the Tydi-IR lowering (which
//! runs once, expanding typed stream ports into scalar/vector signals
//! and planning structural wiring) and the per-backend emitters
//! (which only render). Three module body shapes cover everything the
//! toolchain generates:
//!
//! * **structural** — net declarations, continuous wire-to-wire
//!   assignments, and instances with explicit port maps;
//! * **behavioral** — opaque per-backend text blocks produced by the
//!   builtin registry ("too elementary to be described as instances
//!   and connections", paper §IV-C);
//! * **black-box** — interface only, body supplied by an external
//!   tool.
//!
//! Comments are first-class items (not embedded `-- ` text) so each
//! emitter can render them with its own comment leader; the lowering
//! simply omits them when comments are disabled.

use crate::names::Backend;
use std::collections::BTreeMap;

/// Direction of a module port, from the module's own perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// Driven from outside.
    In,
    /// Driven by this module.
    Out,
}

/// One scalar (`width == 1`) or vector port of a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModulePort {
    /// Legalized signal name.
    pub name: String,
    /// Port direction.
    pub dir: PortDir,
    /// Width in bits; 1 renders as a scalar type.
    pub width: u32,
}

/// An entry of a module's port list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortItem {
    /// A comment line (without comment leader).
    Comment(String),
    /// A port declaration.
    Port(ModulePort),
}

/// One internal net (signal/wire) declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetDecl {
    /// Legalized net name.
    pub name: String,
    /// Width in bits; 1 renders as a scalar type.
    pub width: u32,
}

/// An entry of a structural body's declaration section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetItem {
    /// A comment line (without comment leader).
    Comment(String),
    /// A net declaration.
    Net(NetDecl),
}

/// An entry of a structural body's concurrent-assignment section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignItem {
    /// A comment line (without comment leader).
    Comment(String),
    /// A continuous assignment `target <= source` / `assign target =
    /// source`. Both sides are plain signal names; expression-level
    /// logic belongs in behavioral bodies.
    Assign {
        /// Driven signal.
        target: String,
        /// Driving signal.
        source: String,
    },
}

/// One instantiation of another module of the same netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Legalized instance label.
    pub label: String,
    /// Emitted name of the instantiated module.
    pub module: String,
    /// `(formal, actual)` pairs, in declaration order of the child's
    /// ports (clocks first).
    pub port_map: Vec<(String, String)>,
}

/// An opaque behavioral body for one backend: text produced by a
/// builtin generator, already indented, newline-terminated, and using
/// that backend's syntax.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BehavioralBody {
    /// Declarations (signals, constants) preceding the statement part.
    pub decls: String,
    /// Concurrent statements and processes.
    pub stmts: String,
}

/// The body of a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleBody {
    /// Nets, continuous assignments, and child instances.
    Structural {
        /// Net declarations, interleaved with comments.
        nets: Vec<NetItem>,
        /// Wire-to-wire assignments, interleaved with comments.
        assigns: Vec<AssignItem>,
        /// Child instantiations, in order.
        instances: Vec<Instance>,
    },
    /// Per-backend opaque text blocks. An emitter whose backend has no
    /// entry reports [`crate::emit::EmitError::MissingBody`].
    Behavioral {
        /// One body per backend that has a registered generator.
        bodies: BTreeMap<Backend, BehavioralBody>,
    },
    /// Interface only; the body is supplied by an external tool.
    BlackBox {
        /// Explanatory comment lines (without comment leader).
        comments: Vec<String>,
    },
}

/// One RTL module: the unit of emission (one file per module).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Legalized, netlist-unique module name.
    pub name: String,
    /// Header comment lines (without comment leader), e.g. the source
    /// implementation name and its doc comment.
    pub header: Vec<String>,
    /// The port list, comments interleaved.
    pub ports: Vec<PortItem>,
    /// The body.
    pub body: ModuleBody,
}

impl Module {
    /// The declared (non-comment) ports.
    pub fn port_decls(&self) -> impl Iterator<Item = &ModulePort> {
        self.ports.iter().filter_map(|item| match item {
            PortItem::Port(p) => Some(p),
            PortItem::Comment(_) => None,
        })
    }
}

/// A whole design: modules in definition order (children before the
/// parents that instantiate them, matching Tydi-IR project order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    /// Project name, for generated-file headers.
    pub name: String,
    /// Whether explanatory comments were collected during lowering
    /// (emitters use this to gate their own header lines).
    pub emit_comments: bool,
    /// The modules.
    pub modules: Vec<Module>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            emit_comments: true,
            modules: Vec::new(),
        }
    }

    /// Looks up a module by emitted name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// The child instances of a module's structural body (empty for
    /// behavioral/black-box modules and unknown names).
    pub fn instances_of(&self, name: &str) -> &[Instance] {
        match self.module(name).map(|m| &m.body) {
            Some(ModuleBody::Structural { instances, .. }) => instances,
            _ => &[],
        }
    }

    /// Every module reachable from `root` through instantiations,
    /// `root` first, in deterministic DFS preorder with duplicates
    /// removed. Analysis passes use this to scope a report to the
    /// modules one top level actually emits, and to map hierarchical
    /// component paths onto emitted module names.
    pub fn reachable_from(&self, root: &str) -> Vec<&str> {
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let mut order: Vec<&str> = Vec::new();
        let mut stack: Vec<&str> = Vec::new();
        if let Some(module) = self.module(root) {
            seen.insert(module.name.as_str());
            stack.push(module.name.as_str());
        }
        while let Some(name) = stack.pop() {
            order.push(name);
            // Children push in reverse so preorder follows declaration
            // order of the instances.
            for instance in self.instances_of(name).iter().rev() {
                if self.module(&instance.module).is_some() && seen.insert(instance.module.as_str())
                {
                    stack.push(instance.module.as_str());
                }
            }
        }
        order
    }

    /// Total number of net declarations across all structural bodies
    /// (a size proxy used by benchmarks).
    pub fn net_count(&self) -> usize {
        self.modules
            .iter()
            .map(|m| match &m.body {
                ModuleBody::Structural { nets, .. } => {
                    nets.iter().filter(|n| matches!(n, NetItem::Net(_))).count()
                }
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut n = Netlist::new("p");
        n.modules.push(Module {
            name: "leaf".into(),
            header: vec![],
            ports: vec![
                PortItem::Comment("port i".into()),
                PortItem::Port(ModulePort {
                    name: "i_data".into(),
                    dir: PortDir::In,
                    width: 8,
                }),
            ],
            body: ModuleBody::BlackBox { comments: vec![] },
        });
        n.modules.push(Module {
            name: "top".into(),
            header: vec![],
            ports: vec![],
            body: ModuleBody::Structural {
                nets: vec![
                    NetItem::Comment("c".into()),
                    NetItem::Net(NetDecl {
                        name: "n0".into(),
                        width: 1,
                    }),
                ],
                assigns: vec![],
                instances: vec![],
            },
        });
        n
    }

    #[test]
    fn module_lookup_and_port_decls() {
        let n = sample();
        let leaf = n.module("leaf").unwrap();
        assert_eq!(leaf.port_decls().count(), 1);
        assert!(n.module("ghost").is_none());
    }

    #[test]
    fn net_count_skips_comments() {
        assert_eq!(sample().net_count(), 1);
    }

    fn structural(name: &str, children: &[&str]) -> Module {
        Module {
            name: name.into(),
            header: vec![],
            ports: vec![],
            body: ModuleBody::Structural {
                nets: vec![],
                assigns: vec![],
                instances: children
                    .iter()
                    .enumerate()
                    .map(|(k, child)| Instance {
                        label: format!("u{k}"),
                        module: (*child).into(),
                        port_map: vec![],
                    })
                    .collect(),
            },
        }
    }

    #[test]
    fn reachable_from_walks_instances_in_preorder() {
        let mut n = Netlist::new("p");
        // top -> {mid, leaf}, mid -> {leaf, leaf} (shared child), plus
        // an unrelated module that must not appear.
        n.modules.push(structural("leaf", &[]));
        n.modules.push(structural("mid", &["leaf", "leaf"]));
        n.modules.push(structural("top", &["mid", "leaf"]));
        n.modules.push(structural("unrelated", &["leaf"]));
        assert_eq!(n.reachable_from("top"), vec!["top", "mid", "leaf"]);
        assert_eq!(n.reachable_from("leaf"), vec!["leaf"]);
        assert!(n.reachable_from("ghost").is_empty());
        assert_eq!(n.instances_of("mid").len(), 2);
        assert!(n.instances_of("leaf").is_empty());
    }
}
