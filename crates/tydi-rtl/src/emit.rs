//! The emitter abstraction: netlist in, text files out.
//!
//! An [`Emitter`] renders one [`Module`] to one source file;
//! [`Emitter::emit_netlist`] fans per-module emission out across the
//! thread pool (modules are independent once lowered) while keeping
//! the output in definition order.

use crate::names::Backend;
use crate::netlist::{Module, Netlist};
use rayon::prelude::*;

/// One generated source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmittedFile {
    /// Suggested file name, e.g. `top_i.vhd` or `top_i.sv`.
    pub name: String,
    /// File contents.
    pub contents: String,
}

/// Errors raised while rendering a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitError {
    /// A behavioral module has no body for the requested backend: the
    /// builtin was registered for some backends but not this one.
    MissingBody {
        /// The module lacking a body.
        module: String,
        /// The backend that asked for it.
        backend: Backend,
    },
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitError::MissingBody { module, backend } => write!(
                f,
                "module `{module}` has no behavioral body for backend `{backend}` \
                 (builtin not registered for this backend)"
            ),
        }
    }
}

impl std::error::Error for EmitError {}

/// Renders netlist modules in one backend's syntax.
///
/// Implementations must be [`Sync`]: [`Emitter::emit_netlist`] calls
/// [`Emitter::emit_module`] from worker threads.
pub trait Emitter: Sync {
    /// The backend this emitter renders.
    fn backend(&self) -> Backend;

    /// The file name for one module.
    fn file_name(&self, module: &Module) -> String {
        format!("{}.{}", module.name, self.backend().file_extension())
    }

    /// Renders one module to source text.
    fn emit_module(&self, netlist: &Netlist, module: &Module) -> Result<String, EmitError>;

    /// Renders every module, one file per module, in definition
    /// order. Modules are rendered in parallel.
    fn emit_netlist(&self, netlist: &Netlist) -> Result<Vec<EmittedFile>, EmitError> {
        let results: Vec<Result<EmittedFile, EmitError>> = netlist
            .modules
            .par_iter()
            .map(|module| {
                let _span =
                    tydi_obs::trace::span_named("tydi-rtl", || format!("emit:{}", module.name));
                Ok(EmittedFile {
                    name: self.file_name(module),
                    contents: self.emit_module(netlist, module)?,
                })
            })
            .collect();
        results.into_iter().collect()
    }
}

/// The emitter for a backend.
pub fn emitter_for(backend: Backend) -> Box<dyn Emitter + Send + Sync> {
    match backend {
        Backend::Vhdl => Box::new(crate::vhdl::VhdlEmitter),
        Backend::SystemVerilog => Box::new(crate::verilog::SystemVerilogEmitter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::ModuleBody;

    #[test]
    fn emitter_for_covers_all_backends() {
        for backend in Backend::ALL {
            assert_eq!(emitter_for(backend).backend(), backend);
        }
    }

    #[test]
    fn missing_body_error_names_module_and_backend() {
        let mut netlist = Netlist::new("p");
        netlist.modules.push(Module {
            name: "m".into(),
            header: vec![],
            ports: vec![],
            body: ModuleBody::Behavioral {
                bodies: Default::default(),
            },
        });
        let err = emitter_for(Backend::SystemVerilog)
            .emit_netlist(&netlist)
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("`m`") && text.contains("verilog"), "{text}");
    }
}
