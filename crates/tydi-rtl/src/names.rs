//! Identifier legalization with per-backend keyword tables.
//!
//! Tydi-lang names (which may contain template mangling such as
//! `duplicator_i<Stream(Bit(8)),2>`) must map to legal, unique HDL
//! identifiers. The rules differ per backend: VHDL identifiers are
//! case-*insensitive* and must avoid the VHDL reserved words;
//! (System)Verilog identifiers are case-*sensitive* and must avoid
//! the Verilog keywords. Because one netlist is rendered by several
//! emitters, the default [`sanitize`] and [`NameAllocator`] are
//! backend-*neutral*: they avoid the union of all keyword tables and
//! uniquify case-insensitively (the strictest rule), so a single
//! legalized name is valid everywhere. Per-backend behaviour is
//! available through [`sanitize_for`] and [`NameAllocator::for_backend`].

use std::collections::HashSet;

/// A supported RTL backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Backend {
    /// VHDL-93.
    Vhdl,
    /// SystemVerilog (IEEE 1800).
    SystemVerilog,
}

impl Backend {
    /// Every supported backend, in emission-preference order.
    pub const ALL: [Backend; 2] = [Backend::Vhdl, Backend::SystemVerilog];

    /// Lower-case backend name, as accepted by `tydic --emit`.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Vhdl => "vhdl",
            Backend::SystemVerilog => "verilog",
        }
    }

    /// The reserved words of this backend (lower-case).
    pub fn reserved_words(&self) -> &'static [&'static str] {
        match self {
            Backend::Vhdl => VHDL_RESERVED,
            Backend::SystemVerilog => VERILOG_RESERVED,
        }
    }

    /// Whether identifiers are compared case-sensitively. VHDL is
    /// case-insensitive (`Top` and `top` collide); Verilog is not.
    pub fn case_sensitive(&self) -> bool {
        match self {
            Backend::Vhdl => false,
            Backend::SystemVerilog => true,
        }
    }

    /// The single-line comment leader.
    pub fn comment_prefix(&self) -> &'static str {
        match self {
            Backend::Vhdl => "--",
            Backend::SystemVerilog => "//",
        }
    }

    /// The conventional file extension for generated sources.
    pub fn file_extension(&self) -> &'static str {
        match self {
            Backend::Vhdl => "vhd",
            Backend::SystemVerilog => "sv",
        }
    }

    /// True if `word` is reserved in this backend. Keyword tables are
    /// lower-case; VHDL matches case-insensitively, Verilog exactly
    /// (keywords are themselves lower-case, so `Reg` is a legal
    /// Verilog identifier while `reg` is not).
    pub fn is_reserved(&self, word: &str) -> bool {
        if self.case_sensitive() {
            self.reserved_words().contains(&word)
        } else {
            self.reserved_words()
                .contains(&word.to_ascii_lowercase().as_str())
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// VHDL-93 reserved words (lowercase).
const VHDL_RESERVED: &[&str] = &[
    "abs",
    "access",
    "after",
    "alias",
    "all",
    "and",
    "architecture",
    "array",
    "assert",
    "attribute",
    "begin",
    "block",
    "body",
    "buffer",
    "bus",
    "case",
    "component",
    "configuration",
    "constant",
    "disconnect",
    "downto",
    "else",
    "elsif",
    "end",
    "entity",
    "exit",
    "file",
    "for",
    "function",
    "generate",
    "generic",
    "group",
    "guarded",
    "if",
    "impure",
    "in",
    "inertial",
    "inout",
    "is",
    "label",
    "library",
    "linkage",
    "literal",
    "loop",
    "map",
    "mod",
    "nand",
    "new",
    "next",
    "nor",
    "not",
    "null",
    "of",
    "on",
    "open",
    "or",
    "others",
    "out",
    "package",
    "port",
    "postponed",
    "procedure",
    "process",
    "pure",
    "range",
    "record",
    "register",
    "reject",
    "rem",
    "report",
    "return",
    "rol",
    "ror",
    "select",
    "severity",
    "signal",
    "shared",
    "sla",
    "sll",
    "sra",
    "srl",
    "subtype",
    "then",
    "to",
    "transport",
    "type",
    "unaffected",
    "units",
    "until",
    "use",
    "variable",
    "wait",
    "when",
    "while",
    "with",
    "xnor",
    "xor",
];

/// SystemVerilog (IEEE 1800) keywords (lowercase). Covers the
/// Verilog-2005 set plus the SystemVerilog additions generated code
/// is likely to collide with.
const VERILOG_RESERVED: &[&str] = &[
    "alias",
    "always",
    "always_comb",
    "always_ff",
    "always_latch",
    "and",
    "assert",
    "assign",
    "assume",
    "automatic",
    "before",
    "begin",
    "bind",
    "bins",
    "binsof",
    "bit",
    "break",
    "buf",
    "bufif0",
    "bufif1",
    "byte",
    "case",
    "casex",
    "casez",
    "cell",
    "chandle",
    "class",
    "clocking",
    "cmos",
    "config",
    "const",
    "constraint",
    "context",
    "continue",
    "cover",
    "covergroup",
    "coverpoint",
    "cross",
    "deassign",
    "default",
    "defparam",
    "design",
    "disable",
    "dist",
    "do",
    "edge",
    "else",
    "end",
    "endcase",
    "endclass",
    "endclocking",
    "endconfig",
    "endfunction",
    "endgenerate",
    "endgroup",
    "endinterface",
    "endmodule",
    "endpackage",
    "endprimitive",
    "endprogram",
    "endproperty",
    "endspecify",
    "endsequence",
    "endtable",
    "endtask",
    "enum",
    "event",
    "expect",
    "export",
    "extends",
    "extern",
    "final",
    "first_match",
    "for",
    "force",
    "foreach",
    "forever",
    "fork",
    "forkjoin",
    "function",
    "generate",
    "genvar",
    "highz0",
    "highz1",
    "if",
    "iff",
    "ifnone",
    "ignore_bins",
    "illegal_bins",
    "import",
    "incdir",
    "include",
    "initial",
    "inout",
    "input",
    "inside",
    "instance",
    "int",
    "integer",
    "interface",
    "intersect",
    "join",
    "join_any",
    "join_none",
    "large",
    "liblist",
    "library",
    "local",
    "localparam",
    "logic",
    "longint",
    "macromodule",
    "matches",
    "medium",
    "modport",
    "module",
    "nand",
    "negedge",
    "new",
    "nmos",
    "nor",
    "noshowcancelled",
    "not",
    "notif0",
    "notif1",
    "null",
    "or",
    "output",
    "package",
    "packed",
    "parameter",
    "pmos",
    "posedge",
    "primitive",
    "priority",
    "program",
    "property",
    "protected",
    "pull0",
    "pull1",
    "pulldown",
    "pullup",
    "pure",
    "rand",
    "randc",
    "randcase",
    "randsequence",
    "rcmos",
    "real",
    "realtime",
    "ref",
    "reg",
    "release",
    "repeat",
    "return",
    "rnmos",
    "rpmos",
    "rtran",
    "rtranif0",
    "rtranif1",
    "scalared",
    "sequence",
    "shortint",
    "shortreal",
    "showcancelled",
    "signed",
    "small",
    "solve",
    "specify",
    "specparam",
    "static",
    "string",
    "strong0",
    "strong1",
    "struct",
    "super",
    "supply0",
    "supply1",
    "table",
    "tagged",
    "task",
    "this",
    "throughout",
    "time",
    "timeprecision",
    "timeunit",
    "tran",
    "tranif0",
    "tranif1",
    "tri",
    "tri0",
    "tri1",
    "triand",
    "trior",
    "trireg",
    "type",
    "typedef",
    "union",
    "unique",
    "unsigned",
    "use",
    "uwire",
    "var",
    "vectored",
    "virtual",
    "void",
    "wait",
    "wait_order",
    "wand",
    "weak0",
    "weak1",
    "while",
    "wildcard",
    "wire",
    "with",
    "within",
    "wor",
    "xnor",
    "xor",
];

/// True if `word` is reserved in *any* supported backend (the neutral
/// rule used when one name must serve every emitter).
fn is_reserved_anywhere(word: &str) -> bool {
    Backend::ALL.iter().any(|b| b.is_reserved(word))
}

/// Sanitizes an arbitrary string into an identifier legal in every
/// supported backend.
///
/// Illegal characters become underscores, runs of underscores collapse,
/// a leading digit gains a `v` prefix, and words reserved in any
/// backend gain a `_v` suffix. The empty string becomes `"anon"`.
pub fn sanitize(name: &str) -> String {
    sanitize_with(name, is_reserved_anywhere)
}

/// Sanitizes for one specific backend only (its keyword table and no
/// other). Prefer [`sanitize`] when the result may reach several
/// emitters.
pub fn sanitize_for(backend: Backend, name: &str) -> String {
    sanitize_with(name, |w| backend.is_reserved(w))
}

fn sanitize_with(name: &str, reserved: impl Fn(&str) -> bool) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_underscore = true; // suppress leading underscores
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
            last_underscore = false;
        } else if !last_underscore {
            out.push('_');
            last_underscore = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    if out.is_empty() {
        return "anon".to_string();
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'v');
    }
    if reserved(&out) {
        out.push_str("_v");
    }
    out
}

/// Allocates unique sanitized identifiers.
///
/// The default ([`NameAllocator::new`]) is backend-neutral: names are
/// legal in every backend and uniquified case-insensitively, so the
/// allocation is stable no matter which emitter later renders it.
#[derive(Debug, Default)]
pub struct NameAllocator {
    taken: HashSet<String>,
    backend: Option<Backend>,
}

impl NameAllocator {
    /// An empty backend-neutral allocator (case-insensitive
    /// uniqueness, union keyword table).
    pub fn new() -> Self {
        NameAllocator::default()
    }

    /// An allocator applying one backend's rules only: its keyword
    /// table, and case-sensitive uniqueness where the backend allows
    /// it.
    pub fn for_backend(backend: Backend) -> Self {
        NameAllocator {
            taken: HashSet::new(),
            backend: Some(backend),
        }
    }

    fn fold_case(&self, name: &str) -> String {
        match self.backend {
            Some(b) if b.case_sensitive() => name.to_string(),
            _ => name.to_ascii_lowercase(),
        }
    }

    /// Returns a sanitized identifier for `name`, appending `_2`, `_3`
    /// ... on collision.
    pub fn allocate(&mut self, name: &str) -> String {
        let base = match self.backend {
            Some(b) => sanitize_for(b, name),
            None => sanitize(name),
        };
        let mut candidate = base.clone();
        let mut counter = 1u32;
        while !self.taken.insert(self.fold_case(&candidate)) {
            counter += 1;
            candidate = format!("{base}_{counter}");
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_legal_names_through() {
        assert_eq!(sanitize("adder_32"), "adder_32");
        assert_eq!(sanitize("TopLevel"), "TopLevel");
    }

    #[test]
    fn replaces_illegal_characters() {
        assert_eq!(
            sanitize("duplicator_i<Stream(Bit(8)),2>"),
            "duplicator_i_Stream_Bit_8_2"
        );
        assert_eq!(sanitize("a..b"), "a_b");
    }

    #[test]
    fn collapses_underscores_and_trims() {
        assert_eq!(sanitize("__a__b__"), "a_b");
        assert_eq!(sanitize("a---b"), "a_b");
    }

    #[test]
    fn fixes_leading_digit() {
        assert_eq!(sanitize("8bit"), "v8bit");
    }

    #[test]
    fn avoids_reserved_words_of_every_backend() {
        // VHDL keywords.
        assert_eq!(sanitize("signal"), "signal_v");
        assert_eq!(sanitize("Entity"), "Entity_v");
        assert_eq!(sanitize("out"), "out_v");
        // Verilog keywords (not reserved in VHDL).
        assert_eq!(sanitize("reg"), "reg_v");
        assert_eq!(sanitize("always_ff"), "always_ff_v");
        assert_eq!(sanitize("module"), "module_v");
    }

    #[test]
    fn per_backend_tables_differ() {
        // `reg` is only a Verilog keyword.
        assert_eq!(sanitize_for(Backend::Vhdl, "reg"), "reg");
        assert_eq!(sanitize_for(Backend::SystemVerilog, "reg"), "reg_v");
        // `signal` is only a VHDL keyword.
        assert_eq!(sanitize_for(Backend::Vhdl, "signal"), "signal_v");
        assert_eq!(sanitize_for(Backend::SystemVerilog, "signal"), "signal");
    }

    #[test]
    fn vhdl_keywords_match_case_insensitively_verilog_exactly() {
        assert!(Backend::Vhdl.is_reserved("ENTITY"));
        assert!(Backend::SystemVerilog.is_reserved("reg"));
        // Verilog identifiers are case-sensitive; `Reg` is legal.
        assert!(!Backend::SystemVerilog.is_reserved("Reg"));
        assert_eq!(sanitize_for(Backend::SystemVerilog, "Reg"), "Reg");
    }

    #[test]
    fn empty_becomes_anon() {
        assert_eq!(sanitize(""), "anon");
        assert_eq!(sanitize("<>"), "anon");
    }

    #[test]
    fn neutral_allocator_uniquifies_case_insensitively() {
        let mut a = NameAllocator::new();
        assert_eq!(a.allocate("x"), "x");
        assert_eq!(a.allocate("X"), "X_2");
        assert_eq!(a.allocate("x"), "x_3");
        assert_eq!(a.allocate("y"), "y");
    }

    #[test]
    fn verilog_allocator_is_case_sensitive() {
        let mut a = NameAllocator::for_backend(Backend::SystemVerilog);
        assert_eq!(a.allocate("x"), "x");
        assert_eq!(a.allocate("X"), "X");
        assert_eq!(a.allocate("x"), "x_2");
    }

    #[test]
    fn vhdl_allocator_is_case_insensitive() {
        let mut a = NameAllocator::for_backend(Backend::Vhdl);
        assert_eq!(a.allocate("x"), "x");
        assert_eq!(a.allocate("X"), "X_2");
    }

    #[test]
    fn backend_metadata() {
        assert_eq!(Backend::Vhdl.comment_prefix(), "--");
        assert_eq!(Backend::SystemVerilog.comment_prefix(), "//");
        assert_eq!(Backend::Vhdl.file_extension(), "vhd");
        assert_eq!(Backend::SystemVerilog.file_extension(), "sv");
        assert_eq!(Backend::Vhdl.to_string(), "vhdl");
        assert_eq!(Backend::SystemVerilog.to_string(), "verilog");
    }
}
