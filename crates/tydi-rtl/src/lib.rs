//! # tydi-rtl
//!
//! A backend-neutral structural netlist IR for generated RTL, sitting
//! between Tydi-IR and emitted text (the layer argued for by the
//! Tydi-IR companion paper: one structural representation, many HDL
//! writers).
//!
//! The [`netlist`] module defines the datatype: a [`netlist::Netlist`]
//! is a list of [`netlist::Module`]s, each with typed scalar/vector
//! ports and one of three bodies — *structural* (nets, continuous
//! assignments, instances with port maps), *behavioral* (opaque
//! per-backend text blocks produced by builtin generators), or
//! *black-box*. Everything backend-specific lives behind the
//! [`emit::Emitter`] trait, implemented by [`vhdl::VhdlEmitter`] and
//! [`verilog::SystemVerilogEmitter`]; per-module emission fans out
//! across a thread pool.
//!
//! [`names`] centralizes identifier legalization with per-backend
//! keyword tables and case-sensitivity rules (VHDL identifiers are
//! case-insensitive, Verilog identifiers are not); the default
//! [`names::sanitize`] is backend-neutral, producing names legal in
//! every supported backend so a single netlist can be rendered by any
//! emitter without renaming.

#![warn(missing_docs)]

pub mod check;
pub mod emit;
pub mod names;
pub mod netlist;
pub mod verilog;
pub mod vhdl;

pub use emit::{emitter_for, EmitError, EmittedFile, Emitter};
pub use names::{sanitize, Backend, NameAllocator};
pub use netlist::{Module, ModuleBody, Netlist};
pub use verilog::SystemVerilogEmitter;
pub use vhdl::VhdlEmitter;
